//! Exact chemical-master-equation (CME) verification for the
//! stochastic-synthesis workspace.
//!
//! Every other correctness check in this repository samples: ensembles of
//! SSA trajectories are compared against laws with chi-square/KS tolerance
//! bands. A solver whose distribution is *subtly* wrong — a γ-separation
//! slightly too small, a biased sampler — can hide under that noise floor.
//! This crate removes the noise floor for finite (or finitely truncated)
//! networks by computing distributions exactly from the CME:
//!
//! 1. [`StateSpace`] — breadth-first enumeration of the reachable states
//!    within [`PopulationBounds`], either *strict* (exceeding a cap is the
//!    typed error [`CmeError::BoundExceeded`]) or *truncating*
//!    (finite-state projection: escaping rate becomes tracked leak);
//! 2. [`GeneratorMatrix`] — the sparse (CSR) infinitesimal generator `Q`
//!    restricted to the retained states;
//! 3. [`transient`] — uniformization: `p(t) = p(0)·e^{Qt}` as a
//!    Poisson-weighted power series with a rigorous truncation bound;
//! 4. [`FirstPassage`] — exact absorption probabilities into outcome
//!    classes (the winner-take-all module's outcome distribution is a
//!    first-passage problem, so its programmed probabilities can be
//!    verified to machine precision rather than Monte-Carlo precision);
//! 5. [`Checker`] — a time-bounded probabilistic model checker layered on
//!    1–4: `P(reach A before B)`, `P(X_s ≥ k within [t₁, t₂])`, expected
//!    first-passage times and stationary mass, with [`sweep`] computing
//!    robustness landscapes and satisfaction boundaries over parameter
//!    grids.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), cme::CmeError> {
//! use cme::{FirstPassage, PopulationBounds, StateSpace};
//!
//! // A biased two-outcome race: 3:1 odds.
//! let crn: crn::Crn = "x -> heads @ 3\nx -> tails @ 1".parse().expect("network");
//! let initial = crn.state_from_counts([("x", 1)]).expect("state");
//! let outcome = FirstPassage::new(&crn)
//!     .outcome_species_at_least("heads", "heads", 1)?
//!     .outcome_species_at_least("tails", "tails", 1)?
//!     .solve(&initial, &PopulationBounds::strict(1))?;
//! assert!((outcome.probability("heads") - 0.75).abs() < 1e-12);
//!
//! // The same network's transient law: P(undecided at t) = e^{-4t}.
//! let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(1))?;
//! let x = crn.species_id("x").expect("species");
//! let solution = space.transient(0.5, 1e-12)?;
//! let undecided = space.probability_where(&solution.probabilities, |s| s.count(x) == 1);
//! assert!((undecided - (-2.0f64).exp()).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
pub mod check;
mod error;
mod generator;
mod outcome;
mod space;
pub mod sweep;
mod transient;

pub use bounds::{BoundaryPolicy, PopulationBounds};
pub use check::{Checker, HittingTime, RaceVerdict, StationaryDistribution, WindowVerdict};
pub use error::CmeError;
pub use generator::GeneratorMatrix;
pub use outcome::{FirstPassage, OutcomeDistribution};
pub use space::StateSpace;
pub use sweep::{Landscape, LandscapePoint};
pub use transient::{transient, TransientSolution};
