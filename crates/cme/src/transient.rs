//! Uniformization: the transient CME solution `p(t) = p(0)·e^{Qt}`.

use numerics::ln_gamma;

use crate::error::CmeError;
use crate::generator::GeneratorMatrix;
use crate::space::StateSpace;

/// The transient solution of the CME at one time point, with explicit error
/// accounting: `Σ probabilities = 1 − truncation_error − leaked`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSolution {
    /// Probability of each retained state at time `t`, in state-space index
    /// order.
    pub probabilities: Vec<f64>,
    /// Poisson-tail mass not accumulated by the truncated uniformization
    /// series — bounded by the requested tolerance whenever the series ran
    /// to completion.
    pub truncation_error: f64,
    /// Probability mass that left the retained window through
    /// finite-state-projection truncation (0 for strict bounds).
    pub leaked: f64,
    /// Number of Poisson terms (uniformized jumps) accumulated.
    pub terms: usize,
    /// The uniformization rate `Λ` used.
    pub uniformization_rate: f64,
}

/// Solves `p(t) = p(0)·e^{Qt}` by uniformization: with `Λ = max_i |q_ii|`
/// and `P = I + Q/Λ`,
///
/// ```text
/// p(t) = Σ_k  e^{−Λt} (Λt)^k / k!  ·  p(0)·P^k
/// ```
///
/// truncated once the accumulated Poisson weight reaches `1 − epsilon`. The
/// neglected tail is a rigorous bound on the truncation error because every
/// `p(0)·P^k` is substochastic; the actual tail mass is reported as
/// [`TransientSolution::truncation_error`]. Poisson weights are evaluated in
/// log space (via [`ln_gamma`]), so large `Λt` cannot underflow the series.
///
/// # Errors
///
/// Returns [`CmeError::InvalidInput`] if `initial` is not a probability
/// vector of matching dimension, or `t`/`epsilon` are not finite and
/// non-negative (`epsilon` must also be positive).
pub fn transient(
    generator: &GeneratorMatrix,
    initial: &[f64],
    t: f64,
    epsilon: f64,
) -> Result<TransientSolution, CmeError> {
    let mass: f64 = initial.iter().sum();
    if (mass - 1.0).abs() > 1e-9 {
        return Err(CmeError::InvalidInput {
            message: format!("initial distribution sums to {mass}, expected 1"),
        });
    }
    transient_substochastic(generator, initial, t, epsilon)
}

/// [`transient`] without the unit-mass requirement: the initial vector may
/// be sub-stochastic (mass ≤ 1), as produced by a previous transient phase
/// whose truncation/leak already removed some mass. The model checker's
/// two-phase window evaluation feeds a free-evolution solution at `t₁` into
/// the absorbed generator for `[t₁, t₂]` through this entry point.
pub(crate) fn transient_substochastic(
    generator: &GeneratorMatrix,
    initial: &[f64],
    t: f64,
    epsilon: f64,
) -> Result<TransientSolution, CmeError> {
    let n = generator.dimension();
    if initial.len() != n {
        return Err(CmeError::InvalidInput {
            message: format!(
                "initial distribution has {} entries but the generator has {n} states",
                initial.len()
            ),
        });
    }
    if initial.iter().any(|&p| !p.is_finite() || p < 0.0) {
        return Err(CmeError::InvalidInput {
            message: "initial distribution entries must be finite and non-negative".into(),
        });
    }
    let mass: f64 = initial.iter().sum();
    if mass > 1.0 + 1e-9 {
        return Err(CmeError::InvalidInput {
            message: format!("initial distribution sums to {mass}, expected at most 1"),
        });
    }
    if !(t.is_finite() && t >= 0.0) {
        return Err(CmeError::InvalidInput {
            message: format!("time {t} must be finite and non-negative"),
        });
    }
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(CmeError::InvalidInput {
            message: format!("tolerance {epsilon} must be finite and positive"),
        });
    }

    let lambda = generator.uniformization_rate();
    let rate_time = lambda * t;
    if rate_time == 0.0 {
        // No transitions can fire (or t = 0): the distribution is unchanged.
        return Ok(TransientSolution {
            probabilities: initial.to_vec(),
            truncation_error: 0.0,
            leaked: 0.0,
            terms: 1,
            uniformization_rate: lambda,
        });
    }

    // Enough terms to cover the Poisson(Λt) bulk plus a deep tail; the
    // weight test below is what actually terminates the series.
    let k_max = (rate_time + 12.0 * (rate_time + 1.0).sqrt() + 64.0) as usize;
    let ln_rate_time = rate_time.ln();
    let poisson_weight =
        |k: usize| (k as f64 * ln_rate_time - rate_time - ln_gamma(k as f64 + 1.0)).exp();

    // A space with no leaking row cannot lose mass: pin `leaked` to exactly
    // zero there instead of accumulating rounding fuzz from the mass sums.
    let lossless = (0..n).all(|i| generator.leak_rate(i) == 0.0);
    let mut jump = initial.to_vec(); // p(0)·P^k
    let mut next = vec![0.0; n];
    let mut accumulated = vec![0.0; n];
    let mut weight_sum = 0.0f64;
    let mut leaked = 0.0f64;
    let mut terms = 0usize;
    for k in 0..=k_max {
        let w = poisson_weight(k);
        for (acc, &p) in accumulated.iter_mut().zip(&jump) {
            *acc += w * p;
        }
        leaked += w * (1.0 - jump.iter().sum::<f64>());
        weight_sum += w;
        terms = k + 1;
        if weight_sum >= 1.0 - epsilon {
            break;
        }
        generator.apply_uniformized(lambda, &jump, &mut next);
        std::mem::swap(&mut jump, &mut next);
    }

    Ok(TransientSolution {
        probabilities: accumulated,
        truncation_error: (1.0 - weight_sum).max(0.0),
        leaked: if lossless { 0.0 } else { leaked.max(0.0) },
        terms,
        uniformization_rate: lambda,
    })
}

impl StateSpace {
    /// Convenience wrapper: solves the transient CME from this space's
    /// initial state (point mass at index 0) at time `t` with Poisson-tail
    /// tolerance `epsilon`. Builds the generator internally; callers solving
    /// at many time points should build one [`GeneratorMatrix`] and call
    /// [`transient`] directly.
    ///
    /// # Errors
    ///
    /// See [`transient`].
    pub fn transient(&self, t: f64, epsilon: f64) -> Result<TransientSolution, CmeError> {
        let generator = GeneratorMatrix::from_space(self);
        let mut initial = vec![0.0; self.len()];
        initial[self.initial_index()] = 1.0;
        transient(&generator, &initial, t, epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::PopulationBounds;
    use crn::Crn;

    fn space_of(text: &str, counts: &[(&str, u64)], cap: u64) -> (Crn, StateSpace) {
        let crn: Crn = text.parse().unwrap();
        let initial = crn.state_from_counts(counts.iter().copied()).unwrap();
        let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(cap)).unwrap();
        (crn, space)
    }

    #[test]
    fn single_molecule_decay_matches_the_exponential_law() {
        let (crn, space) = space_of("a -> 0 @ 2", &[("a", 1)], 1);
        let a = crn.species_id("a").unwrap();
        for t in [0.1, 0.5, 1.0, 2.0] {
            let solution = space.transient(t, 1e-12).unwrap();
            let survival = space.probability_where(&solution.probabilities, |s| s.count(a) == 1);
            let exact = (-2.0f64 * t).exp();
            assert!(
                (survival - exact).abs() < 1e-9,
                "t = {t}: {survival} vs {exact}"
            );
        }
    }

    #[test]
    fn two_state_isomerisation_matches_the_closed_form() {
        // One molecule hopping a <-> b with rates k1, k2: P(b at t) follows
        // the standard two-state relaxation law.
        let (k1, k2) = (1.5f64, 0.5f64);
        let crn: Crn = format!("a -> b @ {k1}\nb -> a @ {k2}").parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(1)).unwrap();
        let b = crn.species_id("b").unwrap();
        for t in [0.05, 0.3, 1.0, 4.0] {
            let solution = space.transient(t, 1e-13).unwrap();
            let p_b = space.probability_where(&solution.probabilities, |s| s.count(b) == 1);
            let total = k1 + k2;
            let exact = k1 / total * (1.0 - (-total * t).exp());
            assert!((p_b - exact).abs() < 1e-9, "t = {t}: {p_b} vs {exact}");
        }
    }

    #[test]
    fn probabilities_stay_normalised_on_closed_systems() {
        let (_, space) = space_of("a -> b @ 1\nb -> a @ 2", &[("a", 20)], 20);
        let solution = space.transient(3.0, 1e-10).unwrap();
        let sum: f64 = solution.probabilities.iter().sum();
        assert!(solution.probabilities.iter().all(|&p| p >= 0.0));
        assert!((sum - 1.0).abs() <= solution.truncation_error + 1e-12);
        assert!(solution.truncation_error <= 1e-10);
        assert_eq!(solution.leaked, 0.0);
        assert!(solution.terms > 1);
    }

    #[test]
    fn truncated_birth_death_reports_leak() {
        // Aggressive truncation of a birth process: a visible fraction of
        // the mass escapes the window, and it is reported, not hidden.
        let crn: Crn = "0 -> a @ 3".parse().unwrap();
        let space =
            StateSpace::enumerate(&crn, &crn.zero_state(), &PopulationBounds::truncating(4))
                .unwrap();
        let solution = space.transient(2.0, 1e-12).unwrap();
        let sum: f64 = solution.probabilities.iter().sum();
        // Poisson(6) mass beyond 4 is substantial.
        assert!(solution.leaked > 0.5, "leaked {}", solution.leaked);
        assert!(
            (sum + solution.leaked + solution.truncation_error - 1.0).abs() < 1e-9,
            "mass accounting: sum {sum}, leaked {}, tail {}",
            solution.leaked,
            solution.truncation_error
        );
    }

    #[test]
    fn time_zero_returns_the_initial_distribution() {
        let (_, space) = space_of("a -> b @ 1", &[("a", 3)], 3);
        let solution = space.transient(0.0, 1e-12).unwrap();
        assert_eq!(solution.probabilities[0], 1.0);
        assert_eq!(solution.truncation_error, 0.0);
    }

    #[test]
    fn absorbing_only_space_is_stationary() {
        // A single state with no reactions enabled: Λ = 0.
        let crn: Crn = "a + b -> 0 @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(1)).unwrap();
        let solution = space.transient(10.0, 1e-12).unwrap();
        assert_eq!(solution.probabilities, vec![1.0]);
        assert_eq!(solution.uniformization_rate, 0.0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let (_, space) = space_of("a -> b @ 1", &[("a", 1)], 1);
        let generator = GeneratorMatrix::from_space(&space);
        assert!(transient(&generator, &[1.0], 1.0, 1e-9).is_err()); // wrong length
        assert!(transient(&generator, &[0.5, 0.2], 1.0, 1e-9).is_err()); // not normalised
        assert!(transient(&generator, &[-0.5, 1.5], 1.0, 1e-9).is_err()); // negative
        assert!(transient(&generator, &[1.0, 0.0], -1.0, 1e-9).is_err()); // negative time
        assert!(transient(&generator, &[1.0, 0.0], 1.0, 0.0).is_err()); // zero tolerance
        assert!(transient(&generator, &[1.0, 0.0], f64::NAN, 1e-9).is_err());
    }

    #[test]
    fn large_rate_time_does_not_underflow() {
        // Λt ≈ 800 would underflow e^{−Λt} in naive linear-space weights.
        let (crn, space) = space_of("a -> b @ 1\nb -> a @ 1", &[("a", 400)], 400);
        let solution = space.transient(2.0, 1e-8).unwrap();
        let sum: f64 = solution.probabilities.iter().sum();
        assert!((sum - 1.0).abs() < 1e-7, "sum {sum}");
        let b = crn.species_id("b").unwrap();
        // The mean relaxes as 200·(1 − e^{−2t}): 196.337 at t = 2.
        let mean = space.expectation(&solution.probabilities, b);
        let exact = 200.0 * (1.0 - (-4.0f64).exp());
        assert!((mean - exact).abs() < 1e-4, "mean {mean} vs {exact}");
    }
}
