//! First-passage outcome analysis: exact absorption probabilities.

use crn::{Crn, State};

use crate::bounds::PopulationBounds;
use crate::error::CmeError;
use crate::space::StateSpace;

/// Default transient-mass tolerance for [`FirstPassage::solve`].
const DEFAULT_TOLERANCE: f64 = 1e-12;
/// Default sweep budget for the iterative large-component fallback.
const DEFAULT_MAX_SWEEPS: usize = 100_000;
/// Components up to this size are solved exactly by dense state
/// elimination; larger ones fall back to Gauss–Seidel sweeps.
const DENSE_COMPONENT_LIMIT: usize = 256;

/// One outcome class: a name plus its membership predicate.
type OutcomePredicate<'a> = Box<dyn Fn(&State) -> bool + 'a>;

/// Poses and solves a first-passage problem: starting from an initial
/// state, with what probability does the chain first hit each outcome
/// class?
///
/// Outcome classes are predicates over states; a state matching a predicate
/// is made absorbing (the chain is stopped there), so the computed numbers
/// are exactly the probabilities a perfect classifier would estimate from
/// infinitely many SSA trials. Because jump *probabilities* — not rates —
/// drive the analysis, rate hierarchies spanning many orders of magnitude
/// (the paper's γ separations) cost nothing in conditioning.
///
/// The solver condenses the embedded jump chain into its strongly connected
/// components (iterative Tarjan) and pushes probability mass through the
/// condensation DAG in topological order. Mass entering a cyclic component
/// is distributed to its exits by a dense linear solve
/// (`u = m·(I − T)⁻¹`, the expected-visits equation), so tight cycles that
/// the chain traverses millions of times — the synthesized networks' clock
/// loops — cost one small LU factorisation instead of millions of power
/// iterations. Components larger than a few hundred states fall back to
/// Gauss–Seidel sweeps under a configurable budget.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), cme::CmeError> {
/// use cme::{FirstPassage, PopulationBounds};
///
/// // Competing channels from one molecule: x -> a at 3, x -> b at 1.
/// let crn: crn::Crn = "x -> a @ 3\nx -> b @ 1".parse().expect("network");
/// let initial = crn.state_from_counts([("x", 1)]).expect("state");
/// let distribution = FirstPassage::new(&crn)
///     .outcome_species_at_least("first", "a", 1)?
///     .outcome_species_at_least("second", "b", 1)?
///     .solve(&initial, &PopulationBounds::strict(1))?;
/// assert!((distribution.probability("first") - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub struct FirstPassage<'a> {
    crn: &'a Crn,
    outcomes: Vec<(String, OutcomePredicate<'a>)>,
    tolerance: f64,
    max_sweeps: usize,
}

impl<'a> FirstPassage<'a> {
    /// Starts a first-passage problem over `crn`.
    pub fn new(crn: &'a Crn) -> Self {
        FirstPassage {
            crn,
            outcomes: Vec::new(),
            tolerance: DEFAULT_TOLERANCE,
            max_sweeps: DEFAULT_MAX_SWEEPS,
        }
    }

    /// Adds an outcome class defined by a predicate. A state matching
    /// several predicates counts for the first one registered.
    pub fn outcome<F>(mut self, name: impl Into<String>, predicate: F) -> Self
    where
        F: Fn(&State) -> bool + 'a,
    {
        self.outcomes.push((name.into(), Box::new(predicate)));
        self
    }

    /// Adds the common threshold outcome "`species` count ≥ `threshold`",
    /// mirroring the ensemble classifier's rules.
    ///
    /// # Errors
    ///
    /// Returns [`CmeError::InvalidInput`] if the species does not exist.
    pub fn outcome_species_at_least(
        self,
        name: impl Into<String>,
        species: &str,
        threshold: u64,
    ) -> Result<Self, CmeError> {
        let id = self
            .crn
            .species_id(species)
            .ok_or_else(|| CmeError::InvalidInput {
                message: format!("unknown species `{species}` in outcome definition"),
            })?;
        Ok(self.outcome(name, move |state: &State| state.count(id) >= threshold))
    }

    /// Sets the Gauss–Seidel tolerance for large components (default
    /// `1e-12`); dense-solved components are exact regardless.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the Gauss–Seidel sweep budget per large component (default
    /// 100 000).
    pub fn max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.max_sweeps = max_sweeps;
        self
    }

    /// Enumerates the reachable space (stopping at outcome states) and
    /// computes the exact outcome distribution from `initial`.
    ///
    /// # Errors
    ///
    /// Propagates enumeration errors ([`CmeError::BoundExceeded`],
    /// [`CmeError::StateBudgetExceeded`]); returns [`CmeError::InvalidInput`]
    /// for an empty outcome list and [`CmeError::NotConverged`] if a large
    /// cyclic component exhausts its sweep budget.
    pub fn solve(
        &self,
        initial: &State,
        bounds: &PopulationBounds,
    ) -> Result<OutcomeDistribution, CmeError> {
        if self.outcomes.is_empty() {
            return Err(CmeError::InvalidInput {
                message: "first-passage analysis needs at least one outcome".into(),
            });
        }
        if !(self.tolerance.is_finite() && self.tolerance > 0.0) {
            return Err(CmeError::InvalidInput {
                message: format!("tolerance {} must be finite and positive", self.tolerance),
            });
        }
        let matches_any = |state: &State| self.outcomes.iter().any(|(_, pred)| pred(state));
        let space = StateSpace::enumerate_absorbing(self.crn, initial, bounds, matches_any)?;

        // Classify each state once: Some(outcome index) for absorbing
        // outcome states, None otherwise.
        let class: Vec<Option<usize>> = space
            .states()
            .iter()
            .enumerate()
            .map(|(i, state)| {
                if space.is_absorbing(i) {
                    self.outcomes.iter().position(|(_, pred)| pred(state))
                } else {
                    None
                }
            })
            .collect();

        let n = space.len();
        let components = strongly_connected_components(&space);
        let mut mass = vec![0.0f64; n];
        mass[space.initial_index()] = 1.0;
        let mut absorbed = vec![0.0f64; self.outcomes.len()];
        let mut undecided = 0.0f64;
        let mut escaped = 0.0f64;
        let mut sweeps_used = 0usize;

        // Tarjan emits components sinks-first, so the reverse order is
        // topological: every component is processed after all mass bound for
        // it has arrived.
        for component in components.iter().rev() {
            let incoming: f64 = component.iter().map(|&i| mass[i]).sum();
            if incoming == 0.0 {
                continue;
            }
            if component.len() == 1 {
                // Absorbing states never cycle, so they always land here.
                let i = component[0];
                if let Some(outcome) = class[i] {
                    absorbed[outcome] += mass[i];
                    mass[i] = 0.0;
                    continue;
                }
            }
            if component.len() > DENSE_COMPONENT_LIMIT {
                self.sweep_component(
                    &space,
                    component,
                    &mut mass,
                    &mut undecided,
                    &mut escaped,
                    &mut sweeps_used,
                )?;
            } else {
                eliminate_component(&space, component, &mut mass, &mut undecided, &mut escaped);
            }
        }

        Ok(OutcomeDistribution {
            names: self.outcomes.iter().map(|(name, _)| name.clone()).collect(),
            probabilities: absorbed,
            undecided,
            escaped,
            sweeps: sweeps_used,
            states: n,
        })
    }

    /// Iterative fallback for components too large to eliminate densely:
    /// Gauss–Seidel on the expected-visits equation `u = m + u·T`, then one
    /// pass pushing `u`-weighted exit mass to the component's successors.
    ///
    /// Termination is by geometric extrapolation, not by raw per-sweep
    /// change: with contraction ratio `ρ` estimated from successive sweep
    /// deltas, the remaining error is bounded by `δ·ρ/(1−ρ)`, so a
    /// slowly-mixing component (ρ → 1) keeps sweeping until the *true*
    /// error — not just the increment — is below the tolerance.
    fn sweep_component(
        &self,
        space: &StateSpace,
        component: &[usize],
        mass: &mut [f64],
        undecided: &mut f64,
        escaped: &mut f64,
        sweeps_used: &mut usize,
    ) -> Result<(), CmeError> {
        let k = component.len();
        let local: std::collections::HashMap<usize, usize> = component
            .iter()
            .enumerate()
            .map(|(local, &i)| (i, local))
            .collect();
        // A closed recurrent component traps its mass forever: the
        // expected-visits equation has no finite solution there, so detect
        // it up front (the dense path does the same through zero-outflow
        // eliminations) instead of diverging against the sweep budget.
        let exit_rate: f64 = component
            .iter()
            .map(|&i| {
                space
                    .transitions(i)
                    .filter(|(j, _)| !local.contains_key(j))
                    .map(|(_, rate)| rate)
                    .sum::<f64>()
                    + space.leak_rate(i)
            })
            .sum();
        if exit_rate == 0.0 {
            for &i in component {
                *undecided += mass[i];
                mass[i] = 0.0;
            }
            return Ok(());
        }
        // incoming[col] lists (row, probability) of internal jumps into col.
        let mut incoming: Vec<Vec<(usize, f64)>> = vec![Vec::new(); k];
        for (row, &i) in component.iter().enumerate() {
            let outflow = space.total_outflow(i);
            for (j, rate) in space.transitions(i) {
                if let Some(&col) = local.get(&j) {
                    incoming[col].push((row, rate / outflow));
                }
            }
        }
        let m: Vec<f64> = component.iter().map(|&i| mass[i]).collect();
        let mut u = m.clone();
        let mut sweeps = 0usize;
        let mut previous_delta = f64::INFINITY;
        loop {
            let mut delta = 0.0f64;
            for row in 0..k {
                let mut value = m[row];
                for &(src, p) in &incoming[row] {
                    value += u[src] * p;
                }
                delta = delta.max((value - u[row]).abs());
                u[row] = value;
            }
            sweeps += 1;
            if delta <= self.tolerance {
                // Geometric tail bound: err ≤ δ·ρ/(1−ρ). A ratio estimate
                // at or above 1 means no contraction is visible yet — keep
                // sweeping rather than trust the small increment.
                let ratio = delta / previous_delta;
                if ratio < 1.0 && delta * ratio / (1.0 - ratio) <= self.tolerance {
                    break;
                }
            }
            if sweeps >= self.max_sweeps {
                return Err(CmeError::NotConverged {
                    residual: delta,
                    sweeps,
                });
            }
            previous_delta = delta.max(f64::MIN_POSITIVE);
        }
        *sweeps_used += sweeps;
        for (row, &i) in component.iter().enumerate() {
            mass[i] = 0.0;
            if u[row] == 0.0 {
                continue;
            }
            let outflow = space.total_outflow(i);
            for (j, rate) in space.transitions(i) {
                if !local.contains_key(&j) {
                    mass[j] += u[row] * rate / outflow;
                }
            }
            *escaped += u[row] * space.leak_rate(i) / outflow;
        }
        Ok(())
    }
}

/// Pushes the probability mass sitting on one strongly connected component
/// out to its successors by exact state elimination.
///
/// This is Gaussian elimination in Grassmann–Taksar–Heyman form: every
/// update is an addition of non-negative rates or a division by a positive
/// total, never a subtraction — so the exit split keeps full relative
/// accuracy even when the chain loops through the component ~1/γ² times
/// before escaping (probability-space `I − T` solves lose the exit to
/// rounding at γ separations like the paper's 10⁹).
///
/// Eliminating state `k` with total outflow `Σ_j w_kj + e_k` first sends
/// `k`'s mass along its current edges, then folds `k` out of the component:
/// every edge `i → k` is replaced by `i`'s share of `k`'s edges. A state
/// whose total outflow is zero (a dead end, or the last state of a closed
/// recurrent class) keeps its mass forever: it is added to `undecided`.
fn eliminate_component(
    space: &StateSpace,
    component: &[usize],
    mass: &mut [f64],
    undecided: &mut f64,
    escaped: &mut f64,
) {
    let k = component.len();
    let local: std::collections::HashMap<usize, usize> = component
        .iter()
        .enumerate()
        .map(|(local, &i)| (i, local))
        .collect();
    // Internal rates (dense, k ≤ DENSE_COMPONENT_LIMIT), external edge
    // lists (sorted vectors for determinism) and leak per member.
    let mut internal = vec![0.0f64; k * k];
    let mut external: Vec<Vec<(usize, f64)>> = vec![Vec::new(); k];
    let mut leak: Vec<f64> = Vec::with_capacity(k);
    let mut local_mass: Vec<f64> = Vec::with_capacity(k);
    for (row, &i) in component.iter().enumerate() {
        for (j, rate) in space.transitions(i) {
            match local.get(&j) {
                Some(&col) => internal[row * k + col] += rate,
                None => add_edge(&mut external[row], j, rate),
            }
        }
        leak.push(space.leak_rate(i));
        local_mass.push(mass[i]);
        mass[i] = 0.0;
    }

    let mut eliminated = vec![false; k];
    for step in 0..k {
        eliminated[step] = true;
        let internal_out: f64 = (0..k)
            .filter(|&j| !eliminated[j])
            .map(|j| internal[step * k + j])
            .sum();
        let external_out: f64 = external[step].iter().map(|&(_, r)| r).sum();
        let total = internal_out + external_out + leak[step];
        if total == 0.0 {
            // Dead end or closed recurrent class: this mass never decides.
            *undecided += local_mass[step];
            local_mass[step] = 0.0;
            continue;
        }
        // Send the state's mass along its current (partially folded) edges.
        let m = local_mass[step];
        local_mass[step] = 0.0;
        if m > 0.0 {
            for j in (0..k).filter(|&j| !eliminated[j]) {
                local_mass[j] += m * internal[step * k + j] / total;
            }
            for &(target, rate) in &external[step] {
                mass[target] += m * rate / total;
            }
            *escaped += m * leak[step] / total;
        }
        // Fold the state out: redirect every remaining i → step edge. The
        // eliminated state's edge list is dead after this, so move it out
        // once instead of borrowing `external` at two indices in the loop.
        let step_edges = std::mem::take(&mut external[step]);
        let step_leak = leak[step];
        for i in (0..k).filter(|&i| !eliminated[i]) {
            let w = internal[i * k + step];
            if w == 0.0 {
                continue;
            }
            internal[i * k + step] = 0.0;
            let f = w / total;
            for j in (0..k).filter(|&j| !eliminated[j]) {
                internal[i * k + j] += f * internal[step * k + j];
            }
            for &(target, rate) in &step_edges {
                add_edge(&mut external[i], target, f * rate);
            }
            leak[i] += f * step_leak;
        }
    }
}

/// Accumulates `rate` onto the edge towards `target`, keeping the list
/// sorted by target for deterministic iteration.
fn add_edge(edges: &mut Vec<(usize, f64)>, target: usize, rate: f64) {
    match edges.binary_search_by_key(&target, |&(t, _)| t) {
        Ok(pos) => edges[pos].1 += rate,
        Err(pos) => edges.insert(pos, (target, rate)),
    }
}

/// Iterative Tarjan over the state-space transition graph. Components are
/// returned in Tarjan emission order: every component appears *before* the
/// components that can reach it (sinks first).
pub(crate) fn strongly_connected_components(space: &StateSpace) -> Vec<Vec<usize>> {
    let n = space.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (state, iterator position over its successors).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&(v, edge)) = frames.last() {
            let successor = space.transitions(v).nth(edge).map(|(j, _)| j);
            match successor {
                Some(w) => {
                    frames.last_mut().expect("frame exists").1 += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                }
                None => {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(component);
                    }
                }
            }
        }
    }
    components
}

/// The exact first-passage outcome distribution of a reaction network.
///
/// Probabilities are exact up to the reported [`escaped`] mass (truncation
/// leak only, under strict bounds it is zero): each true outcome
/// probability lies within `escaped` of the reported value.
///
/// [`escaped`]: OutcomeDistribution::escaped
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeDistribution {
    names: Vec<String>,
    probabilities: Vec<f64>,
    undecided: f64,
    escaped: f64,
    sweeps: usize,
    states: usize,
}

impl OutcomeDistribution {
    /// Returns the outcome names, in registration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Returns the absorption probabilities, aligned with [`names`].
    ///
    /// [`names`]: OutcomeDistribution::names
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Returns the probability of the named outcome (0 if unknown).
    pub fn probability(&self, name: &str) -> f64 {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.probabilities[i])
            .unwrap_or(0.0)
    }

    /// Returns the probability mass that can never reach any outcome: dead
    /// transient states plus closed recurrent classes.
    pub fn undecided(&self) -> f64 {
        self.undecided
    }

    /// Returns the probability mass lost through finite-state-projection
    /// truncation: the rigorous error bound on every reported probability
    /// (zero under strict bounds).
    pub fn escaped(&self) -> f64 {
        self.escaped
    }

    /// Returns the Gauss–Seidel sweeps spent in large cyclic components
    /// (0 when every component was solved densely).
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Returns the number of states in the enumerated first-passage space.
    pub fn states(&self) -> usize {
        self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn competing_channels_split_by_rate_ratio() {
        for &(ka, kb) in &[(1.0f64, 1.0f64), (2.0, 6.0), (9.0, 1.0)] {
            let crn: Crn = format!("x -> a @ {ka}\nx -> b @ {kb}").parse().unwrap();
            let initial = crn.state_from_counts([("x", 1)]).unwrap();
            let distribution = FirstPassage::new(&crn)
                .outcome_species_at_least("first", "a", 1)
                .unwrap()
                .outcome_species_at_least("second", "b", 1)
                .unwrap()
                .solve(&initial, &PopulationBounds::strict(1))
                .unwrap();
            let expected = ka / (ka + kb);
            assert!(
                (distribution.probability("first") - expected).abs() < 1e-12,
                "ka={ka}, kb={kb}: {}",
                distribution.probability("first")
            );
            assert!(
                (distribution.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12,
                "outcomes are exhaustive"
            );
            assert_eq!(distribution.undecided(), 0.0);
            assert_eq!(distribution.escaped(), 0.0);
            assert_eq!(distribution.names(), &["first", "second"]);
            assert_eq!(distribution.probability("unknown"), 0.0);
        }
    }

    #[test]
    fn gamblers_ruin_matches_the_closed_form() {
        // The count of `a` performs a birth–death walk with constant birth
        // rate λ and mass-action death rate μ_j = j·death (counts 0 and N
        // made absorbing). The hitting probability of N before 0 has the
        // standard closed form P(win from i) = Σ_{j<i} ρ_j / Σ_{j<N} ρ_j
        // with ρ_0 = 1 and ρ_j = Π_{m=1..j} μ_m/λ.
        let (birth, death) = (2.0f64, 1.0f64);
        let n = 6u64;
        let start = 2u64;
        let crn: Crn = format!("w -> a + w @ {birth}\na + w -> w @ {death}")
            .parse()
            .unwrap();
        let initial = crn.state_from_counts([("a", start), ("w", 1)]).unwrap();
        let a = crn.species_id("a").unwrap();
        let distribution = FirstPassage::new(&crn)
            .outcome("ruin", move |s: &State| s.count(a) == 0)
            .outcome_species_at_least("win", "a", n)
            .unwrap()
            .solve(&initial, &PopulationBounds::strict(n))
            .unwrap();
        let rho: Vec<f64> = (0..n)
            .scan(1.0f64, |acc, j| {
                if j > 0 {
                    *acc *= j as f64 * death / birth;
                }
                Some(*acc)
            })
            .collect();
        let exact = rho[..start as usize].iter().sum::<f64>() / rho.iter().sum::<f64>();
        assert!(
            (distribution.probability("win") - exact).abs() < 1e-12,
            "{} vs {exact}",
            distribution.probability("win")
        );
        assert!(
            (distribution.probability("ruin") + distribution.probability("win") - 1.0).abs()
                < 1e-12
        );
        // The whole interior is one strongly connected component, solved by
        // one dense LU rather than iterative sweeps.
        assert_eq!(distribution.sweeps(), 0);
    }

    #[test]
    fn tight_cycles_are_solved_exactly() {
        // A clock loop (w <-> a) that the chain traverses ~10⁶ times per
        // productive event: power iteration would need millions of sweeps,
        // the SCC condensation one 2×2 dense solve. The two slow channels
        // still split the mass evenly.
        let crn: Crn = "w -> a @ 1000000\na -> w @ 1000000\nw -> win @ 0.5\nw -> lose @ 0.5"
            .parse()
            .unwrap();
        let initial = crn.state_from_counts([("w", 1)]).unwrap();
        let distribution = FirstPassage::new(&crn)
            .outcome_species_at_least("win", "win", 1)
            .unwrap()
            .outcome_species_at_least("lose", "lose", 1)
            .unwrap()
            .solve(&initial, &PopulationBounds::strict(1))
            .unwrap();
        assert!((distribution.probability("win") - 0.5).abs() < 1e-12);
        assert_eq!(distribution.sweeps(), 0, "dense path handles the cycle");
    }

    #[test]
    fn closed_recurrent_classes_count_as_undecided() {
        // `a <-> b` cycles forever and the outcome species is unreachable.
        let crn: Crn = "a -> b @ 1\nb -> a @ 1\nc -> win @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        let distribution = FirstPassage::new(&crn)
            .outcome_species_at_least("decided", "win", 1)
            .unwrap()
            .solve(&initial, &PopulationBounds::strict(1))
            .unwrap();
        assert_eq!(distribution.probability("decided"), 0.0);
        assert!((distribution.undecided() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_closed_recurrent_classes_count_as_undecided_too() {
        // The same trap above the dense-component limit (301 states): the
        // iterative path must detect the closed class up front rather than
        // diverge against the sweep budget.
        let crn: Crn = "a -> b @ 1\nb -> a @ 1\nc -> win @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 300)]).unwrap();
        let distribution = FirstPassage::new(&crn)
            .outcome_species_at_least("decided", "win", 1)
            .unwrap()
            .solve(&initial, &PopulationBounds::strict(300))
            .unwrap();
        assert_eq!(distribution.probability("decided"), 0.0);
        assert!((distribution.undecided() - 1.0).abs() < 1e-12);
        assert_eq!(distribution.sweeps(), 0, "no sweeps wasted on a trap");
    }

    #[test]
    fn large_components_fall_back_to_sweeps() {
        // A reflecting random walk with strong upward drift on ~400 interior
        // states — one strongly connected component beyond the dense limit —
        // must still reach the absorbing top with probability one.
        let crn: Crn = "w -> a + w @ 100\na + w -> w @ 0.01".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1), ("w", 1)]).unwrap();
        let distribution = FirstPassage::new(&crn)
            .outcome_species_at_least("full", "a", 400)
            .unwrap()
            .solve(&initial, &PopulationBounds::strict(400))
            .unwrap();
        assert!(
            (distribution.probability("full") - 1.0).abs() < 1e-9,
            "p = {}",
            distribution.probability("full")
        );
        assert!(distribution.sweeps() > 0, "iterative fallback used");
    }

    #[test]
    fn sweep_budget_failure_is_typed() {
        let crn: Crn = "w -> a + w @ 100\na + w -> w @ 0.01".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1), ("w", 1)]).unwrap();
        let err = FirstPassage::new(&crn)
            .outcome_species_at_least("full", "a", 400)
            .unwrap()
            .max_sweeps(1)
            .solve(&initial, &PopulationBounds::strict(400))
            .unwrap_err();
        assert!(matches!(err, CmeError::NotConverged { .. }));
    }

    #[test]
    fn dead_states_count_as_undecided() {
        // Both molecules can pair off into nothing (dead end) or convert.
        let crn: Crn = "a + b -> 0 @ 1\na -> win @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1), ("b", 1)]).unwrap();
        let distribution = FirstPassage::new(&crn)
            .outcome_species_at_least("decided", "win", 1)
            .unwrap()
            .solve(&initial, &PopulationBounds::strict(1))
            .unwrap();
        assert!((distribution.probability("decided") - 0.5).abs() < 1e-12);
        assert!((distribution.undecided() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn first_matching_outcome_wins_classification() {
        let crn: Crn = "x -> a @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let distribution = FirstPassage::new(&crn)
            .outcome_species_at_least("one", "a", 1)
            .unwrap()
            .outcome_species_at_least("also-one", "a", 1)
            .unwrap()
            .solve(&initial, &PopulationBounds::strict(1))
            .unwrap();
        assert_eq!(distribution.probability("one"), 1.0);
        assert_eq!(distribution.probability("also-one"), 0.0);
    }

    #[test]
    fn initial_state_already_in_an_outcome_class() {
        let crn: Crn = "a -> b @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        let distribution = FirstPassage::new(&crn)
            .outcome_species_at_least("start", "a", 1)
            .unwrap()
            .solve(&initial, &PopulationBounds::strict(1))
            .unwrap();
        assert_eq!(distribution.probability("start"), 1.0);
        assert_eq!(distribution.states(), 1);
    }

    #[test]
    fn truncation_leak_is_reported_as_escaped() {
        // A birth race that can run past the retained window: the escaped
        // mass bounds the error on the reported outcome probability.
        let crn: Crn = "0 -> a @ 1\na -> win @ 1".parse().unwrap();
        let initial = crn.zero_state();
        let distribution = FirstPassage::new(&crn)
            .outcome_species_at_least("decided", "win", 1)
            .unwrap()
            .solve(&initial, &PopulationBounds::truncating(3))
            .unwrap();
        assert!(distribution.escaped() > 0.0);
        assert!((distribution.probability("decided") + distribution.escaped() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let crn: Crn = "a -> b @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        assert!(matches!(
            FirstPassage::new(&crn).solve(&initial, &PopulationBounds::strict(1)),
            Err(CmeError::InvalidInput { .. })
        ));
        assert!(FirstPassage::new(&crn)
            .outcome_species_at_least("x", "missing", 1)
            .is_err());
        assert!(matches!(
            FirstPassage::new(&crn)
                .outcome_species_at_least("x", "b", 1)
                .unwrap()
                .tolerance(0.0)
                .solve(&initial, &PopulationBounds::strict(1)),
            Err(CmeError::InvalidInput { .. })
        ));
    }
}
