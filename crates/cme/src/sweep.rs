//! Parameter-grid robustness landscapes and satisfaction boundaries.
//!
//! A *landscape* evaluates one scalar robustness measure — any
//! [`Checker`](crate::Checker) verdict reduced to a number, such as an
//! error-mass probability — across a grid of parameter values. A
//! *satisfaction boundary* refines a landscape crossing to the exact
//! parameter value where the measure meets a threshold, by bisection in
//! log-parameter space (rate constants live on a log scale).
//!
//! Both are pure `f64` computations driven by deterministic solves, so
//! boundaries can be pinned as goldens to tight tolerances.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), cme::CmeError> {
//! use cme::sweep;
//!
//! // A toy robustness measure with a known 1e-3 crossing at x = 1000.
//! let eval = |x: f64| Ok(1.0 / x);
//! let grid = [10.0, 100.0, 1_000.0, 10_000.0];
//! let landscape = sweep::landscape(&grid, eval)?;
//! assert_eq!(landscape.points().len(), 4);
//! let bracket = landscape.crossing(1e-3).expect("bracketed");
//! assert_eq!((bracket.0.parameter, bracket.1.parameter), (100.0, 1_000.0));
//!
//! let boundary = sweep::satisfaction_boundary(100.0, 10_000.0, 1e-3, 1e-12, eval)?;
//! assert!((boundary - 1_000.0).abs() / 1_000.0 < 1e-9);
//! # Ok(())
//! # }
//! ```

use crate::error::CmeError;

/// One evaluated grid point of a robustness landscape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LandscapePoint {
    /// The swept parameter value.
    pub parameter: f64,
    /// The robustness measure at that parameter.
    pub value: f64,
}

/// A robustness measure evaluated over a parameter grid, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct Landscape {
    points: Vec<LandscapePoint>,
}

impl Landscape {
    /// Returns the evaluated grid points in the order they were supplied.
    pub fn points(&self) -> &[LandscapePoint] {
        &self.points
    }

    /// Returns the values alone, aligned with the input grid.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.value).collect()
    }

    /// Finds the first adjacent pair of grid points whose values bracket
    /// `threshold` (one strictly above, one at-or-below), returning them in
    /// grid order. `None` when the landscape never crosses.
    pub fn crossing(&self, threshold: f64) -> Option<(LandscapePoint, LandscapePoint)> {
        self.points.windows(2).find_map(|pair| {
            let (a, b) = (pair[0], pair[1]);
            let above = |p: LandscapePoint| p.value > threshold;
            (above(a) != above(b)).then_some((a, b))
        })
    }
}

/// Evaluates `eval` at every grid value, propagating the first solver
/// error. Grid values must be finite.
pub fn landscape<E>(grid: &[f64], mut eval: E) -> Result<Landscape, CmeError>
where
    E: FnMut(f64) -> Result<f64, CmeError>,
{
    let mut points = Vec::with_capacity(grid.len());
    for &parameter in grid {
        if !parameter.is_finite() {
            return Err(CmeError::InvalidInput {
                message: format!("grid value {parameter} is not finite"),
            });
        }
        points.push(LandscapePoint {
            parameter,
            value: eval(parameter)?,
        });
    }
    Ok(Landscape { points })
}

/// Finds the parameter in `[lo, hi]` where the monotone measure `eval`
/// crosses `threshold`, by bisection on the logarithm of the parameter,
/// down to relative width `rel_tol`.
///
/// Requires `0 < lo < hi`, both finite, and the endpoint values to straddle
/// the threshold (otherwise the boundary is outside the bracket and an
/// [`CmeError::InvalidInput`] is returned). If an endpoint already sits
/// exactly on the threshold, that endpoint is returned.
pub fn satisfaction_boundary<E>(
    lo: f64,
    hi: f64,
    threshold: f64,
    rel_tol: f64,
    mut eval: E,
) -> Result<f64, CmeError>
where
    E: FnMut(f64) -> Result<f64, CmeError>,
{
    if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi) {
        return Err(CmeError::InvalidInput {
            message: format!("bracket [{lo}, {hi}] must be finite with 0 < lo < hi"),
        });
    }
    if !(rel_tol.is_finite() && rel_tol > 0.0) {
        return Err(CmeError::InvalidInput {
            message: format!("relative tolerance {rel_tol} must be a positive number"),
        });
    }
    let f_lo = eval(lo)?;
    let f_hi = eval(hi)?;
    if f_lo == threshold {
        return Ok(lo);
    }
    if f_hi == threshold {
        return Ok(hi);
    }
    let lo_above = f_lo > threshold;
    if lo_above == (f_hi > threshold) {
        return Err(CmeError::InvalidInput {
            message: format!(
                "bracket endpoints do not straddle the threshold: f({lo}) = {f_lo}, \
                 f({hi}) = {f_hi}, threshold = {threshold}"
            ),
        });
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > rel_tol * lo {
        let mid = ((lo.ln() + hi.ln()) * 0.5).exp();
        // Guard against a bracket too tight for the geometric midpoint to
        // make progress in floating point.
        if mid <= lo || mid >= hi {
            break;
        }
        let f_mid = eval(mid)?;
        if f_mid == threshold {
            return Ok(mid);
        }
        if (f_mid > threshold) == lo_above {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(((lo.ln() + hi.ln()) * 0.5).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn landscape_preserves_grid_order() {
        let landscape = landscape(&[4.0, 1.0, 9.0], |x| Ok(x * x)).unwrap();
        assert_eq!(landscape.values(), vec![16.0, 1.0, 81.0]);
        assert_eq!(landscape.points()[1].parameter, 1.0);
    }

    #[test]
    fn crossing_brackets_the_threshold() {
        let landscape = landscape(&[1.0, 10.0, 100.0], |x| Ok(1.0 / x)).unwrap();
        let (a, b) = landscape.crossing(0.05).unwrap();
        assert_eq!((a.parameter, b.parameter), (10.0, 100.0));
        assert!(landscape.crossing(10.0).is_none());
    }

    #[test]
    fn boundary_converges_on_analytic_crossing() {
        // 1/x crosses 1e-4 at x = 1e4.
        let boundary = satisfaction_boundary(1.0, 1e6, 1e-4, 1e-12, |x| Ok(1.0 / x)).unwrap();
        assert!((boundary - 1e4).abs() / 1e4 < 1e-9, "boundary {boundary}");
    }

    #[test]
    fn boundary_handles_increasing_measures() {
        // x² crosses 100 at x = 10 (measure increasing in the parameter).
        let boundary = satisfaction_boundary(1.0, 1e3, 100.0, 1e-12, |x| Ok(x * x)).unwrap();
        assert!((boundary - 10.0).abs() / 10.0 < 1e-9, "boundary {boundary}");
    }

    #[test]
    fn boundary_is_deterministic() {
        let run = || satisfaction_boundary(0.5, 8192.0, 3e-3, 1e-12, |x| Ok(1.0 / x)).unwrap();
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn invalid_brackets_are_rejected() {
        assert!(satisfaction_boundary(2.0, 1.0, 0.5, 1e-9, Ok).is_err());
        assert!(satisfaction_boundary(0.0, 1.0, 0.5, 1e-9, Ok).is_err());
        assert!(satisfaction_boundary(1.0, 2.0, 9.0, 1e-9, Ok).is_err());
        assert!(satisfaction_boundary(1.0, 2.0, 1.5, 0.0, Ok).is_err());
    }

    #[test]
    fn solver_errors_propagate() {
        let err = landscape(&[1.0], |_| {
            Err(CmeError::InvalidInput {
                message: "boom".into(),
            })
        })
        .unwrap_err();
        assert!(matches!(err, CmeError::InvalidInput { .. }));
    }
}
