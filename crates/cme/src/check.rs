//! Time-bounded probabilistic model checking over the chemical master
//! equation.
//!
//! [`Checker`] evaluates a small property language against the CTMC induced
//! by a CRN and a finite-state-projection window:
//!
//! * `P(reach A before B)` — [`Checker::reach_before`], a race between two
//!   target sets resolved by GTH elimination (via [`FirstPassage`]).
//! * `P(X_s ≥ k within [t₁, t₂])` — [`Checker::reach_within`], time-bounded
//!   reachability by uniformization with target-set absorption.
//! * Expected first-passage time — [`Checker::hitting_time`], a dense
//!   two-solve over the embedded jump chain.
//! * Stationary mass — [`Checker::stationary`], GTH stationary solve on the
//!   unique closed recurrent class.
//!
//! Every verdict is a pure function of the CRN, the initial state, and the
//! bounds, so verdicts are reproducible bit-for-bit and can be pinned as
//! goldens or cross-validated against SSA ensembles.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), cme::CmeError> {
//! use cme::{Checker, PopulationBounds};
//!
//! // A coin flip: x decays into heads at rate 3 or tails at rate 1.
//! let crn: crn::Crn = "x -> h @ 3\nx -> t @ 1".parse().expect("network");
//! let initial = crn.state_from_counts([("x", 1)]).expect("state");
//! let checker = Checker::new(&crn, initial, PopulationBounds::strict(1));
//!
//! let race = checker.reach_before_species(("h", 1), ("t", 1))?;
//! assert!((race.target - 0.75).abs() < 1e-12);
//!
//! // P(h ≥ 1 within [0, t]) = 0.75·(1 − e^{−4t}).
//! let window = checker.species_within("h", 1, (0.0, 0.5))?;
//! let exact = 0.75 * (1.0 - (-2.0f64).exp());
//! assert!((window.probability - exact).abs() < 1e-9);
//!
//! // The decision fires at rate 4, so E[T | heads] = 1/4.
//! let passage = checker.hitting_time_species("h", 1)?;
//! assert!((passage.probability - 0.75).abs() < 1e-12);
//! assert!((passage.conditional_mean.unwrap() - 0.25).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use crn::{Crn, SpeciesId, State};

use crate::bounds::PopulationBounds;
use crate::error::CmeError;
use crate::generator::GeneratorMatrix;
use crate::outcome::{strongly_connected_components, FirstPassage};
use crate::space::StateSpace;
use crate::transient::{transient, transient_substochastic};

/// Default Poisson-tail tolerance for uniformization phases.
const DEFAULT_EPSILON: f64 = 1e-12;
/// Default cap on the dense linear systems (hitting times, stationary GTH).
const DEFAULT_DENSE_LIMIT: usize = 2048;
/// Hit probabilities below this are reported as "never hits" (no mean).
const NEVER_HITS: f64 = 1e-12;

/// A probabilistic model checker bound to one CRN, initial state and
/// finite-state-projection window. See the [module docs](self) for the
/// property language and an end-to-end example.
#[derive(Debug, Clone)]
pub struct Checker<'a> {
    crn: &'a Crn,
    initial: State,
    bounds: PopulationBounds,
    epsilon: f64,
    dense_limit: usize,
}

/// Verdict of a race property `P(reach target before competitor)`.
///
/// The four fields partition the unit of probability:
/// `target + competitor + never + escaped = 1` (to solver tolerance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceVerdict {
    /// Probability the target set is reached strictly before the competitor.
    pub target: f64,
    /// Probability the competitor set is reached first.
    pub competitor: f64,
    /// Probability neither set is ever reached (the chain is trapped in a
    /// closed class that intersects neither).
    pub never: f64,
    /// Probability mass lost through finite-state-projection truncation.
    pub escaped: f64,
    /// Number of states in the enumerated space.
    pub states: usize,
}

/// Verdict of a time-window property `P(reach target within [t₁, t₂])`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowVerdict {
    /// Lower bound on the probability of visiting the target set at some
    /// time in the window (exact up to `error_bound`).
    pub probability: f64,
    /// Mass unaccounted for by truncation of the uniformization series and
    /// finite-state-projection leak; the true probability lies in
    /// `[probability, probability + error_bound]`.
    pub error_bound: f64,
    /// Number of states in the enumerated space.
    pub states: usize,
    /// Total uniformization terms summed across both phases.
    pub terms: usize,
}

/// Verdict of an expected first-passage-time query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HittingTime {
    /// Probability the target set is ever reached.
    pub probability: f64,
    /// Expected hitting time conditioned on reaching the target, or `None`
    /// when the hit probability is (numerically) zero.
    pub conditional_mean: Option<f64>,
    /// Number of states in the enumerated space.
    pub states: usize,
}

/// The stationary law of the chain, supported on its unique closed
/// recurrent class.
///
/// Under [`crate::BoundaryPolicy::Truncate`] the law is that of the
/// truncation-reflected chain (the standard finite-state-projection
/// approximation); [`StationaryDistribution::boundary_mass`] reports how
/// much stationary mass sits on leaking boundary states, which bounds the
/// quality of that approximation.
#[derive(Debug, Clone)]
pub struct StationaryDistribution {
    space: StateSpace,
    probabilities: Vec<f64>,
    recurrent_states: usize,
    boundary_mass: f64,
}

impl<'a> Checker<'a> {
    /// Creates a checker for `crn` started from `initial` and explored
    /// within `bounds`.
    pub fn new(crn: &'a Crn, initial: State, bounds: PopulationBounds) -> Self {
        Checker {
            crn,
            initial,
            bounds,
            epsilon: DEFAULT_EPSILON,
            dense_limit: DEFAULT_DENSE_LIMIT,
        }
    }

    /// Overrides the Poisson-tail tolerance used by uniformization phases
    /// (default `1e-12`).
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Overrides the cap on dense linear systems solved by
    /// [`hitting_time`](Self::hitting_time) and
    /// [`stationary`](Self::stationary) (default 2048 states).
    #[must_use]
    pub fn dense_limit(mut self, dense_limit: usize) -> Self {
        self.dense_limit = dense_limit;
        self
    }

    fn species(&self, name: &str) -> Result<SpeciesId, CmeError> {
        self.crn
            .species_id(name)
            .ok_or_else(|| CmeError::InvalidInput {
                message: format!("unknown species '{name}'"),
            })
    }

    /// Evaluates `P(reach target before competitor)` by exact first-passage
    /// analysis. States matching both predicates count as `target` (the
    /// first-registered outcome wins, as in [`FirstPassage`]).
    pub fn reach_before<F, G>(&self, target: F, competitor: G) -> Result<RaceVerdict, CmeError>
    where
        F: Fn(&State) -> bool,
        G: Fn(&State) -> bool,
    {
        let distribution = FirstPassage::new(self.crn)
            .outcome("target", target)
            .outcome("competitor", competitor)
            .solve(&self.initial, &self.bounds)?;
        Ok(RaceVerdict {
            target: distribution.probability("target"),
            competitor: distribution.probability("competitor"),
            never: distribution.undecided(),
            escaped: distribution.escaped(),
            states: distribution.states(),
        })
    }

    /// [`reach_before`](Self::reach_before) with threshold targets: each
    /// side is `(species, count)` and fires once the species reaches the
    /// count.
    pub fn reach_before_species(
        &self,
        target: (&str, u64),
        competitor: (&str, u64),
    ) -> Result<RaceVerdict, CmeError> {
        let a = self.species(target.0)?;
        let b = self.species(competitor.0)?;
        let (ka, kb) = (target.1, competitor.1);
        self.reach_before(|s| s.count(a) >= ka, |s| s.count(b) >= kb)
    }

    /// Evaluates `P(∃ t ∈ [t₁, t₂]: X(t) ∈ target)` by two-phase
    /// uniformization: the free chain is run to `t₁`, then the same
    /// probability vector evolves under the target-absorbed generator
    /// ([`GeneratorMatrix::from_space_absorbing`]) for `t₂ − t₁`; the mass
    /// on target states at the end is the answer. The verdict is monotone
    /// non-decreasing in `t₂` because absorbed mass never leaves.
    pub fn reach_within<F>(&self, target: F, window: (f64, f64)) -> Result<WindowVerdict, CmeError>
    where
        F: Fn(&State) -> bool,
    {
        let (t1, t2) = window;
        if !t1.is_finite() || !t2.is_finite() || t1 < 0.0 || t2 < t1 {
            return Err(CmeError::InvalidInput {
                message: format!("window [{t1}, {t2}] must be finite with 0 ≤ t1 ≤ t2"),
            });
        }
        let space = StateSpace::enumerate(self.crn, &self.initial, &self.bounds)?;
        let mut p = vec![0.0; space.len()];
        p[space.initial_index()] = 1.0;
        let mut terms = 0;
        if t1 > 0.0 {
            let free = GeneratorMatrix::from_space(&space);
            let warm = transient(&free, &p, t1, self.epsilon)?;
            terms += warm.terms;
            p = warm.probabilities;
        }
        let absorbed = GeneratorMatrix::from_space_absorbing(&space, &target);
        let solution = transient_substochastic(&absorbed, &p, t2 - t1, self.epsilon)?;
        terms += solution.terms;
        let probability = space
            .probability_where(&solution.probabilities, &target)
            .clamp(0.0, 1.0);
        let retained: f64 = solution.probabilities.iter().sum();
        Ok(WindowVerdict {
            probability,
            error_bound: (1.0 - retained).max(0.0),
            states: space.len(),
            terms,
        })
    }

    /// [`reach_within`](Self::reach_within) for the deadline window
    /// `[0, t]`.
    pub fn reach_by<F>(&self, target: F, t: f64) -> Result<WindowVerdict, CmeError>
    where
        F: Fn(&State) -> bool,
    {
        self.reach_within(target, (0.0, t))
    }

    /// Evaluates `P(X_species ≥ at_least within [t₁, t₂])`.
    pub fn species_within(
        &self,
        species: &str,
        at_least: u64,
        window: (f64, f64),
    ) -> Result<WindowVerdict, CmeError> {
        let id = self.species(species)?;
        self.reach_within(|s| s.count(id) >= at_least, window)
    }

    /// Computes the hit probability and the expected first-passage time
    /// into the target set, conditioned on hitting it.
    ///
    /// The space is enumerated with the target absorbing; over its
    /// transient states the embedded jump chain gives two dense linear
    /// systems, `(I − T)·p = hit` and `(I − T)·g = p/q`, solved by one LU
    /// factorization. Closed recurrent classes disjoint from the target are
    /// detected up front and fixed at hit probability zero. Under
    /// truncating bounds, leaked trajectories count as never hitting, so
    /// the probability is a lower bound.
    pub fn hitting_time<F>(&self, target: F) -> Result<HittingTime, CmeError>
    where
        F: Fn(&State) -> bool,
    {
        let space =
            StateSpace::enumerate_absorbing(self.crn, &self.initial, &self.bounds, &target)?;
        let n = space.len();
        if space.is_absorbing(space.initial_index()) {
            return Ok(HittingTime {
                probability: 1.0,
                conditional_mean: Some(0.0),
                states: n,
            });
        }
        let transient_idx: Vec<usize> = (0..n).filter(|&i| !space.is_absorbing(i)).collect();
        let m = transient_idx.len();
        if m > self.dense_limit {
            return Err(CmeError::InvalidInput {
                message: format!(
                    "hitting-time system has {m} transient states, above the dense limit {}",
                    self.dense_limit
                ),
            });
        }
        let mut local = vec![usize::MAX; n];
        for (row, &i) in transient_idx.iter().enumerate() {
            local[i] = row;
        }
        // States inside a closed class (or dead ends) never reach the
        // target; pin them to identity rows so `I − T` stays nonsingular.
        let locked = locked_states(&space);
        let mut a = vec![0.0; m * m];
        let mut b_hit = vec![0.0; m];
        let mut outflow = vec![0.0; m];
        for (row, &i) in transient_idx.iter().enumerate() {
            a[row * m + row] = 1.0;
            if locked[i] {
                continue;
            }
            let q = space.total_outflow(i);
            outflow[row] = q;
            if q <= 0.0 {
                continue;
            }
            for (j, rate) in space.transitions(i) {
                let jump = rate / q;
                if space.is_absorbing(j) {
                    b_hit[row] += jump;
                } else {
                    a[row * m + local[j]] -= jump;
                }
            }
        }
        let lu = DenseLu::factor(a, m)?;
        let p_hit = lu.solve(&b_hit);
        let b_time: Vec<f64> = p_hit
            .iter()
            .zip(&outflow)
            .map(|(&p, &q)| if q > 0.0 { p / q } else { 0.0 })
            .collect();
        let holding = lu.solve(&b_time);
        let row0 = local[space.initial_index()];
        let probability = p_hit[row0].clamp(0.0, 1.0);
        let conditional_mean = if probability > NEVER_HITS {
            Some((holding[row0] / p_hit[row0]).max(0.0))
        } else {
            None
        };
        Ok(HittingTime {
            probability,
            conditional_mean,
            states: n,
        })
    }

    /// [`hitting_time`](Self::hitting_time) with a threshold target:
    /// the first time `species` reaches `at_least` copies.
    pub fn hitting_time_species(
        &self,
        species: &str,
        at_least: u64,
    ) -> Result<HittingTime, CmeError> {
        let id = self.species(species)?;
        self.hitting_time(|s| s.count(id) >= at_least)
    }

    /// Computes the stationary distribution of the chain by GTH elimination
    /// over its unique closed recurrent class.
    ///
    /// Errors if the reachable space has no closed recurrent class (every
    /// class leaks out of the window) or more than one (the stationary law
    /// would depend on which class captures the chain). The GTH solve uses
    /// additions and divisions of non-negative numbers only, so the result
    /// carries no subtractive cancellation.
    pub fn stationary(&self) -> Result<StationaryDistribution, CmeError> {
        let space = StateSpace::enumerate(self.crn, &self.initial, &self.bounds)?;
        let n = space.len();
        let components = strongly_connected_components(&space);
        let mut comp_of = vec![0usize; n];
        for (c, members) in components.iter().enumerate() {
            for &i in members {
                comp_of[i] = c;
            }
        }
        let closed: Vec<usize> = components
            .iter()
            .enumerate()
            .filter(|(c, members)| {
                members
                    .iter()
                    .all(|&i| space.transitions(i).all(|(j, _)| comp_of[j] == *c))
            })
            .map(|(c, _)| c)
            .collect();
        match closed.len() {
            1 => {}
            0 => {
                return Err(CmeError::InvalidInput {
                    message: "no closed recurrent class inside the bounds window".into(),
                })
            }
            k => {
                return Err(CmeError::InvalidInput {
                    message: format!(
                        "{k} closed recurrent classes: the stationary law is not unique"
                    ),
                })
            }
        }
        let mut class = components[closed[0]].clone();
        class.sort_unstable();
        let m = class.len();
        if m > self.dense_limit {
            return Err(CmeError::InvalidInput {
                message: format!(
                    "recurrent class has {m} states, above the dense limit {}",
                    self.dense_limit
                ),
            });
        }
        let mut local = vec![usize::MAX; n];
        for (k, &i) in class.iter().enumerate() {
            local[i] = k;
        }
        let mut w = vec![0.0; m * m];
        for (row, &i) in class.iter().enumerate() {
            for (j, rate) in space.transitions(i) {
                w[row * m + local[j]] += rate;
            }
        }
        // GTH elimination: censor states m−1 … 1 out of the chain, then
        // back-substitute. Only additions and divisions touch `w`.
        let mut strength = vec![0.0; m];
        for k in (1..m).rev() {
            let sk: f64 = w[k * m..k * m + k].iter().sum();
            if sk <= 0.0 {
                return Err(CmeError::InvalidInput {
                    message: "recurrent class is not irreducible".into(),
                });
            }
            strength[k] = sk;
            for i in 0..k {
                let f = w[i * m + k] / sk;
                if f == 0.0 {
                    continue;
                }
                for j in 0..k {
                    w[i * m + j] += f * w[k * m + j];
                }
            }
        }
        let mut pi = vec![0.0; m];
        pi[0] = 1.0;
        for k in 1..m {
            pi[k] = (0..k).map(|i| pi[i] * w[i * m + k]).sum::<f64>() / strength[k];
        }
        let total: f64 = pi.iter().sum();
        let mut probabilities = vec![0.0; n];
        for (k, &i) in class.iter().enumerate() {
            probabilities[i] = pi[k] / total;
        }
        let boundary_mass = (0..n)
            .filter(|&i| space.leak_rate(i) > 0.0)
            .map(|i| probabilities[i])
            .sum();
        Ok(StationaryDistribution {
            space,
            probabilities,
            recurrent_states: m,
            boundary_mass,
        })
    }

    /// Convenience: the stationary probability mass of the states matching
    /// `predicate`.
    pub fn stationary_mass<F>(&self, predicate: F) -> Result<f64, CmeError>
    where
        F: Fn(&State) -> bool,
    {
        let stationary = self.stationary()?;
        Ok(stationary.mass(predicate))
    }

    /// Convenience: the stationary mean copy number of `species`.
    pub fn stationary_expectation(&self, species: &str) -> Result<f64, CmeError> {
        let id = self.species(species)?;
        let stationary = self.stationary()?;
        Ok(stationary.expectation(id))
    }
}

impl StationaryDistribution {
    /// Returns the stationary probability of each state, aligned with
    /// [`space`](Self::space) indices; states outside the recurrent class
    /// carry exactly zero.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Returns the enumerated state space the law lives on.
    pub fn space(&self) -> &StateSpace {
        &self.space
    }

    /// Returns the number of states in the closed recurrent class.
    pub fn recurrent_states(&self) -> usize {
        self.recurrent_states
    }

    /// Returns the stationary mass sitting on states that leak out of the
    /// truncation window — a quality bound on the finite-state-projection
    /// approximation (exactly zero for strict bounds).
    pub fn boundary_mass(&self) -> f64 {
        self.boundary_mass
    }

    /// Returns the stationary mass of states matching `predicate`.
    pub fn mass<F>(&self, predicate: F) -> f64
    where
        F: Fn(&State) -> bool,
    {
        self.space.probability_where(&self.probabilities, predicate)
    }

    /// Returns the stationary mean copy number of `species`.
    pub fn expectation(&self, species: SpeciesId) -> f64 {
        self.space.expectation(&self.probabilities, species)
    }

    /// Returns the stationary marginal distribution of `species`.
    pub fn marginal(&self, species: SpeciesId) -> Vec<f64> {
        self.space.marginal(&self.probabilities, species)
    }
}

/// Marks every state inside a closed strongly-connected class (no exits,
/// no leak, not absorbing) plus outflow-free dead ends: states from which
/// the absorbing set is unreachable.
fn locked_states(space: &StateSpace) -> Vec<bool> {
    let n = space.len();
    let components = strongly_connected_components(space);
    let mut comp_of = vec![0usize; n];
    for (c, members) in components.iter().enumerate() {
        for &i in members {
            comp_of[i] = c;
        }
    }
    let mut locked = vec![false; n];
    for (c, members) in components.iter().enumerate() {
        let closed = members.iter().all(|&i| {
            !space.is_absorbing(i)
                && space.leak_rate(i) == 0.0
                && space.transitions(i).all(|(j, _)| comp_of[j] == c)
        });
        if closed {
            for &i in members {
                locked[i] = true;
            }
        }
    }
    locked
}

/// Dense LU factorization with partial pivoting, sized for the checker's
/// diagonally-dominant `I − T` systems.
struct DenseLu {
    m: usize,
    lu: Vec<f64>,
    pivots: Vec<usize>,
}

impl DenseLu {
    fn factor(mut a: Vec<f64>, m: usize) -> Result<Self, CmeError> {
        debug_assert_eq!(a.len(), m * m);
        let mut pivots = vec![0usize; m];
        for k in 0..m {
            let mut best = k;
            let mut best_abs = a[k * m + k].abs();
            for r in k + 1..m {
                let v = a[r * m + k].abs();
                if v > best_abs {
                    best = r;
                    best_abs = v;
                }
            }
            if best_abs < 1e-12 {
                return Err(CmeError::InvalidInput {
                    message: "singular linear system in first-passage solve".into(),
                });
            }
            pivots[k] = best;
            if best != k {
                for c in 0..m {
                    a.swap(k * m + c, best * m + c);
                }
            }
            let pivot = a[k * m + k];
            for r in k + 1..m {
                let f = a[r * m + k] / pivot;
                a[r * m + k] = f;
                if f == 0.0 {
                    continue;
                }
                for c in k + 1..m {
                    a[r * m + c] -= f * a[k * m + c];
                }
            }
        }
        Ok(DenseLu { m, lu: a, pivots })
    }

    fn solve(&self, b: &[f64]) -> Vec<f64> {
        let m = self.m;
        debug_assert_eq!(b.len(), m);
        let mut x = b.to_vec();
        for k in 0..m {
            x.swap(k, self.pivots[k]);
            let xk = x[k];
            if xk == 0.0 {
                continue;
            }
            for (r, xr) in x.iter_mut().enumerate().skip(k + 1) {
                *xr -= self.lu[r * m + k] * xk;
            }
        }
        for k in (0..m).rev() {
            let tail: f64 = (k + 1..m).map(|c| self.lu[k * m + c] * x[c]).sum();
            x[k] = (x[k] - tail) / self.lu[k * m + k];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coin() -> (Crn, State) {
        let crn: Crn = "x -> h @ 3\nx -> t @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        (crn, initial)
    }

    #[test]
    fn race_matches_rate_ratio() {
        let (crn, initial) = coin();
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(1));
        let race = checker.reach_before_species(("h", 1), ("t", 1)).unwrap();
        assert!((race.target - 0.75).abs() < 1e-12);
        assert!((race.competitor - 0.25).abs() < 1e-12);
        assert!(race.never.abs() < 1e-12);
        assert!((race.target + race.competitor + race.never + race.escaped - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_probability_matches_exponential_law() {
        let (crn, initial) = coin();
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(1));
        // Decision at rate 4, heads with probability 3/4:
        // P(h within [0, t]) = 0.75 (1 − e^{−4t}).
        for t in [0.05, 0.2, 1.0, 3.0] {
            let verdict = checker.species_within("h", 1, (0.0, t)).unwrap();
            let exact = 0.75 * (1.0 - (-4.0 * t).exp());
            assert!(
                (verdict.probability - exact).abs() < 1e-9,
                "t={t}: got {} want {exact}",
                verdict.probability
            );
        }
    }

    #[test]
    fn deferred_window_excludes_early_decisions() {
        let (crn, initial) = coin();
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(1));
        // Heads is a trap state, so P(h in [t1, t2]) = P(h by t2): mass that
        // arrived before t1 is still there at t1.
        let early = checker.species_within("h", 1, (0.0, 2.0)).unwrap();
        let late = checker.species_within("h", 1, (1.0, 2.0)).unwrap();
        assert!((early.probability - late.probability).abs() < 1e-9);
        // A window of zero width reports the transient law at t1.
        let slice = checker.species_within("h", 1, (0.5, 0.5)).unwrap();
        let exact = 0.75 * (1.0 - (-2.0f64).exp());
        assert!((slice.probability - exact).abs() < 1e-9);
    }

    #[test]
    fn window_probability_is_monotone_in_deadline() {
        let crn: Crn = "a -> b @ 1\nb -> a @ 2".parse().unwrap();
        let initial = crn.state_from_counts([("a", 3)]).unwrap();
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(3));
        let mut last = 0.0;
        for t in [0.1, 0.3, 0.7, 1.5, 3.0] {
            let verdict = checker.species_within("b", 3, (0.0, t)).unwrap();
            assert!(verdict.probability + 1e-12 >= last, "not monotone at t={t}");
            last = verdict.probability;
        }
    }

    #[test]
    fn hitting_time_matches_exponential_race() {
        let (crn, initial) = coin();
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(1));
        let hit = checker.hitting_time_species("h", 1).unwrap();
        assert!((hit.probability - 0.75).abs() < 1e-12);
        assert!((hit.conditional_mean.unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hitting_time_of_pure_death_chain() {
        // a -> 0 @ 1 from a=3: absorption at a=0 is a sum of exponentials
        // with rates 3, 2, 1 → mean 1/3 + 1/2 + 1 = 11/6.
        let crn: Crn = "a -> 0 @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 3)]).unwrap();
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(3));
        let hit = checker.hitting_time(|s| s.counts()[0] == 0).unwrap();
        assert!((hit.probability - 1.0).abs() < 1e-12);
        assert!((hit.conditional_mean.unwrap() - 11.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_target_reports_never() {
        // b is never produced.
        let crn: Crn = "a -> c @ 1\nb -> c @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(1));
        let hit = checker.hitting_time_species("b", 1).unwrap();
        assert_eq!(hit.probability, 0.0);
        assert!(hit.conditional_mean.is_none());
    }

    #[test]
    fn hitting_time_with_trapped_class() {
        // From x the chain either commits to the a <-> b loop (never hits
        // g) or decays to g. P(hit) = 1/2, E[T | hit] = 1/2 (the Exp(2)
        // holding time of x, independent of the direction taken).
        let crn: Crn = "x -> a @ 1\nx -> g @ 1\na -> b @ 5\nb -> a @ 5"
            .parse()
            .unwrap();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(1));
        let hit = checker.hitting_time_species("g", 1).unwrap();
        assert!((hit.probability - 0.5).abs() < 1e-12);
        assert!((hit.conditional_mean.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stationary_of_two_state_switch() {
        let crn: Crn = "a -> b @ 3\nb -> a @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(1));
        let stationary = checker.stationary().unwrap();
        let b = crn.species_id("b").unwrap();
        assert_eq!(stationary.recurrent_states(), 2);
        assert!((stationary.expectation(b) - 0.75).abs() < 1e-12);
        assert_eq!(stationary.boundary_mass(), 0.0);
    }

    #[test]
    fn stationary_of_truncated_birth_death() {
        // Birth-death with birth λ=2, death μ=1 per copy, truncated at 8:
        // π_k ∝ 2^k / k! (Poisson(2) restricted to 0..=8).
        let crn: Crn = "0 -> a @ 2\na -> 0 @ 1".parse().unwrap();
        let checker = Checker::new(&crn, crn.zero_state(), PopulationBounds::truncating(8));
        let stationary = checker.stationary().unwrap();
        let weights: Vec<f64> = (0..=8)
            .scan(1.0f64, |w, k| {
                if k > 0 {
                    *w *= 2.0 / k as f64;
                }
                Some(*w)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let a = crn.species_id("a").unwrap();
        let marginal = stationary.marginal(a);
        for (k, (&got, &want)) in marginal.iter().zip(&weights).enumerate() {
            assert!(
                (got - want / total).abs() < 1e-12,
                "π_{k}: got {got} want {}",
                want / total
            );
        }
        assert!(stationary.boundary_mass() > 0.0);
    }

    #[test]
    fn stationary_rejects_competing_traps() {
        let crn: Crn = "x -> a @ 1\nx -> b @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(1));
        let err = checker.stationary().unwrap_err();
        assert!(matches!(err, CmeError::InvalidInput { .. }));
    }

    #[test]
    fn invalid_windows_are_rejected() {
        let (crn, initial) = coin();
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(1));
        for window in [
            (1.0, 0.5),
            (-0.1, 1.0),
            (0.0, f64::NAN),
            (0.0, f64::INFINITY),
        ] {
            assert!(checker.species_within("h", 1, window).is_err());
        }
        assert!(checker.species_within("nope", 1, (0.0, 1.0)).is_err());
    }

    #[test]
    fn dense_lu_solves_reference_system() {
        // A = [[2, 1], [1, 3]], b = [3, 5] → x = [4/5, 7/5].
        let lu = DenseLu::factor(vec![2.0, 1.0, 1.0, 3.0], 2).unwrap();
        let x = lu.solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }
}
