//! Breadth-first enumeration of the reachable state space.

use std::collections::HashMap;

use crn::{Crn, Reaction, SpeciesId, State};

use crate::bounds::{BoundaryPolicy, PopulationBounds};
use crate::error::CmeError;

/// Mass-action propensity of `reaction` in `state` — `k · Π_s C(X_s, ν_s)`,
/// Gillespie's combination-counting formulation. Zero whenever a reactant is
/// short. Kept local so `cme` depends only on the `crn` data model; the
/// oracle tests pin it bitwise against `gillespie::propensity`.
pub(crate) fn propensity(reaction: &Reaction, state: &State) -> f64 {
    let mut combinations = 1.0f64;
    for term in reaction.reactants() {
        let count = match state.try_count(term.species) {
            Some(c) => c,
            None => return 0.0,
        };
        if count < u64::from(term.coefficient) {
            return 0.0;
        }
        let mut falling = 1.0f64;
        let mut factorial = 1.0f64;
        for i in 0..u64::from(term.coefficient) {
            falling *= (count - i) as f64;
            factorial *= (i + 1) as f64;
        }
        combinations *= falling / factorial;
    }
    reaction.rate() * combinations
}

/// The reachable state space of a [`Crn`] from one initial state, within
/// [`PopulationBounds`], together with its transition structure in CSR form.
///
/// States are indexed in breadth-first discovery order; index 0 is the
/// initial state. Self-loop transitions (reactions with identical reactant
/// and product multisets) are dropped — they cancel in the generator and
/// only delay the embedded jump chain.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), cme::CmeError> {
/// use cme::{PopulationBounds, StateSpace};
///
/// let crn: crn::Crn = "a -> b @ 1\nb -> a @ 2".parse().expect("network");
/// let initial = crn.state_from_counts([("a", 3)]).expect("state");
/// let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(3))?;
/// // The 3 molecules distribute as (3,0), (2,1), (1,2), (0,3).
/// assert_eq!(space.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StateSpace {
    states: Vec<State>,
    index: HashMap<State, usize>,
    edge_ptr: Vec<usize>,
    edge_target: Vec<usize>,
    edge_rate: Vec<f64>,
    leak: Vec<f64>,
    absorbing: Vec<bool>,
    truncated: bool,
}

impl StateSpace {
    /// Enumerates every state reachable from `initial` within `bounds`.
    ///
    /// # Errors
    ///
    /// Returns [`CmeError::BoundExceeded`] under
    /// [strict](PopulationBounds::strict) bounds when a reachable state
    /// exceeds a species cap (the error names the offending species), and
    /// [`CmeError::StateBudgetExceeded`] when the reachable set outgrows the
    /// state budget.
    pub fn enumerate(
        crn: &Crn,
        initial: &State,
        bounds: &PopulationBounds,
    ) -> Result<Self, CmeError> {
        Self::enumerate_absorbing(crn, initial, bounds, |_| false)
    }

    /// Enumerates the reachable state space, treating every state matching
    /// `absorbing` as absorbing: its outgoing transitions are removed and it
    /// is not expanded further. This is how first-passage problems are posed
    /// — the chain is stopped at the first visit to a target class.
    ///
    /// # Errors
    ///
    /// Same as [`StateSpace::enumerate`].
    pub fn enumerate_absorbing<F>(
        crn: &Crn,
        initial: &State,
        bounds: &PopulationBounds,
        absorbing: F,
    ) -> Result<Self, CmeError>
    where
        F: Fn(&State) -> bool,
    {
        if initial.species_len() != crn.species_len() {
            return Err(CmeError::InvalidInput {
                message: format!(
                    "initial state tracks {} species but the network has {}",
                    initial.species_len(),
                    crn.species_len()
                ),
            });
        }
        let caps = bounds.resolve(crn);
        let budget = bounds.state_budget();
        let over_cap = |state: &State| -> Option<usize> {
            state
                .counts()
                .iter()
                .zip(&caps)
                .position(|(&count, &cap)| count > cap)
        };
        if let Some(s) = over_cap(initial) {
            return Err(CmeError::BoundExceeded {
                species: crn.species()[s].name().to_string(),
                cap: caps[s],
            });
        }

        let mut space = StateSpace {
            states: vec![initial.clone()],
            index: HashMap::from([(initial.clone(), 0usize)]),
            edge_ptr: vec![0],
            edge_target: Vec::new(),
            edge_rate: Vec::new(),
            leak: Vec::new(),
            absorbing: Vec::new(),
            truncated: bounds.policy() == BoundaryPolicy::Truncate,
        };

        // Classic BFS worklist: states are expanded in discovery order, so
        // the CSR rows fill in index order.
        let mut next = 0usize;
        while next < space.states.len() {
            let state = space.states[next].clone();
            let is_absorbing = absorbing(&state);
            space.absorbing.push(is_absorbing);
            let mut leak = 0.0f64;
            if !is_absorbing {
                for reaction in crn.reactions() {
                    let rate = propensity(reaction, &state);
                    if rate <= 0.0 {
                        continue;
                    }
                    let successor = state
                        .after(reaction)
                        .expect("positive propensity implies the reaction can fire");
                    if successor == state {
                        continue; // self-loop: cancels in the generator
                    }
                    if let Some(s) = over_cap(&successor) {
                        match bounds.policy() {
                            BoundaryPolicy::Strict => {
                                return Err(CmeError::BoundExceeded {
                                    species: crn.species()[s].name().to_string(),
                                    cap: caps[s],
                                });
                            }
                            BoundaryPolicy::Truncate => {
                                leak += rate;
                                continue;
                            }
                        }
                    }
                    let target = match space.index.get(&successor) {
                        Some(&i) => i,
                        None => {
                            let i = space.states.len();
                            if i >= budget {
                                return Err(CmeError::StateBudgetExceeded { budget });
                            }
                            space.states.push(successor.clone());
                            space.index.insert(successor, i);
                            i
                        }
                    };
                    space.edge_target.push(target);
                    space.edge_rate.push(rate);
                }
            }
            space.edge_ptr.push(space.edge_target.len());
            space.leak.push(leak);
            next += 1;
        }
        Ok(space)
    }

    /// Returns the number of retained states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the space has no states (never true for an
    /// enumerated space — the initial state is always retained).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Returns the states in index (breadth-first discovery) order.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// Returns the state at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn state(&self, index: usize) -> &State {
        &self.states[index]
    }

    /// Returns the index of the initial state (always 0).
    pub fn initial_index(&self) -> usize {
        0
    }

    /// Looks up the index of a state, if it was retained.
    pub fn index_of(&self, state: &State) -> Option<usize> {
        self.index.get(state).copied()
    }

    /// Returns `true` if the state at `index` was made absorbing by the
    /// enumeration predicate.
    pub fn is_absorbing(&self, index: usize) -> bool {
        self.absorbing[index]
    }

    /// Returns the outgoing transitions of the state at `index` as
    /// `(target index, rate)` pairs.
    pub fn transitions(&self, index: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.edge_ptr[index]..self.edge_ptr[index + 1];
        self.edge_target[range.clone()]
            .iter()
            .copied()
            .zip(self.edge_rate[range].iter().copied())
    }

    /// Returns the total rate flowing from the state at `index` out of the
    /// retained window (always 0 under strict bounds).
    pub fn leak_rate(&self, index: usize) -> f64 {
        self.leak[index]
    }

    /// Returns the total outflow rate of the state at `index`, including any
    /// truncation leak.
    pub fn total_outflow(&self, index: usize) -> f64 {
        self.transitions(index).map(|(_, rate)| rate).sum::<f64>() + self.leak[index]
    }

    /// Returns `true` if the space was enumerated with truncating bounds.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Returns the number of stored transitions.
    pub fn transition_count(&self) -> usize {
        self.edge_target.len()
    }

    /// Projects a probability vector over states down to the marginal
    /// distribution of one species' molecule count: entry `k` is the
    /// probability that the species has exactly `k` molecules.
    ///
    /// # Panics
    ///
    /// Panics if `probabilities` does not have one entry per state or the
    /// species is out of range for the network.
    pub fn marginal(&self, probabilities: &[f64], species: SpeciesId) -> Vec<f64> {
        assert_eq!(
            probabilities.len(),
            self.states.len(),
            "need one probability per state"
        );
        let max_count = self
            .states
            .iter()
            .map(|s| s.count(species))
            .max()
            .unwrap_or(0);
        let mut marginal = vec![0.0; max_count as usize + 1];
        for (state, &p) in self.states.iter().zip(probabilities) {
            marginal[state.count(species) as usize] += p;
        }
        marginal
    }

    /// Returns the probability mass carried by states satisfying `predicate`.
    ///
    /// # Panics
    ///
    /// Panics if `probabilities` does not have one entry per state.
    pub fn probability_where<F>(&self, probabilities: &[f64], predicate: F) -> f64
    where
        F: Fn(&State) -> bool,
    {
        assert_eq!(
            probabilities.len(),
            self.states.len(),
            "need one probability per state"
        );
        self.states
            .iter()
            .zip(probabilities)
            .filter(|(state, _)| predicate(state))
            .map(|(_, &p)| p)
            .sum()
    }

    /// Returns the expected molecule count of one species under a
    /// probability vector over states.
    ///
    /// # Panics
    ///
    /// Panics if `probabilities` does not have one entry per state or the
    /// species is out of range.
    pub fn expectation(&self, probabilities: &[f64], species: SpeciesId) -> f64 {
        assert_eq!(
            probabilities.len(),
            self.states.len(),
            "need one probability per state"
        );
        self.states
            .iter()
            .zip(probabilities)
            .map(|(state, &p)| state.count(species) as f64 * p)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn isomerisation() -> (Crn, State) {
        let crn: Crn = "a -> b @ 1\nb -> a @ 2".parse().unwrap();
        let initial = crn.state_from_counts([("a", 3)]).unwrap();
        (crn, initial)
    }

    #[test]
    fn enumerates_the_closed_isomerisation_chain() {
        let (crn, initial) = isomerisation();
        let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(3)).unwrap();
        assert_eq!(space.len(), 4);
        assert!(!space.is_empty());
        assert!(!space.is_truncated());
        assert_eq!(space.initial_index(), 0);
        assert_eq!(space.index_of(&initial), Some(0));
        assert_eq!(space.state(0), &initial);
        // Interior states have two transitions, the two ends have one.
        let degree: Vec<usize> = (0..4).map(|i| space.transitions(i).count()).collect();
        assert_eq!(degree.iter().sum::<usize>(), space.transition_count());
        assert_eq!(degree.iter().filter(|&&d| d == 1).count(), 2);
        assert_eq!(degree.iter().filter(|&&d| d == 2).count(), 2);
        for i in 0..4 {
            assert_eq!(space.leak_rate(i), 0.0);
            assert!(!space.is_absorbing(i));
        }
    }

    #[test]
    fn strict_bounds_fail_with_the_offending_species() {
        let crn: Crn = "0 -> a @ 5".parse().unwrap();
        let initial = crn.zero_state();
        let err = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(4)).unwrap_err();
        assert_eq!(
            err,
            CmeError::BoundExceeded {
                species: "a".into(),
                cap: 4
            }
        );
        // The initial state itself can violate the caps.
        let crn2: Crn = "a -> 0 @ 1".parse().unwrap();
        let big = crn2.state_from_counts([("a", 10)]).unwrap();
        let err = StateSpace::enumerate(&crn2, &big, &PopulationBounds::strict(4)).unwrap_err();
        assert!(matches!(err, CmeError::BoundExceeded { .. }));
    }

    #[test]
    fn truncating_bounds_track_the_leak() {
        let crn: Crn = "0 -> a @ 5\na -> 0 @ 1".parse().unwrap();
        let initial = crn.zero_state();
        let space =
            StateSpace::enumerate(&crn, &initial, &PopulationBounds::truncating(4)).unwrap();
        assert_eq!(space.len(), 5); // a = 0..=4
        assert!(space.is_truncated());
        let a = crn.species_id("a").unwrap();
        // Only the boundary state a = 4 leaks, at the birth rate.
        for i in 0..space.len() {
            let expected = if space.state(i).count(a) == 4 {
                5.0
            } else {
                0.0
            };
            assert_eq!(space.leak_rate(i), expected);
        }
        let boundary = space
            .index_of(&crn.state_from_counts([("a", 4)]).unwrap())
            .unwrap();
        // Outflow at the boundary: death (4·1) plus the leaked birth.
        assert!((space.total_outflow(boundary) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn state_budget_is_enforced() {
        let (crn, initial) = isomerisation();
        let bounds = PopulationBounds::strict(3).max_states(3);
        let err = StateSpace::enumerate(&crn, &initial, &bounds).unwrap_err();
        assert_eq!(err, CmeError::StateBudgetExceeded { budget: 3 });
    }

    #[test]
    fn absorbing_predicate_stops_expansion() {
        let crn: Crn = "a -> b @ 1\nb -> c @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 2)]).unwrap();
        let b = crn.species_id("b").unwrap();
        let space = StateSpace::enumerate_absorbing(
            &crn,
            &initial,
            &PopulationBounds::strict(2),
            |state| state.count(b) >= 1,
        )
        .unwrap();
        // (2,0,0) -> (1,1,0) and stop: b ≥ 1 is absorbing, so no state with
        // c > 0 or b = 2 is ever reached.
        assert_eq!(space.len(), 2);
        assert!(space.is_absorbing(1));
        assert_eq!(space.transitions(1).count(), 0);
        assert_eq!(space.total_outflow(1), 0.0);
    }

    #[test]
    fn mismatched_initial_state_is_rejected() {
        let (crn, _) = isomerisation();
        let err =
            StateSpace::enumerate(&crn, &State::zero(5), &PopulationBounds::strict(3)).unwrap_err();
        assert!(matches!(err, CmeError::InvalidInput { .. }));
    }

    #[test]
    fn self_loops_are_dropped() {
        // `a -> a` is a no-op: the only state has no outgoing transitions.
        let crn: Crn = "a -> a @ 3".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(1)).unwrap();
        assert_eq!(space.len(), 1);
        assert_eq!(space.transition_count(), 0);
    }

    #[test]
    fn marginal_and_expectation_project_probability_vectors() {
        let (crn, initial) = isomerisation();
        let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(3)).unwrap();
        let b = crn.species_id("b").unwrap();
        // Uniform over the four states: b is uniform on {0, 1, 2, 3}.
        let probs = vec![0.25; 4];
        let marginal = space.marginal(&probs, b);
        assert_eq!(marginal.len(), 4);
        assert!(marginal.iter().all(|&p| (p - 0.25).abs() < 1e-12));
        assert!((space.expectation(&probs, b) - 1.5).abs() < 1e-12);
        let mass = space.probability_where(&probs, |s| s.count(b) >= 2);
        assert!((mass - 0.5).abs() < 1e-12);
    }

    #[test]
    fn local_propensity_matches_the_combination_formula() {
        let crn: Crn = "2 a -> b @ 3".parse().unwrap();
        let state = crn.state_from_counts([("a", 4)]).unwrap();
        // C(4, 2) = 6 pairs at rate 3.
        assert_eq!(propensity(&crn.reactions()[0], &state), 18.0);
        let short = crn.state_from_counts([("a", 1)]).unwrap();
        assert_eq!(propensity(&crn.reactions()[0], &short), 0.0);
    }
}
