//! Population bounds and truncation policy for state-space enumeration.

use serde::{Deserialize, Serialize};

/// What to do when a reachable state pushes a species past its cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundaryPolicy {
    /// Refuse with [`CmeError::BoundExceeded`](crate::CmeError::BoundExceeded).
    ///
    /// The right choice for *closed* systems (conserved totals, winner-take-all
    /// modules): every reachable state fits inside well-chosen caps, so
    /// hitting one means the caps — not the solver — are wrong.
    Strict,
    /// Finite-state projection: drop the transition and account its rate as
    /// *leak* out of the retained space.
    ///
    /// The CME is then solved on the truncated space; the probability mass
    /// that would have escaped accumulates in an implicit sink and is
    /// reported (e.g. [`TransientSolution::leaked`](crate::TransientSolution::leaked)),
    /// so the truncation error is rigorous, never silent. The right choice
    /// for open systems (birth processes) whose state space is infinite.
    Truncate,
}

/// Per-species population caps plus a total state budget.
///
/// Bounds select the finite window of the (possibly infinite) state space
/// that enumeration retains. Every species gets `default_cap` unless
/// overridden by name with [`PopulationBounds::cap`].
///
/// # Example
///
/// ```
/// use cme::PopulationBounds;
///
/// let bounds = PopulationBounds::truncating(400).cap("a", 600).max_states(100_000);
/// assert_eq!(bounds.cap_for("a"), 600);
/// assert_eq!(bounds.cap_for("b"), 400);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationBounds {
    default_cap: u64,
    species_caps: Vec<(String, u64)>,
    max_states: usize,
    policy: BoundaryPolicy,
}

/// Default maximum number of retained states.
const DEFAULT_MAX_STATES: usize = 2_000_000;

impl PopulationBounds {
    /// Creates strict bounds: exceeding any cap is a typed error.
    pub fn strict(default_cap: u64) -> Self {
        PopulationBounds {
            default_cap,
            species_caps: Vec::new(),
            max_states: DEFAULT_MAX_STATES,
            policy: BoundaryPolicy::Strict,
        }
    }

    /// Creates truncating (finite-state-projection) bounds: transitions out
    /// of the retained window become tracked probability leak.
    pub fn truncating(default_cap: u64) -> Self {
        PopulationBounds {
            default_cap,
            species_caps: Vec::new(),
            max_states: DEFAULT_MAX_STATES,
            policy: BoundaryPolicy::Truncate,
        }
    }

    /// Overrides the cap of one species by name (later calls win).
    pub fn cap(mut self, species: impl Into<String>, cap: u64) -> Self {
        self.species_caps.push((species.into(), cap));
        self
    }

    /// Sets the maximum number of retained states (default two million).
    /// Exceeding it is always an error, under either policy.
    pub fn max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Returns the cap that applies to `species`.
    pub fn cap_for(&self, species: &str) -> u64 {
        self.species_caps
            .iter()
            .rev()
            .find(|(name, _)| name == species)
            .map(|&(_, cap)| cap)
            .unwrap_or(self.default_cap)
    }

    /// Returns the state budget.
    pub fn state_budget(&self) -> usize {
        self.max_states
    }

    /// Returns the boundary policy.
    pub fn policy(&self) -> BoundaryPolicy {
        self.policy
    }

    /// Resolves the caps for every species of a network, in species order.
    pub(crate) fn resolve(&self, crn: &crn::Crn) -> Vec<u64> {
        crn.species()
            .iter()
            .map(|sp| self.cap_for(sp.name()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_species_overrides_beat_the_default() {
        let bounds = PopulationBounds::strict(10).cap("a", 3).cap("a", 5);
        assert_eq!(bounds.cap_for("a"), 5, "later override wins");
        assert_eq!(bounds.cap_for("other"), 10);
        assert_eq!(bounds.policy(), BoundaryPolicy::Strict);
        assert_eq!(
            PopulationBounds::truncating(1).policy(),
            BoundaryPolicy::Truncate
        );
    }

    #[test]
    fn resolve_follows_species_order() {
        let crn: crn::Crn = "a -> b @ 1".parse().unwrap();
        let bounds = PopulationBounds::strict(7).cap("b", 2);
        assert_eq!(bounds.resolve(&crn), vec![7, 2]);
    }

    #[test]
    fn state_budget_is_configurable() {
        assert_eq!(
            PopulationBounds::strict(1).max_states(42).state_budget(),
            42
        );
    }
}
