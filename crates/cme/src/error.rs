//! Error type for exact CME computations.

use std::error::Error;
use std::fmt;

/// Errors produced while enumerating state spaces or solving the CME.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CmeError {
    /// A reachable state pushed some species past its population cap while
    /// the bounds were [`strict`](crate::PopulationBounds::strict).
    ///
    /// This is a *typed* refusal, not a silent clamp: the caller either
    /// raises the cap (the system genuinely visits larger populations) or
    /// opts into finite-state-projection truncation with
    /// [`truncating`](crate::PopulationBounds::truncating) bounds, which
    /// tracks the leaked probability mass instead of hiding it.
    BoundExceeded {
        /// Name of the species whose population cap was exceeded.
        species: String,
        /// The cap that was exceeded.
        cap: u64,
    },
    /// Enumeration found more reachable states than the configured budget.
    StateBudgetExceeded {
        /// The configured maximum number of states.
        budget: usize,
    },
    /// An input was inconsistent (empty outcome list, mismatched initial
    /// state length, non-finite tolerance, …).
    InvalidInput {
        /// Description of the problem.
        message: String,
    },
    /// First-passage power iteration did not drain the transient probability
    /// mass to the requested tolerance within the sweep budget.
    NotConverged {
        /// Probability mass still in transient states after the last sweep.
        residual: f64,
        /// Number of sweeps performed.
        sweeps: usize,
    },
}

impl fmt::Display for CmeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmeError::BoundExceeded { species, cap } => write!(
                f,
                "reachable state space leaves the population bounds: \
                 species `{species}` exceeds its cap of {cap} \
                 (raise the cap or use truncating bounds)"
            ),
            CmeError::StateBudgetExceeded { budget } => write!(
                f,
                "reachable state space exceeds the budget of {budget} states"
            ),
            CmeError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            CmeError::NotConverged { residual, sweeps } => write!(
                f,
                "first-passage iteration left {residual:.3e} transient mass after {sweeps} sweeps"
            ),
        }
    }
}

impl Error for CmeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases = vec![
            CmeError::BoundExceeded {
                species: "a".into(),
                cap: 64,
            },
            CmeError::StateBudgetExceeded { budget: 1000 },
            CmeError::InvalidInput {
                message: "empty".into(),
            },
            CmeError::NotConverged {
                residual: 1e-3,
                sweeps: 100,
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
        let bound = CmeError::BoundExceeded {
            species: "x1".into(),
            cap: 7,
        };
        assert!(bound.to_string().contains("x1"));
        assert!(bound.to_string().contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CmeError>();
    }
}
