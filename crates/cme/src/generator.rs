//! The sparse infinitesimal-generator matrix of a state space.

use crate::space::StateSpace;

/// The infinitesimal generator `Q` of the CME restricted to a
/// [`StateSpace`], in compressed-sparse-row form with explicit diagonal.
///
/// Row `i` holds the transition rates out of state `i`: off-diagonal entry
/// `q_ij` is the total rate of reactions taking state `i` to state `j`, and
/// the diagonal is `q_ii = −(Σ_{j≠i} q_ij + leak_i)` where `leak_i` is the
/// finite-state-projection leak out of the retained window. The probability
/// row vector then evolves as `dp/dt = p·Q`, and for a closed (strict)
/// space every row sums to exactly zero.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), cme::CmeError> {
/// use cme::{GeneratorMatrix, PopulationBounds, StateSpace};
///
/// let crn: crn::Crn = "a -> b @ 1\nb -> a @ 2".parse().expect("network");
/// let initial = crn.state_from_counts([("a", 2)]).expect("state");
/// let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(2))?;
/// let generator = GeneratorMatrix::from_space(&space);
/// assert_eq!(generator.dimension(), 3);
/// assert!(generator.row_sums().iter().all(|s| s.abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GeneratorMatrix {
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    leak: Vec<f64>,
    uniformization_rate: f64,
}

impl GeneratorMatrix {
    /// Builds the generator from an enumerated state space, merging parallel
    /// transitions (several reactions connecting the same pair of states)
    /// into a single entry.
    pub fn from_space(space: &StateSpace) -> Self {
        Self::build(space, |_| false)
    }

    /// Builds the generator with the rows of every state matching `absorbing`
    /// zeroed out: those states keep their index but lose all outflow (and
    /// leak), so probability mass entering them stays put.
    ///
    /// This is the *target-set absorption* construction used by time-bounded
    /// reachability: run the free chain to `t₁`, then evolve the same
    /// probability vector under the absorbed generator to `t₂` — the mass
    /// sitting on target states at `t₂` is exactly the probability of having
    /// visited the target during `[t₁, t₂]`. Because the absorbed generator
    /// shares the free space's state indexing, the two phases compose without
    /// re-enumeration.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), cme::CmeError> {
    /// use cme::{GeneratorMatrix, PopulationBounds, StateSpace};
    ///
    /// let crn: crn::Crn = "a -> b @ 1\nb -> a @ 2".parse().expect("network");
    /// let b = crn.species_id("b").expect("species");
    /// let initial = crn.state_from_counts([("a", 2)]).expect("state");
    /// let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(2))?;
    /// let absorbed = GeneratorMatrix::from_space_absorbing(&space, |s| s.count(b) >= 2);
    /// // The b=2 state has been made absorbing: zero outflow.
    /// assert!(absorbed.uniformization_rate() < GeneratorMatrix::from_space(&space).uniformization_rate() + 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_space_absorbing<F>(space: &StateSpace, absorbing: F) -> Self
    where
        F: Fn(&crn::State) -> bool,
    {
        Self::build(space, absorbing)
    }

    fn build<F>(space: &StateSpace, absorbing: F) -> Self
    where
        F: Fn(&crn::State) -> bool,
    {
        let n = space.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(space.transition_count() + n);
        let mut vals = Vec::with_capacity(space.transition_count() + n);
        let mut leak = Vec::with_capacity(n);
        let mut uniformization_rate = 0.0f64;
        row_ptr.push(0);
        let mut row: Vec<(usize, f64)> = Vec::new();
        for i in 0..n {
            if absorbing(space.state(i)) {
                cols.push(i);
                vals.push(0.0);
                row_ptr.push(cols.len());
                leak.push(0.0);
                continue;
            }
            row.clear();
            row.extend(space.transitions(i));
            row.sort_unstable_by_key(|&(j, _)| j);
            let outflow = space.total_outflow(i);
            uniformization_rate = uniformization_rate.max(outflow);
            let row_start = cols.len();
            let mut diagonal_written = false;
            let push = |cols: &mut Vec<usize>, vals: &mut Vec<f64>, j: usize, q: f64| {
                if cols.len() > row_start && *cols.last().expect("non-empty row") == j {
                    *vals.last_mut().expect("non-empty row") += q;
                    return;
                }
                cols.push(j);
                vals.push(q);
            };
            for &(j, rate) in &row {
                if !diagonal_written && j >= i {
                    push(&mut cols, &mut vals, i, -outflow);
                    diagonal_written = true;
                }
                push(&mut cols, &mut vals, j, rate);
            }
            if !diagonal_written {
                push(&mut cols, &mut vals, i, -outflow);
            }
            row_ptr.push(cols.len());
            leak.push(space.leak_rate(i));
        }
        GeneratorMatrix {
            row_ptr,
            cols,
            vals,
            leak,
            uniformization_rate,
        }
    }

    /// Returns the number of states (rows).
    pub fn dimension(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Returns the number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Returns the entries of row `i` as `(column, value)` pairs, sorted by
    /// column and including the diagonal.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        self.cols[range.clone()]
            .iter()
            .copied()
            .zip(self.vals[range].iter().copied())
    }

    /// Returns the sum of every row's stored entries. For a closed (strict)
    /// space this is exactly zero per row; under finite-state-projection
    /// truncation row `i` sums to `−leak_i` — the rate at which probability
    /// escapes the retained window from state `i`.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.dimension())
            .map(|i| self.row(i).map(|(_, v)| v).sum())
            .collect()
    }

    /// Returns the finite-state-projection leak rate of row `i`.
    pub fn leak_rate(&self, i: usize) -> f64 {
        self.leak[i]
    }

    /// Returns the uniformization rate `Λ = max_i |q_ii|`, the smallest rate
    /// that makes `P = I + Q/Λ` a (sub)stochastic matrix.
    pub fn uniformization_rate(&self) -> f64 {
        self.uniformization_rate
    }

    /// Computes `out = v·P` for the uniformized matrix `P = I + Q/Λ`,
    /// accumulating one jump of the uniformized chain.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the dimension or `lambda`
    /// is not positive.
    pub(crate) fn apply_uniformized(&self, lambda: f64, v: &[f64], out: &mut [f64]) {
        let n = self.dimension();
        assert!(lambda > 0.0, "uniformization rate must be positive");
        assert!(v.len() == n && out.len() == n, "dimension mismatch");
        out.copy_from_slice(v);
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (j, q) in self.row(i) {
                out[j] += vi * q / lambda;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::PopulationBounds;
    use crn::Crn;

    fn space_of(text: &str, counts: &[(&str, u64)], cap: u64) -> (Crn, StateSpace) {
        let crn: Crn = text.parse().unwrap();
        let initial = crn.state_from_counts(counts.iter().copied()).unwrap();
        let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(cap)).unwrap();
        (crn, space)
    }

    #[test]
    fn closed_system_rows_sum_to_zero() {
        let (_, space) = space_of("a -> b @ 1\nb -> a @ 2", &[("a", 5)], 5);
        let generator = GeneratorMatrix::from_space(&space);
        assert_eq!(generator.dimension(), 6);
        for sum in generator.row_sums() {
            assert!(sum.abs() < 1e-12, "row sum {sum}");
        }
    }

    #[test]
    fn diagonal_is_negative_total_outflow() {
        let (_, space) = space_of("a -> b @ 3", &[("a", 2)], 2);
        let generator = GeneratorMatrix::from_space(&space);
        // Initial state (a=2): outflow 6, diagonal −6.
        let diag: f64 = generator
            .row(0)
            .find(|&(j, _)| j == 0)
            .map(|(_, v)| v)
            .unwrap();
        assert_eq!(diag, -6.0);
        assert_eq!(generator.uniformization_rate(), 6.0);
    }

    #[test]
    fn parallel_transitions_merge() {
        // Two distinct reactions with the same net effect a -> b.
        let (_, space) = space_of("a -> b @ 1\na -> b @ 2", &[("a", 1)], 1);
        let generator = GeneratorMatrix::from_space(&space);
        let entries: Vec<(usize, f64)> = generator.row(0).collect();
        // Diagonal plus one merged off-diagonal entry.
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&(0, -3.0)));
        assert!(entries.contains(&(1, 3.0)));
        assert_eq!(generator.nnz(), 3); // row 0: two entries; row 1: diagonal 0
    }

    #[test]
    fn truncated_rows_sum_to_minus_leak() {
        let crn: Crn = "0 -> a @ 5\na -> 0 @ 1".parse().unwrap();
        let space =
            StateSpace::enumerate(&crn, &crn.zero_state(), &PopulationBounds::truncating(3))
                .unwrap();
        let generator = GeneratorMatrix::from_space(&space);
        for (i, sum) in generator.row_sums().iter().enumerate() {
            assert!(
                (sum + generator.leak_rate(i)).abs() < 1e-12,
                "row {i}: sum {sum}, leak {}",
                generator.leak_rate(i)
            );
        }
        // Exactly one row (the boundary a = 3) leaks.
        let leaking = (0..generator.dimension())
            .filter(|&i| generator.leak_rate(i) > 0.0)
            .count();
        assert_eq!(leaking, 1);
    }

    #[test]
    fn apply_uniformized_preserves_mass_on_closed_systems() {
        let (_, space) = space_of("a -> b @ 1\nb -> a @ 2", &[("a", 4)], 4);
        let generator = GeneratorMatrix::from_space(&space);
        let lambda = generator.uniformization_rate();
        let mut v = vec![0.0; generator.dimension()];
        v[0] = 1.0;
        let mut out = vec![0.0; generator.dimension()];
        generator.apply_uniformized(lambda, &v, &mut out);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(out.iter().all(|&p| p >= 0.0));
    }
}
