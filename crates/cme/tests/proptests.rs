//! Property-based tests of the exact CME layer.
//!
//! Structural invariants that hold for *every* well-formed input, not just
//! hand-picked examples: the generator is conservative (rows sum to zero on
//! closed systems, to −leak under truncation), uniformization returns a
//! probability vector up to its own reported error bounds, and the exact
//! outcome distribution does not depend on the order in which states (or
//! reactions, or species) happen to be enumerated. The model checker
//! inherits its own battery: verdict probabilities live in [0, 1], window
//! probabilities are monotone in the deadline, race verdicts partition all
//! mass, and every verdict is invariant under enumeration order.

use cme::{Checker, CmeError, FirstPassage, GeneratorMatrix, PopulationBounds, StateSpace};
use crn::{Crn, CrnBuilder};
use proptest::prelude::*;

/// Builds the two-species reversible chain `a <-> b` (optionally as a
/// dimerisation `2a <-> b`) with the given rates, declaring species in
/// forward or reverse order and listing reactions forward or reversed.
/// All four variants describe the *same* stochastic process.
fn reversible_crn(
    k1: f64,
    k2: f64,
    dimer: bool,
    species_reversed: bool,
    reactions_reversed: bool,
) -> Crn {
    let mut b = CrnBuilder::new();
    let (a, bb) = if species_reversed {
        let bb = b.species("b");
        let a = b.species("a");
        (a, bb)
    } else {
        let a = b.species("a");
        let bb = b.species("b");
        (a, bb)
    };
    let fwd_coeff = if dimer { 2 } else { 1 };
    let add_forward = |b: &mut CrnBuilder| {
        b.reaction()
            .reactant(a, fwd_coeff)
            .product(bb, 1)
            .rate(k1)
            .add()
            .expect("forward reaction");
    };
    let add_backward = |b: &mut CrnBuilder| {
        b.reaction()
            .reactant(bb, 1)
            .product(a, fwd_coeff)
            .rate(k2)
            .add()
            .expect("backward reaction");
    };
    if reactions_reversed {
        add_backward(&mut b);
        add_forward(&mut b);
    } else {
        add_forward(&mut b);
        add_backward(&mut b);
    }
    b.build().expect("network")
}

proptest! {
    /// Closed systems: every generator row sums to exactly zero (within
    /// accumulated rounding), whatever the rates, size or reaction order.
    #[test]
    fn generator_rows_sum_to_zero_on_closed_systems(
        k1 in 0.01f64..100.0,
        k2 in 0.01f64..100.0,
        n in 1u64..30,
        dimer in 0u32..2,
        reactions_reversed in 0u32..2,
    ) {
        let crn = reversible_crn(k1, k2, dimer == 1, false, reactions_reversed == 1);
        let initial = crn.state_from_counts([("a", n)]).expect("state");
        let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(n))
            .expect("closed system fits strict bounds");
        let generator = GeneratorMatrix::from_space(&space);
        let scale = generator.uniformization_rate().max(1.0);
        for (i, sum) in generator.row_sums().iter().enumerate() {
            prop_assert!(
                sum.abs() <= 1e-12 * scale,
                "row {i} sums to {sum:.3e} (scale {scale:.3e})"
            );
            prop_assert_eq!(generator.leak_rate(i), 0.0);
        }
    }

    /// Truncated (open) systems: each row sums to exactly −leak, the rate
    /// escaping the retained window — conservation with explicit books.
    #[test]
    fn generator_rows_sum_to_minus_leak_under_truncation(
        birth in 0.1f64..50.0,
        death in 0.1f64..10.0,
        cap in 2u64..40,
    ) {
        let crn: Crn = format!("0 -> a @ {birth}\na -> 0 @ {death}")
            .parse()
            .expect("network");
        let space = StateSpace::enumerate(
            &crn,
            &crn.zero_state(),
            &PopulationBounds::truncating(cap),
        )
        .expect("truncated enumeration");
        let generator = GeneratorMatrix::from_space(&space);
        let scale = generator.uniformization_rate().max(1.0);
        let mut leaking_rows = 0usize;
        for (i, sum) in generator.row_sums().iter().enumerate() {
            prop_assert!(
                (sum + generator.leak_rate(i)).abs() <= 1e-12 * scale,
                "row {i}: sum {sum:.3e}, leak {:.3e}",
                generator.leak_rate(i)
            );
            if generator.leak_rate(i) > 0.0 {
                leaking_rows += 1;
            }
        }
        prop_assert_eq!(leaking_rows, 1, "only the boundary state leaks");
    }

    /// Uniformization always returns a probability vector: entries are
    /// non-negative and the total mass is 1 minus exactly the reported
    /// truncation tail and window leak.
    #[test]
    fn uniformization_returns_a_probability_vector(
        k1 in 0.01f64..50.0,
        k2 in 0.01f64..50.0,
        n in 1u64..25,
        t in 0.0f64..5.0,
    ) {
        let crn = reversible_crn(k1, k2, false, false, false);
        let initial = crn.state_from_counts([("a", n)]).expect("state");
        let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(n))
            .expect("space");
        let epsilon = 1e-8;
        let solution = space.transient(t, epsilon).expect("transient");
        for (i, &p) in solution.probabilities.iter().enumerate() {
            prop_assert!(p >= -1e-15, "state {i}: negative probability {p:.3e}");
        }
        let sum: f64 = solution.probabilities.iter().sum();
        prop_assert!(
            (sum + solution.truncation_error + solution.leaked - 1.0).abs() < 1e-9,
            "mass accounting: sum {sum}, tail {:.3e}, leaked {:.3e}",
            solution.truncation_error,
            solution.leaked
        );
        prop_assert!(solution.truncation_error <= epsilon + 1e-15);
        prop_assert_eq!(solution.leaked, 0.0, "closed system never leaks");
    }

    /// The truncated variant: mass is conserved once the reported leak is
    /// added back, and the leak only grows with time.
    #[test]
    fn truncated_uniformization_accounts_for_every_leaked_unit(
        birth in 0.5f64..20.0,
        cap in 1u64..15,
        t in 0.1f64..3.0,
    ) {
        let crn: Crn = format!("0 -> a @ {birth}").parse().expect("network");
        let space = StateSpace::enumerate(
            &crn,
            &crn.zero_state(),
            &PopulationBounds::truncating(cap),
        )
        .expect("space");
        let solution = space.transient(t, 1e-10).expect("transient");
        let sum: f64 = solution.probabilities.iter().sum();
        prop_assert!(solution.probabilities.iter().all(|&p| p >= -1e-15));
        prop_assert!(
            (sum + solution.leaked + solution.truncation_error - 1.0).abs() < 1e-9,
            "sum {sum}, leaked {:.3e}, tail {:.3e}",
            solution.leaked,
            solution.truncation_error
        );
        // For a pure birth process the retained mass is exactly
        // P(Poisson(birth·t) ≤ cap): cross-check against the closed form.
        let mut pmf = (-birth * t).exp();
        let mut below = 0.0;
        for k in 0..=cap {
            below += pmf;
            pmf *= birth * t / (k + 1) as f64;
        }
        prop_assert!(
            (sum - below).abs() < 1e-7,
            "retained mass {sum} vs Poisson cdf {below}"
        );
    }

    /// The exact outcome distribution is invariant under state-enumeration
    /// order: reversing the reaction list and/or the species declaration
    /// order changes every internal index and the BFS discovery sequence,
    /// but not a single output probability beyond 1e-12.
    #[test]
    fn outcome_distribution_is_invariant_under_enumeration_order(
        ka in 0.01f64..100.0,
        kb in 0.01f64..100.0,
        k_iso in 0.01f64..50.0,
        n in 1u64..6,
        threshold in 1u64..4,
    ) {
        prop_assume!(threshold <= n);
        // n tokens race through x -> a / x -> b with an extra reversible
        // distraction a <-> b below the thresholds; first species to reach
        // `threshold` wins.
        let build = |species_reversed: bool, reactions_reversed: bool| -> Crn {
            let mut builder = CrnBuilder::new();
            let names: &[&str] = if species_reversed {
                &["b", "a", "x"]
            } else {
                &["x", "a", "b"]
            };
            for name in names {
                builder.species(*name);
            }
            let x = builder.species("x");
            let a = builder.species("a");
            let b = builder.species("b");
            let mut spec: Vec<(crn::SpeciesId, crn::SpeciesId, f64)> =
                vec![(x, a, ka), (x, b, kb), (a, b, k_iso)];
            if reactions_reversed {
                spec.reverse();
            }
            for (from, to, rate) in spec {
                builder
                    .reaction()
                    .reactant(from, 1)
                    .product(to, 1)
                    .rate(rate)
                    .add()
                    .expect("reaction");
            }
            builder.build().expect("network")
        };
        let solve = |crn: &Crn| -> Vec<f64> {
            let initial = crn.state_from_counts([("x", n)]).expect("state");
            let distribution = FirstPassage::new(crn)
                .outcome_species_at_least("first", "a", threshold)
                .expect("outcome")
                .outcome_species_at_least("second", "b", threshold)
                .expect("outcome")
                .solve(&initial, &PopulationBounds::strict(n))
                .expect("first passage");
            let mut probs = distribution.probabilities().to_vec();
            probs.push(distribution.undecided());
            probs
        };
        let reference = solve(&build(false, false));
        for (species_reversed, reactions_reversed) in
            [(false, true), (true, false), (true, true)]
        {
            let variant = solve(&build(species_reversed, reactions_reversed));
            for (i, (&r, &v)) in reference.iter().zip(&variant).enumerate() {
                prop_assert!(
                    (r - v).abs() < 1e-12,
                    "species_reversed={species_reversed}, \
                     reactions_reversed={reactions_reversed}, outcome {i}: \
                     {r:.15} vs {v:.15}"
                );
            }
        }
    }

    /// Strict bounds refuse, with the offending species named, exactly when
    /// the process can outgrow the cap — and succeed otherwise.
    #[test]
    fn strict_bound_violations_name_the_offending_species(
        n in 1u64..20,
        cap in 1u64..20,
    ) {
        let crn: Crn = "a -> 2 a @ 1".parse().expect("network");
        let initial = crn.state_from_counts([("a", n)]).expect("state");
        // Pure growth always escapes a finite cap — either the initial
        // state already violates it (n > cap) or BFS reaches the boundary.
        let result = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(cap));
        prop_assert_eq!(
            result.err(),
            Some(CmeError::BoundExceeded { species: "a".into(), cap })
        );
        // The same process under truncating bounds succeeds, with the
        // boundary state carrying the (reported) leak.
        let space = StateSpace::enumerate(
            &crn,
            &initial,
            &PopulationBounds::truncating(cap.max(n)),
        )
        .expect("truncating bounds never refuse");
        let leaking = (0..space.len()).filter(|&i| space.leak_rate(i) > 0.0).count();
        prop_assert_eq!(leaking, 1);
    }
}

/// Builds the checker tests' racing network `x -> a @ ka | x -> b @ kb`
/// with the reversible distraction `a -> b @ k_iso`, with every internal
/// index permuted on request. All variants are the same process.
fn racing_crn(
    ka: f64,
    kb: f64,
    k_iso: f64,
    species_reversed: bool,
    reactions_reversed: bool,
) -> Crn {
    let mut builder = CrnBuilder::new();
    let names: &[&str] = if species_reversed {
        &["b", "a", "x"]
    } else {
        &["x", "a", "b"]
    };
    for name in names {
        builder.species(name);
    }
    let x = builder.species("x");
    let a = builder.species("a");
    let b = builder.species("b");
    let mut spec: Vec<(crn::SpeciesId, crn::SpeciesId, f64)> =
        vec![(x, a, ka), (x, b, kb), (a, b, k_iso)];
    if reactions_reversed {
        spec.reverse();
    }
    for (from, to, rate) in spec {
        builder
            .reaction()
            .reactant(from, 1)
            .product(to, 1)
            .rate(rate)
            .add()
            .expect("reaction");
    }
    builder.build().expect("network")
}

proptest! {
    /// Race verdicts are a partition of probability mass: under strict
    /// bounds `P(A before B) + P(B before A) + P(never) = 1` to 1e-12,
    /// the two orderings agree on every component, and each component is
    /// a genuine probability.
    #[test]
    fn race_verdicts_partition_all_mass(
        ka in 0.01f64..100.0,
        kb in 0.01f64..100.0,
        k_iso in 0.01f64..50.0,
        n in 1u64..6,
        threshold in 1u64..4,
    ) {
        prop_assume!(threshold <= n);
        let crn = racing_crn(ka, kb, k_iso, false, false);
        let initial = crn.state_from_counts([("x", n)]).expect("state");
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(n));
        let ab = checker
            .reach_before_species(("a", threshold), ("b", threshold))
            .expect("race a-first");
        let ba = checker
            .reach_before_species(("b", threshold), ("a", threshold))
            .expect("race b-first");
        for p in [ab.target, ab.competitor, ab.never, ba.target, ba.competitor, ba.never] {
            prop_assert!((-1e-15..=1.0 + 1e-12).contains(&p), "not a probability: {p}");
        }
        prop_assert_eq!(ab.escaped, 0.0, "strict bounds lose no mass");
        prop_assert!(
            (ab.target + ba.target + ab.never - 1.0).abs() < 1e-12,
            "partition: {} + {} + {} ≠ 1",
            ab.target, ba.target, ab.never
        );
        // Swapping the roles must swap the verdict, not change it.
        prop_assert!((ab.target - ba.competitor).abs() < 1e-12);
        prop_assert!((ab.competitor - ba.target).abs() < 1e-12);
        prop_assert!((ab.never - ba.never).abs() < 1e-12);
    }

    /// `P(X ≥ k within [0, t])` is monotone non-decreasing in the deadline
    /// and always a probability, whatever the chain and rates.
    #[test]
    fn window_probability_is_monotone_in_the_deadline(
        k1 in 0.01f64..50.0,
        k2 in 0.01f64..50.0,
        n in 1u64..12,
        threshold in 1u64..12,
        t_base in 0.01f64..1.5,
    ) {
        prop_assume!(threshold <= n);
        let crn = reversible_crn(k1, k2, false, false, false);
        let initial = crn.state_from_counts([("a", n)]).expect("state");
        let checker = Checker::new(&crn, initial, PopulationBounds::strict(n));
        let mut last = 0.0f64;
        for factor in [1.0, 2.0, 4.0, 8.0] {
            let verdict = checker
                .species_within("b", threshold, (0.0, t_base * factor))
                .expect("window verdict");
            prop_assert!(
                (-1e-15..=1.0 + 1e-12).contains(&verdict.probability),
                "not a probability: {}",
                verdict.probability
            );
            prop_assert!(
                verdict.probability + 1e-9 >= last,
                "shrank from {last} to {} at deadline factor {factor}",
                verdict.probability
            );
            last = verdict.probability;
        }
    }

    /// Every checker verdict — race split, window probability, hitting-time
    /// law — is invariant under state-enumeration order: permuting species
    /// declarations and the reaction list changes every internal index and
    /// the BFS discovery sequence, but no verdict by more than 1e-12.
    #[test]
    fn checker_verdicts_are_invariant_under_enumeration_order(
        ka in 0.01f64..100.0,
        kb in 0.01f64..100.0,
        k_iso in 0.01f64..50.0,
        n in 1u64..5,
        threshold in 1u64..4,
        t in 0.05f64..2.0,
    ) {
        prop_assume!(threshold <= n);
        let solve = |species_reversed: bool, reactions_reversed: bool| -> Vec<f64> {
            let crn = racing_crn(ka, kb, k_iso, species_reversed, reactions_reversed);
            let initial = crn.state_from_counts([("x", n)]).expect("state");
            let checker = Checker::new(&crn, initial, PopulationBounds::strict(n));
            let race = checker
                .reach_before_species(("a", threshold), ("b", threshold))
                .expect("race");
            let window = checker
                .species_within("b", threshold, (0.0, t))
                .expect("window");
            let hit = checker
                .hitting_time_species("b", threshold)
                .expect("hitting time");
            vec![
                race.target,
                race.competitor,
                race.never,
                window.probability,
                hit.probability,
                hit.conditional_mean.unwrap_or(-1.0),
            ]
        };
        let reference = solve(false, false);
        for (species_reversed, reactions_reversed) in
            [(false, true), (true, false), (true, true)]
        {
            let variant = solve(species_reversed, reactions_reversed);
            for (i, (&r, &v)) in reference.iter().zip(&variant).enumerate() {
                prop_assert!(
                    (r - v).abs() < 1e-12,
                    "species_reversed={species_reversed}, \
                     reactions_reversed={reactions_reversed}, verdict {i}: \
                     {r:.15} vs {v:.15}"
                );
            }
        }
    }
}
