//! Offline no-op stand-ins for serde's `Serialize`/`Deserialize` derives.
//!
//! The workspace builds without crates.io access, so the real `serde_derive`
//! cannot be fetched. The data-model types across the workspace carry
//! `#[derive(Serialize, Deserialize)]` (plus `#[serde(...)]` field
//! attributes) so that switching to the real serde later is a
//! manifest-only change. Until then these derives expand to nothing: the
//! annotations are kept syntactically valid and the helper attributes are
//! accepted and ignored.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
