//! Offline std-backed subset of
//! [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Provides [`Mutex`] with parking_lot's panic-free `lock()` signature,
//! implemented over `std::sync::Mutex` (poisoning is ignored, matching
//! parking_lot semantics). The SSA ensemble engine is lock-free these days,
//! but the shim stays available for future shared-state features and so the
//! `[workspace.dependencies]` entry can be swapped for the real crate
//! without source changes.

#![warn(missing_docs)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

/// A mutual-exclusion lock with parking_lot's API shape: `lock()` returns the
/// guard directly instead of a `Result`.
///
/// # Example
///
/// ```
/// let m = parking_lot::Mutex::new(3);
/// *m.lock() += 4;
/// assert_eq!(m.into_inner(), 7);
/// ```
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in another thread never poisons the lock.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a holder panicked.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
