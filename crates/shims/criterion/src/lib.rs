//! Offline mini benchmark harness with the API shape of
//! [`criterion`](https://crates.io/crates/criterion).
//!
//! The workspace builds without crates.io access, so the `bench` crate's
//! Criterion benchmarks run against this shim instead. It implements the
//! subset of the API the benches use (`criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::from_parameter`],
//! [`Bencher::iter`]) with a real measurement loop:
//!
//! 1. warm up the closure and estimate its cost,
//! 2. pick an iteration count per sample so each sample runs ≥ ~5 ms,
//! 3. collect `sample_size` samples and report min / mean / median / max.
//!
//! Results are printed to stdout and appended to a `BENCH_<suite>.json`
//! baseline file in the workspace root (override the directory with the
//! `BENCH_OUTPUT_DIR` environment variable), so perf regressions are
//! diffable run-to-run. Swapping in real criterion later is a
//! `[workspace.dependencies]` edit; the JSON baseline format is this shim's
//! own, documented in the workspace README.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimisation barrier.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a displayed parameter value, mirroring
    /// `criterion::BenchmarkId::from_parameter`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// One measured benchmark: identification plus summary statistics in
/// nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark id, `group/bench` style.
    pub id: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Minimum observed time per iteration (ns).
    pub min_ns: f64,
    /// Mean time per iteration (ns).
    pub mean_ns: f64,
    /// Median time per iteration (ns).
    pub median_ns: f64,
    /// Maximum observed time per iteration (ns).
    pub max_ns: f64,
}

/// The measurement driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    result: Option<(u64, Vec<f64>)>,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of a batched
    /// iteration count chosen so each sample runs long enough to measure.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for ~50 ms, estimating cost. The full budget is
        // always consumed (no iteration cap) so fast routines get the same
        // frequency-state settling time as slow ones — the preceding
        // benchmark may have left the CPU throttled or boosted.
        let warmup_budget = Duration::from_millis(50);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < warmup_budget {
            std_black_box(routine());
            warmup_iters += 1;
        }
        let est_per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Aim for ≥ 5 ms per sample, capped to keep total time bounded.
        let target_sample = 0.005f64;
        let iters = ((target_sample / est_per_iter).ceil() as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            samples.push(elapsed * 1e9 / iters as f64);
        }
        self.result = Some((iters, samples));
    }
}

fn summarize(id: String, iters: u64, mut samples: Vec<f64>) -> BenchRecord {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let n = samples.len().max(1);
    let mean = samples.iter().sum::<f64>() / n as f64;
    let median = if samples.is_empty() {
        0.0
    } else if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    };
    BenchRecord {
        id,
        samples: samples.len(),
        iters_per_sample: iters,
        min_ns: samples.first().copied().unwrap_or(0.0),
        mean_ns: mean,
        median_ns: median,
        max_ns: samples.last().copied().unwrap_or(0.0),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    suite: String,
    records: Vec<BenchRecord>,
}

impl Criterion {
    /// Creates a driver for the named suite (used as the `BENCH_<suite>.json`
    /// file stem). `criterion_main!` fills this in automatically.
    pub fn with_suite(suite: &str) -> Self {
        Criterion {
            suite: suite.to_string(),
            records: Vec::new(),
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let record = run_one(id.to_string(), 20, f);
        self.records.push(record);
        self
    }

    /// Prints the final summary and writes the `BENCH_<suite>.json` baseline.
    /// Called by `criterion_main!` after all groups have run.
    pub fn finalize(&self) {
        if self.records.is_empty() {
            return;
        }
        let path = baseline_path(&self.suite);
        match write_baseline(&path, &self.suite, &self.records) {
            Ok(()) => println!("\nbaseline written to {}", path.display()),
            Err(err) => eprintln!("\nwarning: could not write {}: {err}", path.display()),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: String, sample_size: usize, mut f: F) -> BenchRecord {
    let mut bencher = Bencher {
        sample_size,
        result: None,
    };
    f(&mut bencher);
    let (iters, samples) = bencher.result.unwrap_or((0, Vec::new()));
    let record = summarize(id, iters, samples);
    println!(
        "{:<50} time: [{} {} {}]",
        record.id,
        format_ns(record.min_ns),
        format_ns(record.median_ns),
        format_ns(record.max_ns),
    );
    record
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group collects.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let record = run_one(full, self.sample_size, f);
        self.criterion.records.push(record);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let record = run_one(full, self.sample_size, |b| f(b, input));
        self.criterion.records.push(record);
        self
    }

    /// Ends the group (kept for API compatibility; groups flush eagerly).
    pub fn finish(&mut self) {}
}

/// Locates the directory for `BENCH_*.json` baselines: `BENCH_OUTPUT_DIR` if
/// set, else the enclosing cargo workspace root, else the current directory.
///
/// A *relative* `BENCH_OUTPUT_DIR` is resolved against the workspace root,
/// not the process cwd — cargo runs bench binaries with cwd set to the
/// bench crate's directory, which is never where callers mean. The
/// directory is created if missing, so `BENCH_OUTPUT_DIR=bench-fresh`
/// works without preparatory `mkdir`s (the CI regression gate relies on
/// this).
fn baseline_path(suite: &str) -> PathBuf {
    let dir = match std::env::var_os("BENCH_OUTPUT_DIR").map(PathBuf::from) {
        Some(dir) if dir.is_absolute() => dir,
        Some(dir) => find_workspace_root()
            .unwrap_or_else(|| PathBuf::from("."))
            .join(dir),
        None => find_workspace_root().unwrap_or_else(|| PathBuf::from(".")),
    };
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {}: {err}", dir.display());
    }
    dir.join(format!("BENCH_{suite}.json"))
}

fn find_workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: &std::path::Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn write_baseline(
    path: &std::path::Path,
    suite: &str,
    records: &[BenchRecord],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", json_escape(suite)));
    out.push_str("  \"unit\": \"ns_per_iter\",\n");
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
             \"min\": {:.1}, \"mean\": {:.1}, \"median\": {:.1}, \"max\": {:.1}}}{}\n",
            json_escape(&r.id),
            r.samples,
            r.iters_per_sample,
            r.min_ns,
            r.mean_ns,
            r.median_ns,
            r.max_ns,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::with_suite(env!("CARGO_CRATE_NAME"));
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let record = run_one("unit/smoke".to_string(), 5, |b| {
            b.iter(|| black_box(2u64 + 2))
        });
        assert_eq!(record.samples, 5);
        assert!(record.iters_per_sample >= 1);
        assert!(record.min_ns <= record.median_ns && record.median_ns <= record.max_ns);
    }

    #[test]
    fn groups_accumulate_records() {
        let mut c = Criterion::with_suite("unit");
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("one", |b| b.iter(|| black_box(1)));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[0].id, "g/one");
        assert_eq!(c.records[1].id, "g/7");
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
