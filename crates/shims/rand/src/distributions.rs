//! Non-uniform distributions, mirroring the shape of
//! [`rand_distr`](https://crates.io/crates/rand_distr).
//!
//! Only what the simulators need is implemented:
//!
//! * [`StandardNormal`] — Box–Muller transform, two uniforms per draw;
//! * [`Poisson`] — Knuth's inversion (product of uniforms) for small means
//!   and a continuity-corrected normal approximation for large means, with
//!   the crossover at [`Poisson::INVERSION_CUTOFF`].
//!
//! The tau-leaping stepper draws one Poisson variate per reaction channel
//! per leap, so the sampler must be cheap at *both* ends: inversion costs
//! `O(λ)` uniforms (fine below the cutoff, catastrophic above), while the
//! normal approximation is two uniforms flat. At the cutoff (λ = 30) the
//! normal approximation's total-variation error is already below one
//! percent, which is far inside tau-leaping's own `O(ε)` bias budget; the
//! sampler's moments are pinned by unit tests on both sides of the
//! crossover.
//!
//! The real `rand_distr::Poisson` returns floats; this shim returns `u64`
//! because every caller immediately wants a molecule count.

use crate::{Rng, RngCore};

/// Types that sample values of `T` from an RNG, mirroring
/// `rand::distributions::Distribution`.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution `N(0, 1)`, sampled with the Box–Muller
/// transform (two uniforms per draw, no rejection, deterministic RNG
/// consumption — important for the reproducibility contract).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// The Poisson distribution with mean `lambda`, returning counts.
///
/// # Example
///
/// ```
/// use rand::distributions::{Distribution, Poisson};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let p = Poisson::new(4.0);
/// let k = p.sample(&mut rng);
/// assert!(k < 30); // nothing crazy for a mean of 4
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Means at or above this use the normal approximation; below it, exact
    /// inversion. Inversion costs `O(λ)` uniforms and multiplications, and
    /// its running product `e^{-λ}·Πuᵢ` stays comfortably above the f64
    /// underflow threshold for λ ≤ 30.
    pub const INVERSION_CUTOFF: f64 = 30.0;

    /// Creates a Poisson distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative, NaN or infinite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "Poisson mean must be finite and non-negative, got {lambda}"
        );
        Poisson { lambda }
    }

    /// Returns the mean of the distribution.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Distribution<u64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < Self::INVERSION_CUTOFF {
            // Knuth's inversion: count uniforms until their product drops
            // below e^{-λ}.
            let limit = (-self.lambda).exp();
            let mut product: f64 = rng.gen();
            let mut k = 0u64;
            while product > limit {
                product *= rng.gen::<f64>();
                k += 1;
            }
            k
        } else {
            // Normal approximation with continuity correction: for λ ≥ 30
            // the skewness (λ^{-1/2}) is small enough that the rounded
            // normal matches the Poisson to well under a percent in total
            // variation — negligible next to tau-leaping's own O(ε) bias.
            let z = StandardNormal.sample(rng);
            let k = (self.lambda + self.lambda.sqrt() * z + 0.5).floor();
            if k < 0.0 {
                0
            } else {
                k as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Distribution, Poisson, StandardNormal};
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    fn poisson_moments(lambda: f64, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Poisson::new(lambda);
        let samples: Vec<f64> = (0..n).map(|_| p.sample(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn zero_mean_is_always_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Poisson::new(0.0);
        for _ in 0..100 {
            assert_eq!(p.sample(&mut rng), 0);
        }
    }

    #[test]
    fn small_lambda_inversion_matches_moments() {
        // Inversion regime: λ well below the cutoff. Mean and variance of a
        // Poisson both equal λ; with n = 40_000 samples the standard error
        // of the mean is sqrt(λ/n), so a 5-sigma band is tight and the test
        // is deterministic anyway (fixed seed).
        for (lambda, seed) in [(0.3f64, 11u64), (3.0, 12), (12.0, 13)] {
            let n = 40_000;
            let (mean, var) = poisson_moments(lambda, n, seed);
            let tol = 5.0 * (lambda / n as f64).sqrt();
            assert!(
                (mean - lambda).abs() < tol,
                "λ={lambda}: mean {mean} not within {tol} of λ"
            );
            assert!(
                (var - lambda).abs() < lambda * 0.1 + 0.05,
                "λ={lambda}: variance {var} should be close to λ"
            );
        }
    }

    #[test]
    fn large_lambda_normal_approximation_matches_moments() {
        // Normal-approximation regime: λ at and above the cutoff.
        for (lambda, seed) in [(30.0f64, 21u64), (50.0, 22), (400.0, 23)] {
            let n = 40_000;
            let (mean, var) = poisson_moments(lambda, n, seed);
            let tol = 5.0 * (lambda / n as f64).sqrt() + 0.5;
            assert!(
                (mean - lambda).abs() < tol,
                "λ={lambda}: mean {mean} not within {tol} of λ"
            );
            assert!(
                (var - lambda).abs() < lambda * 0.05,
                "λ={lambda}: variance {var} should be close to λ"
            );
        }
    }

    #[test]
    fn moments_are_continuous_across_the_crossover() {
        // Just below the cutoff samples via inversion, just above via the
        // normal approximation; their means must agree to within sampling
        // noise — a discontinuity here would bias every leap that straddles
        // the crossover.
        let n = 60_000;
        let (below, _) = poisson_moments(Poisson::INVERSION_CUTOFF - 0.1, n, 31);
        let (above, _) = poisson_moments(Poisson::INVERSION_CUTOFF + 0.1, n, 32);
        assert!(
            (above - below - 0.2).abs() < 0.35,
            "crossover jump: mean below {below}, above {above}"
        );
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let p = Poisson::new(17.0);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| p.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_mean_panics() {
        let _ = Poisson::new(-1.0);
    }
}
