//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! handful of `rand` APIs the simulators rely on are vendored here as a local
//! shim with the same module layout (`rand::rngs::StdRng`, `rand::Rng`,
//! `rand::SeedableRng`). Swapping in the real crate later only requires
//! editing `[workspace.dependencies]` — no source changes.
//!
//! The shim intentionally implements only what the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator (Blackman &
//!   Vigna), seeded through SplitMix64 exactly as the reference
//!   implementation recommends. It is *not* the cryptographic ChaCha12 core
//!   of the real `StdRng`, but it passes BigCrush and is more than adequate
//!   for Monte-Carlo simulation.
//! * [`rngs::Philox`] — a counter-based Philox2x64-10 generator with O(1)
//!   seeding and explicit `(key, counter)` stream placement. The
//!   `philox-std` feature re-aliases `StdRng` to it (a whole-build switch;
//!   streams differ from the default build for the same seed, which the
//!   golden-stream pin in this crate's tests makes impossible to do by
//!   accident).
//! * [`Rng::gen`] / [`Rng::gen_range`] for `f64` (and the integer widths the
//!   tests draw).
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_entropy`].
//! * [`distributions`] — Poisson and standard-normal samplers (the
//!   tau-leaping stepper draws one Poisson variate per channel per leap);
//!   the real crate keeps these in `rand_distr`.
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` produces the same stream
//! on every platform and every run; the whole reproduction's "bit-identical
//! regardless of thread count" guarantee rests on this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;

use std::ops::Range;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `Rng` (the shim's analogue of
/// sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(
            self.start < self.end,
            "gen_range requires a non-empty range"
        );
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against round-off producing `end` itself.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                debug_assert!(self.start < self.end, "gen_range requires a non-empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo sampling: the bias is < span/2^64, irrelevant here.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize, i64, i32);

/// The user-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform for floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Example
    ///
    /// ```
    /// use rand::{Rng, SeedableRng};
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    /// assert!(u > 0.0 && u < 1.0);
    /// ```
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator seeded from system entropy (wall clock, process
    /// id, an ASLR-dependent address and a process-global counter) —
    /// non-reproducible by design. The counter guarantees distinct seeds
    /// for back-to-back calls even on platforms with coarse clock ticks.
    fn from_entropy() -> Self {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let pid = u64::from(std::process::id());
        let stack_probe = &now as *const u64 as usize as u64;
        Self::seed_from_u64(
            now ^ pid.rotate_left(32)
                ^ stack_probe.rotate_left(17)
                ^ unique.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A counter-based generator in the Philox2x64-10 family (Salmon,
    /// Moraes, Dror & Shaw 2011): each 128-bit output block is a pure
    /// function of `(key, counter)`, so seeding is O(1) — no sequential
    /// state-mixing pass — and per-stream keys give embarrassingly parallel
    /// independent streams. Ten bijective multiply-xor rounds per block pass
    /// the same statistical batteries as the reference implementation.
    ///
    /// Two entry points:
    ///
    /// * [`SeedableRng::seed_from_u64`] — `key = seed`, counter from 0; the
    ///   drop-in replacement for the workspace's default generator when the
    ///   `philox-std` feature re-aliases [`StdRng`] to this type.
    /// * [`Philox::keyed`] — explicit `(key, counter)` placement, which is
    ///   how a trial scheduler can jump straight to any trial's stream
    ///   without generating the streams before it.
    ///
    /// ```
    /// use rand::rngs::Philox;
    /// use rand::{RngCore, SeedableRng};
    /// let mut a = Philox::seed_from_u64(7);
    /// let mut b = Philox::keyed(7, 0);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Philox {
        key: u64,
        /// Index of the next 2×64-bit block.
        counter: u64,
        /// Buffered outputs of the current block.
        block: [u64; 2],
        /// How many words of `block` have been handed out (0, 1 or 2).
        used: u8,
    }

    /// Philox multiplication constant (from the reference 2x64 configuration).
    const PHILOX_M: u64 = 0xD2B7_4407_B1CE_6E93;
    /// Weyl increment applied to the key each round (golden-ratio constant).
    const PHILOX_W: u64 = 0x9E37_79B9_7F4A_7C15;

    impl Philox {
        /// Builds a generator positioned at `counter` within the stream
        /// identified by `key`. Distinct keys give statistically independent
        /// streams; the counter is pure position, so
        /// `keyed(k, n)`'s first block equals `keyed(k, 0)`'s `n`-th.
        pub fn keyed(key: u64, counter: u64) -> Self {
            Philox {
                key,
                counter,
                block: [0; 2],
                used: 2,
            }
        }

        /// The 10-round Philox2x64 bijection of one counter block.
        fn bijection(key: u64, counter: u64) -> [u64; 2] {
            // The 128-bit counter is (block index, 0); the second word is
            // free for sub-stream use, which this shim does not need.
            let mut x0 = counter;
            let mut x1 = 0u64;
            let mut k = key;
            for _ in 0..10 {
                let product = u128::from(x0) * u128::from(PHILOX_M);
                let hi = (product >> 64) as u64;
                let lo = product as u64;
                x0 = hi ^ k ^ x1;
                x1 = lo;
                k = k.wrapping_add(PHILOX_W);
            }
            [x0, x1]
        }
    }

    impl SeedableRng for Philox {
        /// O(1): the seed *is* the key; no mixing pass over internal state.
        fn seed_from_u64(seed: u64) -> Self {
            Philox::keyed(seed, 0)
        }
    }

    impl RngCore for Philox {
        fn next_u64(&mut self) -> u64 {
            if self.used >= 2 {
                self.block = Self::bijection(self.key, self.counter);
                self.counter = self.counter.wrapping_add(1);
                self.used = 0;
            }
            let word = self.block[usize::from(self.used)];
            self.used += 1;
            word
        }
    }

    /// With the `philox-std` feature the workspace's standard generator is
    /// the counter-based [`Philox`] instead of xoshiro256++. The two produce
    /// *different* streams for the same seed, so the feature is a whole-build
    /// switch — the default build's streams are pinned by golden tests and
    /// never change underneath existing seeds.
    #[cfg(feature = "philox-std")]
    pub type StdRng = Philox;

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// # Example
    ///
    /// ```
    /// use rand::SeedableRng;
    /// let mut a = rand::rngs::StdRng::seed_from_u64(42);
    /// let mut b = rand::rngs::StdRng::seed_from_u64(42);
    /// use rand::RngCore;
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    #[cfg(not(feature = "philox-std"))]
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[cfg(not(feature = "philox-std"))]
    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[cfg(not(feature = "philox-std"))]
    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    #[cfg(not(feature = "philox-std"))]
    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{Philox, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    /// Golden pin of the default build's `StdRng` stream: the whole
    /// workspace's seeded reproducibility rests on these words never
    /// changing. The `philox-std` feature deliberately switches streams,
    /// which is why this pin is on the default build only.
    #[cfg(not(feature = "philox-std"))]
    #[test]
    fn default_stdrng_stream_is_pinned() {
        let mut rng = StdRng::seed_from_u64(42);
        let head: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            head,
            vec![
                0xd076_4d4f_4476_689f,
                0x519e_4174_576f_3791,
                0xfbe0_7cfb_0c24_ed8c,
                0xb37d_9f60_0cd8_35b8,
            ],
            "xoshiro256++ stream for seed 42 drifted — this breaks every \
             committed seed in the workspace"
        );
    }

    #[test]
    fn philox_streams_are_deterministic_and_keyed() {
        let mut a = Philox::seed_from_u64(42);
        let mut b = Philox::keyed(42, 0);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different keys give different streams.
        let mut c = Philox::keyed(43, 0);
        assert_ne!(Philox::keyed(42, 0).next_u64(), c.next_u64());
    }

    #[test]
    fn philox_counter_is_pure_position() {
        // keyed(k, n) starts exactly where keyed(k, 0) is after n blocks
        // (2 words per block) — O(1) stream jumping.
        let mut from_start = Philox::keyed(9, 0);
        for _ in 0..10 {
            from_start.next_u64();
        }
        let mut jumped = Philox::keyed(9, 5);
        for _ in 0..16 {
            assert_eq!(from_start.next_u64(), jumped.next_u64());
        }
    }

    #[test]
    fn philox_uniformity_is_plausible() {
        let mut rng = Philox::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        // Bit balance: each of the 64 bit positions should be ~half set.
        let mut ones = [0u32; 64];
        for _ in 0..10_000 {
            let w = rng.next_u64();
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += ((w >> bit) & 1) as u32;
            }
        }
        for (bit, &count) in ones.iter().enumerate() {
            assert!(
                (4_600..=5_400).contains(&count),
                "bit {bit} set {count}/10000 times"
            );
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
            let n: u64 = rng.gen_range(5u64..17);
            assert!((5..17).contains(&n));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        // Crude frequency check: mean of 100k U(0,1) draws is 0.5 ± 0.005.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn from_entropy_produces_distinct_generators() {
        let mut a = StdRng::from_entropy();
        let mut b = StdRng::from_entropy();
        // Overwhelmingly likely to differ; equal streams would mean the
        // entropy sources collapsed entirely.
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert!(va != vb || a.next_u64() != b.next_u64());
    }
}
