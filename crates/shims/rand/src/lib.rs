//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! handful of `rand` APIs the simulators rely on are vendored here as a local
//! shim with the same module layout (`rand::rngs::StdRng`, `rand::Rng`,
//! `rand::SeedableRng`). Swapping in the real crate later only requires
//! editing `[workspace.dependencies]` — no source changes.
//!
//! The shim intentionally implements only what the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator (Blackman &
//!   Vigna), seeded through SplitMix64 exactly as the reference
//!   implementation recommends. It is *not* the cryptographic ChaCha12 core
//!   of the real `StdRng`, but it passes BigCrush and is more than adequate
//!   for Monte-Carlo simulation.
//! * [`Rng::gen`] / [`Rng::gen_range`] for `f64` (and the integer widths the
//!   tests draw).
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_entropy`].
//! * [`distributions`] — Poisson and standard-normal samplers (the
//!   tau-leaping stepper draws one Poisson variate per channel per leap);
//!   the real crate keeps these in `rand_distr`.
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` produces the same stream
//! on every platform and every run; the whole reproduction's "bit-identical
//! regardless of thread count" guarantee rests on this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;

use std::ops::Range;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `Rng` (the shim's analogue of
/// sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(
            self.start < self.end,
            "gen_range requires a non-empty range"
        );
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against round-off producing `end` itself.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                debug_assert!(self.start < self.end, "gen_range requires a non-empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo sampling: the bias is < span/2^64, irrelevant here.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize, i64, i32);

/// The user-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform for floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Example
    ///
    /// ```
    /// use rand::{Rng, SeedableRng};
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    /// assert!(u > 0.0 && u < 1.0);
    /// ```
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator seeded from system entropy (wall clock, process
    /// id, an ASLR-dependent address and a process-global counter) —
    /// non-reproducible by design. The counter guarantees distinct seeds
    /// for back-to-back calls even on platforms with coarse clock ticks.
    fn from_entropy() -> Self {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let pid = u64::from(std::process::id());
        let stack_probe = &now as *const u64 as usize as u64;
        Self::seed_from_u64(
            now ^ pid.rotate_left(32)
                ^ stack_probe.rotate_left(17)
                ^ unique.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// # Example
    ///
    /// ```
    /// use rand::SeedableRng;
    /// let mut a = rand::rngs::StdRng::seed_from_u64(42);
    /// let mut b = rand::rngs::StdRng::seed_from_u64(42);
    /// use rand::RngCore;
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
            let n: u64 = rng.gen_range(5u64..17);
            assert!((5..17).contains(&n));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        // Crude frequency check: mean of 100k U(0,1) draws is 0.5 ± 0.005.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn from_entropy_produces_distinct_generators() {
        let mut a = StdRng::from_entropy();
        let mut b = StdRng::from_entropy();
        // Overwhelmingly likely to differ; equal streams would mean the
        // entropy sources collapsed entirely.
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert!(va != vb || a.next_u64() != b.next_u64());
    }
}
