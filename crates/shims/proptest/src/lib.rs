//! Offline mini property-testing harness with the API shape of
//! [`proptest`](https://crates.io/crates/proptest).
//!
//! The workspace builds without crates.io access, so its property tests run
//! against this shim. It implements the subset the test suites use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_filter`, implemented for
//!   numeric ranges, tuples of strategies and [`Just`];
//! * [`collection::vec`] with fixed or ranged lengths;
//! * the [`proptest!`] macro plus [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assume!`].
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its generated inputs (all
//!   strategies produce `Debug` values here) and the case index instead;
//! * **deterministic runs** — case `i` of test `t` always uses the seed
//!   `hash(t) + i`, so failures reproduce exactly in CI and locally;
//! * case count defaults to 64, overridable with the `PROPTEST_CASES`
//!   environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An explicit `prop_assert!`-style failure, with its message.
    Fail(String),
    /// A `prop_assume!` rejection: the case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of test values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `predicate`, retrying the generator.
    /// Panics after 1000 consecutive rejections (`whence` names the filter).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        predicate: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            predicate,
        }
    }
}

/// A strategy mapped through a function; see [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy filtered by a predicate; see [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u64, u32, usize, i64, i32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// A length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// A length drawn uniformly from `[start, end)`.
        Ranged(Range<usize>),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Ranged(r)
        }
    }

    /// A strategy producing vectors of values from an element strategy.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match &self.size {
                SizeRange::Fixed(n) => *n,
                SizeRange::Ranged(r) => {
                    if r.start >= r.end {
                        r.start
                    } else {
                        rng.gen_range(r.clone())
                    }
                }
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError,
    };

    /// Namespaced access to strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Returns the number of cases per property: `PROPTEST_CASES` or 64.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Derives the deterministic base seed for a named property test.
pub fn base_seed(test_name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms (DefaultHasher is not).
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Drives one property: runs up to [`cases`] accepted cases, retrying
/// rejected ones (up to 16× the case budget) and panicking on the first
/// failure. Used by the [`proptest!`] macro; not part of proptest's API.
pub fn run_cases<F>(test_name: &str, mut one_case: F)
where
    F: FnMut(&mut TestRng, u64) -> Result<(), TestCaseError>,
{
    let budget = cases();
    let max_attempts = u64::from(budget) * 16;
    let base = base_seed(test_name);
    let mut accepted = 0u32;
    let mut attempt = 0u64;
    while accepted < budget {
        if attempt >= max_attempts {
            panic!(
                "property `{test_name}`: only {accepted}/{budget} cases accepted \
                 after {attempt} attempts (prop_assume rejects too much input)"
            );
        }
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(attempt));
        match one_case(&mut rng, attempt) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{test_name}` failed at case seed offset {attempt}: {msg}\n\
                     (reproduce deterministically: the case seed is \
                     base_seed(\"{test_name}\") + {attempt})"
                );
            }
        }
        attempt += 1;
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Declares property tests, mirroring proptest's `proptest!` macro: each
/// item is a `#[test]` function whose arguments are drawn from strategies.
///
/// In real code each function carries `#[test]`; the example below omits the
/// attribute (doctests cannot execute nested unit tests) and drives the
/// generated function directly instead.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |rng, _attempt| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                    // Render the inputs up front: the body may consume them,
                    // and they are only printed if the case fails.
                    let rendered_inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    let outcome = case();
                    if let ::std::result::Result::Err($crate::TestCaseError::Fail(_)) = &outcome {
                        eprint!("{rendered_inputs}");
                    }
                    outcome
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&x));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_filter_and_vec_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = collection::vec((0u32..10).prop_map(|x| x * 2), 3usize)
            .prop_filter("non-empty", |v| !v.is_empty());
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert_eq!(v.len(), 3);
            assert!(v.iter().all(|x| x % 2 == 0 && *x < 20));
        }
    }

    #[test]
    fn base_seed_is_stable() {
        // Frozen FNV-1a value: determinism across platforms and releases.
        assert_eq!(base_seed(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(base_seed("abc"), base_seed("abc"));
        assert_ne!(base_seed("abc"), base_seed("abd"));
    }

    #[test]
    #[should_panic(expected = "prop_assume rejects too much input")]
    fn impossible_assumption_exhausts_budget() {
        run_cases("impossible", |_rng, _i| Err(TestCaseError::reject("never")));
    }

    proptest! {
        #[test]
        fn shim_self_test(a in 0u64..100, b in 0u64..100, v in prop::collection::vec(0u32..5, 0..4)) {
            prop_assume!(a + b < 199);
            prop_assert!(a + b < 200);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(v.len(), 100);
        }
    }
}
