//! Offline facade for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace's data-model types are annotated with
//! `#[derive(Serialize, Deserialize)]` so they are serialisation-ready, but
//! the build environment has no crates.io access. This facade keeps the
//! annotations compiling by re-exporting no-op derive macros from the local
//! `serde_derive` shim; `#[serde(...)]` helper attributes are accepted and
//! ignored. Replacing this shim with real serde is a `[workspace.dependencies]`
//! edit only — no source changes anywhere else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
