//! Experiment E6 — characterises the deterministic function modules of
//! Section 2.2.1: linear, exponentiation, logarithm, power and isolation.
//!
//! The paper defines these modules but reports no dedicated figure for them;
//! this harness produces the accuracy tables that substantiate the claims
//! `Y∞ = (β/α)X₀`, `Y∞ = 2^X₀`, `Y∞ = log2 X₀`, `Y∞ = X₀^P₀` and `Y∞ = 1`.
//!
//! ```text
//! cargo run --release -p bench --bin det_modules -- --repeats 20
//! ```

use bench::{Args, Table};
use numerics::summary;
use synthesis::modules::{
    exponentiation::exponentiation, isolation::isolation, linear::linear, logarithm::logarithm,
    power::power, FunctionModule,
};

fn main() {
    let args = Args::parse(&["repeats", "seed", "separation"]).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    let repeats = args.get_u64("repeats", 20);
    let seed = args.get_u64("seed", 1);
    let separation = args.get_f64("separation", 100.0);

    println!("Deterministic function modules (Section 2.2.1)");
    println!("{repeats} repetitions per input, band separation {separation}, seed {seed}\n");

    // Linear: Y = X/6 and Y = 2X.
    println!("linear module  (α x -> β y)");
    let mut table = Table::new(&["function", "X", "expected", "mean Y", "std dev"]);
    let sixth = linear(6, 1, "x", "y", separation).expect("linear module");
    let double = linear(1, 2, "x", "y", separation).expect("linear module");
    for &x in &[6u64, 30, 60, 120] {
        add_row(
            &mut table,
            "X/6",
            &sixth,
            &[("x", x)],
            (x / 6) as f64,
            repeats,
            seed,
        );
    }
    for &x in &[5u64, 25, 100] {
        add_row(
            &mut table,
            "2X",
            &double,
            &[("x", x)],
            (2 * x) as f64,
            repeats,
            seed,
        );
    }
    table.print();

    // Exponentiation: Y = 2^X.
    println!("\nexponentiation module  (Y = 2^X)");
    let mut table = Table::new(&["function", "X", "expected", "mean Y", "std dev"]);
    let exp = exponentiation("x", "y", separation).expect("exponentiation module");
    for &x in &[0u64, 1, 2, 3, 4, 5, 6] {
        add_row(
            &mut table,
            "2^X",
            &exp,
            &[("x", x)],
            (1u64 << x) as f64,
            repeats,
            seed,
        );
    }
    table.print();

    // Logarithm: Y = log2 X.
    println!("\nlogarithm module  (Y = log2 X)");
    let mut table = Table::new(&["function", "X", "expected", "mean Y", "std dev"]);
    let log = logarithm("x", "y", separation).expect("logarithm module");
    for &x in &[1u64, 2, 4, 8, 16, 32, 64, 100] {
        add_row(
            &mut table,
            "log2 X",
            &log,
            &[("x", x)],
            (x as f64).log2().floor(),
            repeats,
            seed,
        );
    }
    table.print();

    // Power: Y = X^P.
    println!("\npower module  (Y = X^P)");
    let mut table = Table::new(&["function", "X", "expected", "mean Y", "std dev"]);
    let pow = power("x", "p", "y", separation).expect("power module");
    for &(x, p) in &[(2u64, 2u64), (2, 3), (3, 2), (4, 2), (5, 1)] {
        add_row(
            &mut table,
            &format!("X^{p}"),
            &pow,
            &[("x", x), ("p", p)],
            (x as f64).powi(p as i32),
            repeats,
            seed,
        );
    }
    table.print();

    // Isolation: Y = 1.
    println!("\nisolation module  (Y = 1)");
    let mut table = Table::new(&["function", "X", "expected", "mean Y", "std dev"]);
    let iso = isolation("y", "c", separation * 10.0).expect("isolation module");
    for &y0 in &[1u64, 10, 100, 1000] {
        add_row(
            &mut table,
            "1",
            &iso,
            &[("y", y0), ("c", 3)],
            1.0,
            repeats,
            seed,
        );
    }
    table.print();
}

fn add_row(
    table: &mut Table,
    label: &str,
    module: &FunctionModule,
    inputs: &[(&str, u64)],
    expected: f64,
    repeats: u64,
    seed: u64,
) {
    let samples: Vec<f64> = (0..repeats)
        .map(|r| {
            module
                .evaluate(inputs, seed.wrapping_add(r))
                .expect("module evaluation") as f64
        })
        .collect();
    let stats = summary(&samples);
    let input_text = inputs
        .iter()
        .map(|(name, value)| format!("{name}={value}"))
        .collect::<Vec<_>>()
        .join(", ");
    table.row(&[
        label.to_string(),
        input_text,
        format!("{expected:.0}"),
        format!("{:.2}", stats.mean),
        format!("{:.2}", stats.std_dev),
    ]);
}
