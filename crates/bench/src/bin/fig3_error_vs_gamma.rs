//! Experiment E1 — reproduces **Figure 3** of the paper: the percentage of
//! trajectories in error as a function of the rate separation γ.
//!
//! Setup (matching Section 2.1.3): a three-outcome stochastic module with
//! `k_i = 1`, initial input quantities `E_i = 100` each, and an outcome
//! declared after 10 working firings. A trial is an *error* when the final
//! outcome differs from the outcome selected by the first initializing
//! reaction.
//!
//! ```text
//! cargo run --release -p bench --bin fig3_error_vs_gamma -- --trials 10000
//! ```
//!
//! The paper uses 100,000 trials per point; pass `--trials 100000` for the
//! full-fidelity run (slower, especially at γ = 1 where errors are common
//! and trajectories are long).

use bench::{Args, Table};
use gillespie::engine::run_chunked;
use numerics::wilson_interval;
use synthesis::{StochasticModule, TargetDistribution};

fn main() {
    let args = Args::parse(&["trials", "seed", "threads", "gammas"]).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    let trials = args.get_u64("trials", 10_000);
    let seed = args.get_u64("seed", 1);
    let threads = args.get_u64("threads", 0) as usize;
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let gammas: Vec<f64> = args
        .get_str("gammas", "1,10,100,1000,10000,100000")
        .split(',')
        .filter_map(|g| g.trim().parse().ok())
        .collect();

    println!("Figure 3 — error analysis of the stochastic module");
    println!("three outcomes, E_i = 100, decision after 10 working firings");
    println!("{trials} trials per γ, master seed {seed}, {threads} threads\n");

    let mut table = Table::new(&["gamma", "errors", "trials", "error %", "95% CI"]);
    for &gamma in &gammas {
        let errors = error_count(gamma, trials, seed, threads);
        let ci = wilson_interval(errors, trials, 0.95).expect("valid interval");
        table.row(&[
            format!("{gamma:.0}"),
            errors.to_string(),
            trials.to_string(),
            format!("{:.4}", 100.0 * errors as f64 / trials as f64),
            format!("[{:.4}, {:.4}]", 100.0 * ci.lower, 100.0 * ci.upper),
        ]);
    }
    table.print();
    println!("\nExpected shape (paper, Figure 3): the error percentage falls roughly");
    println!("as 1/γ, from tens of percent at γ = 1 to below 0.01 % at γ = 10⁵.");
}

/// Counts error trials for one γ value, spreading trials across threads.
/// Trial `i` always uses seed `seed + i`, so results are independent of the
/// thread count.
fn error_count(gamma: f64, trials: u64, seed: u64, threads: usize) -> u64 {
    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(gamma)
        .input_total(300) // E_i = 100 each, as in the paper's setup
        .food(100)
        .decision_threshold(10)
        .build()
        .expect("valid module");
    let distribution = TargetDistribution::uniform(3).expect("uniform distribution");
    let initial = module
        .initial_state(&distribution)
        .expect("valid initial state");

    let partials = run_chunked(threads, trials, |range, _cancel| {
        let mut errors = 0u64;
        for trial in range.trials() {
            let (_, _, is_error) = module
                .error_trial(&initial, seed.wrapping_add(trial))
                .map_err(|err| err.to_string())?;
            if is_error {
                errors += 1;
            }
        }
        Ok::<_, String>(errors)
    })
    .expect("error trial");
    partials.into_iter().sum()
}
