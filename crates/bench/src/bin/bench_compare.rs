//! Benchmark-regression gate: diffs a fresh bench run against the
//! committed `BENCH_*.json` baselines and exits non-zero on a median
//! regression.
//!
//! ```sh
//! # Record a fresh run somewhere other than the committed baselines…
//! BENCH_OUTPUT_DIR=bench-fresh cargo bench -p bench --bench ssa_methods
//! # …and gate on it (exit 1 on any >25% median regression):
//! cargo run --release -p bench --bin bench_compare -- \
//!     --baseline-dir . --fresh-dir bench-fresh --normalize 1
//! ```
//!
//! Options (all `--key value`):
//!
//! * `--baseline-dir` — directory holding the committed `BENCH_*.json`
//!   files (default `.`),
//! * `--fresh-dir` — directory holding the fresh run's `BENCH_*.json`
//!   files; every baseline suite must have a fresh counterpart,
//! * `--threshold` — fractional regression that fails the gate
//!   (default `0.25` = 25%),
//! * `--min-ns` — benchmarks whose *baseline* median is below this many
//!   nanoseconds are reported but not gated (default `0` = gate all).
//!   Micro-benchmarks in the tens of microseconds jitter past any sane
//!   threshold run to run; CI uses `--min-ns 50000`,
//! * `--normalize` — `1` divides the suite-median speed ratio out of every
//!   comparison first, so runs from differently-fast machines (CI runners
//!   vs the baseline recorder) only fail on *relative* regressions;
//!   `0` (default) compares raw medians — use it when both runs come from
//!   the same machine.
//!
//! Besides the baseline diff, the gate enforces three structural contracts
//! on the fresh run: the adaptive-portfolio contract (in every scenario
//! group that carries an `auto` column, the `auto` median must be within
//! 10% of the best concrete stepper), the hybrid-showcase contract
//! (in every `multiscale_switch` group, `hybrid` must post the lowest
//! median of all concrete steppers), and the telemetry-overhead contract
//! (a `metrics_overhead` row must land within 5% of its group's
//! `simulate_cache_hit` row — observability stays off the hot path).
//!
//! Exit codes: `0` gate passed, `1` regression (or vanished benchmark, or
//! portfolio violation), `2` usage or I/O error. See the README's
//! *Benchmark regression policy* for when and how to re-baseline
//! intentionally.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bench::baseline::{
    hybrid_showcase_violations, parse_baseline, portfolio_violations,
    telemetry_overhead_violations, Baseline, Comparison,
};
use bench::{Args, Table};

fn load(path: &Path) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_baseline(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Lists the `BENCH_*.json` files in `dir`, sorted by name.
fn baseline_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no BENCH_*.json files in {}", dir.display()));
    }
    Ok(files)
}

fn run() -> Result<bool, String> {
    let args = Args::parse(&[
        "baseline-dir",
        "fresh-dir",
        "threshold",
        "normalize",
        "min-ns",
    ])?;
    let baseline_dir = PathBuf::from(args.get_str("baseline-dir", "."));
    let fresh_dir = PathBuf::from(args.get_str("fresh-dir", "bench-fresh"));
    let threshold = args.get_f64("threshold", 0.25);
    let normalize = args.get_u64("normalize", 0) != 0;
    let floor_ns = args.get_f64("min-ns", 0.0);
    if !(0.0..10.0).contains(&threshold) {
        return Err(format!("implausible threshold {threshold}"));
    }

    let mut all_pass = true;
    let mut compared = 0usize;
    for baseline_path in baseline_files(&baseline_dir)? {
        let file_name = baseline_path
            .file_name()
            .expect("listed files have names")
            .to_string_lossy()
            .into_owned();
        let fresh_path = fresh_dir.join(&file_name);
        if !fresh_path.exists() {
            // Suites not re-run this time (e.g. comparing a single suite)
            // are skipped loudly rather than failed: the CI job re-runs
            // every suite, so a genuinely vanished file still fails there
            // via the missing benchmark ids of the suites it does run.
            println!(
                "{file_name}: no fresh run found in {} — skipped",
                fresh_dir.display()
            );
            continue;
        }
        let baseline = load(&baseline_path)?;
        let fresh = load(&fresh_path)?;
        let comparison = Comparison::between(&baseline, &fresh, normalize);
        compared += 1;

        println!(
            "\n== {file_name} (threshold +{:.0}%{}) ==",
            threshold * 100.0,
            if normalize {
                format!(", machine-speed scale {:.3}", comparison.scale)
            } else {
                String::new()
            }
        );
        let mut table = Table::new(&["benchmark", "baseline", "fresh", "ratio", "verdict"]);
        for delta in &comparison.deltas {
            let verdict = if delta.ratio > 1.0 + threshold {
                if delta.baseline_ns >= floor_ns {
                    "REGRESSED"
                } else {
                    "jitter (below --min-ns, ungated)"
                }
            } else if delta.ratio < 1.0 / (1.0 + threshold) {
                "improved"
            } else {
                "ok"
            };
            table.row(&[
                delta.id.clone(),
                format!("{:.1}", delta.baseline_ns),
                format!("{:.1}", delta.fresh_ns),
                format!("{:.3}", delta.ratio),
                verdict.to_string(),
            ]);
        }
        table.print();
        for id in &comparison.missing {
            println!("MISSING: {id} has no fresh measurement");
        }
        for id in &comparison.new_ids {
            println!("new (unbaselined): {id}");
        }
        if !comparison.passes(threshold, floor_ns) {
            all_pass = false;
        }
        // Portfolio contract: wherever a scenario has an `auto` column, the
        // adaptive stepper must land within 10% of the best concrete one in
        // the *fresh* run — a misclassification is a gate failure even if
        // no baselined id regressed.
        for violation in portfolio_violations(&fresh, 0.10) {
            println!("PORTFOLIO: {violation}");
            all_pass = false;
        }
        // Showcase contract: the multiscale_switch scenario exists to prove
        // the hybrid stepper's value, so hybrid losing to any pure stepper
        // there means the partition heuristics rotted — fail the gate.
        for violation in hybrid_showcase_violations(&fresh) {
            println!("SHOWCASE: {violation}");
            all_pass = false;
        }
        // Telemetry contract: the instrumented cache-hit row must stay
        // within 5% of the plain one in the fresh run — observability that
        // taxes the hot path is a regression even with no baselined id
        // moving.
        for violation in telemetry_overhead_violations(&fresh, 0.05) {
            println!("TELEMETRY: {violation}");
            all_pass = false;
        }
    }
    // A gate that compared nothing is a misconfiguration, not a pass: a
    // wrong --fresh-dir must not silently neuter the regression check.
    if compared == 0 {
        return Err(format!(
            "no suite was compared — no fresh BENCH_*.json matched {} in {}",
            baseline_dir.display(),
            fresh_dir.display()
        ));
    }
    Ok(all_pass)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("\nbench_compare: gate PASSED");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("\nbench_compare: gate FAILED — median regression past the threshold");
            eprintln!(
                "(intentional? re-record the baseline per README \"Benchmark regression policy\")"
            );
            ExitCode::from(1)
        }
        Err(message) => {
            eprintln!("bench_compare: {message}");
            ExitCode::from(2)
        }
    }
}
