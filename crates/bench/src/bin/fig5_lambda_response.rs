//! Experiments E2/E3/E7 — reproduces **Figure 5** and **Equation 14** of the
//! paper: the probability of reaching the cI2 threshold as a function of
//! MOI, for the natural model (surrogate), its log-linear curve fit, and the
//! synthesized model.
//!
//! ```text
//! cargo run --release -p bench --bin fig5_lambda_response -- --trials 1000
//! cargo run --release -p bench --bin fig5_lambda_response -- --print-model true
//! ```

use bench::{Args, Table};
use lambda::{
    equation_14, figure4_verbatim, LambdaModel, MoiSweep, NaturalLambdaModel, SyntheticLambdaModel,
};

fn main() {
    let args = Args::parse(&["trials", "seed", "threads", "print-model", "moi-max"])
        .unwrap_or_else(|err| {
            eprintln!("error: {err}");
            std::process::exit(2);
        });
    let trials = args.get_u64("trials", 1_000);
    let seed = args.get_u64("seed", 7);
    let threads = args.get_u64("threads", 0) as usize;
    let moi_max = args.get_u64("moi-max", 10).max(3);

    if args.get_str("print-model", "false") == "true" {
        println!("Figure 4 — the synthesized model exactly as printed in the paper:\n");
        println!("{}", figure4_verbatim().to_text());
    }

    println!("Figure 5 — probabilistic response of the lambda lysis/lysogeny switch");
    println!("{trials} trials per MOI, master seed {seed}\n");

    // 1. Natural surrogate sweep.
    let natural = NaturalLambdaModel::new().expect("natural model");
    let natural_curve = MoiSweep::new(1..=moi_max)
        .trials(trials)
        .master_seed(seed)
        .threads(threads)
        .run(&natural)
        .expect("natural sweep");

    // 2. Curve fit of the natural response (the analogue of Equation 14).
    let fit = natural_curve.fit_log_linear().expect("curve fit");
    println!("fit to the natural surrogate:  P(cI2 threshold) ≈ {fit}  (percent)");
    println!(
        "paper's Equation 14:           P(cI2 threshold) ≈ 15.000 + 6.000·log2(x) + 0.1667·x\n"
    );

    // 3. Synthesize from the fit and sweep the synthesized model.
    let synthetic = SyntheticLambdaModel::from_fit(&fit).expect("synthesized model");
    let synthetic_curve = MoiSweep::new(1..=moi_max)
        .trials(trials)
        .master_seed(seed ^ 0xABCD)
        .threads(threads)
        .run(&synthetic)
        .expect("synthetic sweep");

    // 4. Also sweep the model synthesized directly from Equation 14.
    let paper_model = SyntheticLambdaModel::paper().expect("paper model");
    let paper_curve = MoiSweep::new(1..=moi_max)
        .trials(trials)
        .master_seed(seed ^ 0x1234)
        .threads(threads)
        .run(&paper_model)
        .expect("paper-model sweep");

    let eq14 = equation_14();
    let mut table = Table::new(&[
        "MOI",
        "natural %",
        "fit %",
        "synthetic(fit) %",
        "synthetic(Eq14) %",
        "Eq14 %",
    ]);
    for (i, point) in natural_curve.points().iter().enumerate() {
        let moi = point.moi;
        table.row(&[
            moi.to_string(),
            format!("{:.1}", 100.0 * point.probability),
            format!("{:.1}", fit.evaluate(moi as f64)),
            format!("{:.1}", 100.0 * synthetic_curve.points()[i].probability),
            format!("{:.1}", 100.0 * paper_curve.points()[i].probability),
            format!("{:.1}", eq14.evaluate(moi as f64)),
        ]);
    }
    table.print();

    let gap = natural_curve
        .max_absolute_difference(&synthetic_curve)
        .expect("curves cover the same MOI values");
    println!(
        "\nmax |natural − synthetic(fit)| = {:.1} percentage points",
        100.0 * gap
    );
    println!(
        "network sizes: natural {} reactions / {} species, synthetic {} reactions / {} species",
        LambdaModel::crn(&natural).reactions().len(),
        LambdaModel::crn(&natural).species_len(),
        LambdaModel::crn(&synthetic).reactions().len(),
        LambdaModel::crn(&synthetic).species_len(),
    );
    println!(
        "(the paper's natural model has 117 reactions / 61 species; its synthesized model 19 / 17)"
    );
}
