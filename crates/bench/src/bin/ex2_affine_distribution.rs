//! Experiment E5 — reproduces **Example 2** of the paper: making the outcome
//! distribution an affine function of two input quantities by adding
//! preprocessing reactions
//!
//! ```text
//! p1 = 0.3 + 0.02·X1 − 0.03·X2
//! p2 = 0.4 + 0.03·X2
//! p3 = 0.3 − 0.02·X1
//! ```
//!
//! realised by `2 e3 + x1 -> 2 e1` and `3 e1 + x2 -> 3 e2`.
//!
//! ```text
//! cargo run --release -p bench --bin ex2_affine_distribution -- --trials 4000
//! ```

use bench::{Args, Table};
use gillespie::{Ensemble, EnsembleOptions};
use synthesis::{Composer, Preprocessor, StochasticModule, TargetDistribution};

fn main() {
    let args = Args::parse(&["trials", "seed", "gamma"]).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    let trials = args.get_u64("trials", 4_000);
    let seed = args.get_u64("seed", 11);
    let gamma = args.get_f64("gamma", 1_000.0);

    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(gamma)
        .input_total(100)
        .build()
        .expect("valid module");
    let preprocessor = Preprocessor::new(3)
        .term("x1", 2, 0, 2) // 2e3 + x1 -> 2e1
        .expect("term")
        .term("x2", 0, 1, 3) // 3e1 + x2 -> 3e2
        .expect("term");
    // Preprocessing must outrun the initializing reactions: use a rate in the
    // reinforcing band.
    let crn = Composer::new()
        .add(module.crn())
        .add(&preprocessor.build(gamma).expect("preprocessing reactions"))
        .build()
        .expect("composed network");

    let base = TargetDistribution::new(vec![0.3, 0.4, 0.3]).expect("base distribution");
    let base_counts = base.to_counts(100);

    println!("Example 2 — affine programmable distribution");
    println!("base {{0.3, 0.4, 0.3}}, terms: +0.02·X1 (3→1), +0.03·X2 (1→2)");
    println!("{trials} trials per input point, γ = {gamma}, seed {seed}\n");

    let mut table = Table::new(&[
        "X1", "X2", "p1 pred", "p1 sim", "p2 pred", "p2 sim", "p3 pred", "p3 sim",
    ]);
    for &(x1, x2) in &[
        (0u64, 0u64),
        (5, 0),
        (10, 0),
        (0, 5),
        (0, 10),
        (5, 5),
        (10, 10),
    ] {
        let predicted =
            preprocessor.predicted_probabilities(&base_counts, &[("x1", x1), ("x2", x2)]);

        let mut initial = crn.zero_state();
        for (i, &count) in base_counts.iter().enumerate() {
            initial.set(
                crn.species_id(&format!("e{}", i + 1)).expect("species"),
                count,
            );
            initial.set(
                crn.species_id(&format!("f{}", i + 1)).expect("species"),
                100,
            );
        }
        initial.set(crn.species_id("x1").expect("x1"), x1);
        initial.set(crn.species_id("x2").expect("x2"), x2);

        let report = Ensemble::new(&crn, initial, module.classifier().expect("classifier"))
            .options(
                EnsembleOptions::new()
                    .trials(trials)
                    .master_seed(seed.wrapping_add(x1 * 1000 + x2))
                    .simulation(module.simulation_options()),
            )
            .run()
            .expect("ensemble");

        table.row(&[
            x1.to_string(),
            x2.to_string(),
            format!("{:.3}", predicted[0]),
            format!("{:.3}", report.probability("T1")),
            format!("{:.3}", predicted[1]),
            format!("{:.3}", report.probability("T2")),
            format!("{:.3}", predicted[2]),
            format!("{:.3}", report.probability("T3")),
        ]);
    }
    table.print();
    println!("\nNote: the module's classifier names outcomes T1/T2/T3; the paper's d1/d2/d3.");
}
