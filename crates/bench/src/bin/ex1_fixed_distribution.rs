//! Experiment E4 — reproduces **Example 1** of the paper: programming the
//! fixed distribution {0.3, 0.4, 0.3} over three outcomes and checking the
//! empirical outcome frequencies against the target.
//!
//! ```text
//! cargo run --release -p bench --bin ex1_fixed_distribution -- --trials 10000
//! ```

use bench::{Args, Table};
use gillespie::{Ensemble, EnsembleOptions};
use numerics::wilson_interval;
use synthesis::{StochasticModule, TargetDistribution};

fn main() {
    let args = Args::parse(&["trials", "seed", "gamma"]).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    let trials = args.get_u64("trials", 10_000);
    let seed = args.get_u64("seed", 3);
    let gamma = args.get_f64("gamma", 1_000.0);

    // The paper's Example 1: initializing rates 1, reinforcing/stabilizing
    // 10^3, purifying 10^6, with E = (30, 40, 30).
    let module = StochasticModule::builder()
        .outcomes(["d1", "d2", "d3"])
        .gamma(gamma)
        .input_total(100)
        .build()
        .expect("valid module");
    let target = TargetDistribution::new(vec![0.3, 0.4, 0.3]).expect("valid distribution");
    let initial = module.initial_state(&target).expect("valid initial state");

    println!("Example 1 — programming the distribution {{0.3, 0.4, 0.3}}");
    println!(
        "E = (30, 40, 30), rates 1 / {} / {} (γ = {gamma}), {trials} trials, seed {seed}\n",
        gamma,
        gamma * gamma
    );

    let report = Ensemble::new(
        module.crn(),
        initial,
        module.classifier().expect("classifier"),
    )
    .options(
        EnsembleOptions::new()
            .trials(trials)
            .master_seed(seed)
            .simulation(module.simulation_options()),
    )
    .run()
    .expect("ensemble");

    let mut table = Table::new(&["outcome", "target", "empirical", "95% CI", "count"]);
    let mut total_abs_error = 0.0;
    for (i, outcome) in module.outcomes().iter().enumerate() {
        let p = report.probability(outcome);
        let ci = wilson_interval(report.count(outcome), trials, 0.95).expect("interval");
        total_abs_error += (p - target.probability(i)).abs();
        table.row(&[
            outcome.clone(),
            format!("{:.3}", target.probability(i)),
            format!("{p:.4}"),
            format!("[{:.4}, {:.4}]", ci.lower, ci.upper),
            report.count(outcome).to_string(),
        ]);
    }
    table.print();
    println!("\nundecided trajectories: {}", report.undecided);
    println!(
        "total variation distance to target: {:.4}",
        total_abs_error / 2.0
    );
    println!(
        "mean reaction events per trajectory: {:.0}",
        report.mean_events
    );
}
