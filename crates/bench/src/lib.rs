//! Shared harness utilities for the experiment binaries and benchmarks.
//!
//! The `bench` crate regenerates every table and figure of the paper's
//! evaluation (see `DESIGN.md` for the experiment index):
//!
//! | experiment | binary | paper artefact |
//! |---|---|---|
//! | E1 | `fig3_error_vs_gamma` | Figure 3: error rate vs rate separation γ |
//! | E2/E3 | `fig5_lambda_response` | Figure 5 + Equation 14: MOI response curves |
//! | E4 | `ex1_fixed_distribution` | Example 1: fixed distribution {0.3, 0.4, 0.3} |
//! | E5 | `ex2_affine_distribution` | Example 2: programmable affine distribution |
//! | E6 | `det_modules` | Deterministic module accuracy sweeps |
//!
//! Criterion benchmarks (`cargo bench`) cover simulator performance and the
//! ablations listed in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;

use std::collections::HashMap;

/// A tiny command-line argument reader for the experiment binaries.
///
/// Arguments are `--key value` pairs; unknown keys are rejected so typos do
/// not silently fall back to defaults.
///
/// # Example
///
/// ```
/// let args = bench::Args::parse_from(
///     ["--trials", "500", "--seed", "7"].iter().map(|s| s.to_string()),
///     &["trials", "seed", "gamma"],
/// ).unwrap();
/// assert_eq!(args.get_u64("trials", 1000), 500);
/// assert_eq!(args.get_u64("gamma", 42), 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs from the process arguments (skipping the
    /// binary name), validating keys against `allowed`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable error for unknown keys or missing values.
    pub fn parse(allowed: &[&str]) -> Result<Self, String> {
        Args::parse_from(std::env::args().skip(1), allowed)
    }

    /// Parses from an explicit iterator (used by tests).
    ///
    /// # Errors
    ///
    /// Returns a human-readable error for unknown keys or missing values.
    pub fn parse_from<I>(args: I, allowed: &[&str]) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut values = HashMap::new();
        let mut iter = args.into_iter();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!(
                    "unexpected argument `{key}` (expected `--name value`)"
                ));
            };
            if !allowed.contains(&name) {
                return Err(format!(
                    "unknown option `--{name}`; known options: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            let value = iter
                .next()
                .ok_or_else(|| format!("missing value for `--{name}`"))?;
            values.insert(name.to_string(), value);
        }
        Ok(Args { values })
    }

    /// Returns an integer option or its default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Returns a float option or its default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Returns a string option or its default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Returns whether the option was supplied at all.
    pub fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

/// A minimal fixed-width table printer for experiment output.
///
/// # Example
///
/// ```
/// let mut table = bench::Table::new(&["gamma", "error %"]);
/// table.row(&["10".to_string(), "12.5".to_string()]);
/// let text = table.render();
/// assert!(text.contains("gamma"));
/// assert!(text.contains("12.5"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have the same number of cells as headers).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to standard output.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_known_options() {
        let args = Args::parse_from(
            ["--trials", "50", "--gamma", "1e3"]
                .iter()
                .map(|s| s.to_string()),
            &["trials", "gamma"],
        )
        .unwrap();
        assert_eq!(args.get_u64("trials", 0), 50);
        assert_eq!(args.get_f64("gamma", 0.0), 1000.0);
        assert!(args.contains("trials"));
        assert!(!args.contains("seed"));
        assert_eq!(args.get_str("missing", "x"), "x");
    }

    #[test]
    fn args_reject_unknown_and_malformed_options() {
        assert!(
            Args::parse_from(["--nope", "1"].iter().map(|s| s.to_string()), &["trials"]).is_err()
        );
        assert!(
            Args::parse_from(["trials", "1"].iter().map(|s| s.to_string()), &["trials"]).is_err()
        );
        assert!(Args::parse_from(["--trials"].iter().map(|s| s.to_string()), &["trials"]).is_err());
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = Table::new(&["a", "long header"]);
        table.row(&["1".to_string(), "2".to_string()]);
        table.row(&["100".to_string(), "2000".to_string()]);
        let text = table.render();
        assert!(text.lines().count() >= 4);
        assert!(text.contains("long header"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut table = Table::new(&["a", "b"]);
        table.row(&["only one".to_string()]);
    }
}
