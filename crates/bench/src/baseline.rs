//! Benchmark-baseline parsing and regression comparison.
//!
//! The criterion shim writes each suite's results to a `BENCH_<suite>.json`
//! baseline in the workspace root; the committed copies are the reference
//! numbers. This module reads those files back and diffs a fresh run
//! against them, so the `bench_compare` binary can fail CI on a median
//! regression instead of merely uploading artifacts (see the README's
//! *Benchmark regression policy*).
//!
//! The serde shim is deliberately a no-op, so parsing goes through the
//! workspace's one self-contained JSON reader — [`service::json`], the same
//! module the HTTP service speaks through — re-exported here as [`Json`].

use std::collections::BTreeMap;

/// The workspace's JSON value type, re-exported from [`service::json`].
pub use service::json::Json;

/// One parsed `BENCH_<suite>.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Suite name (`ssa_methods`, `ensemble_scaling`, …).
    pub suite: String,
    /// Per-benchmark summary statistics, in file order.
    pub benchmarks: Vec<BenchmarkStats>,
}

/// Summary statistics of one benchmark id, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkStats {
    /// Full benchmark id, `group/bench` style.
    pub id: String,
    /// Median time per iteration (ns) — the statistic the gate compares.
    pub median_ns: f64,
    /// Mean time per iteration (ns).
    pub mean_ns: f64,
    /// Minimum observed time per iteration (ns).
    pub min_ns: f64,
    /// Maximum observed time per iteration (ns).
    pub max_ns: f64,
}

/// Parses a `BENCH_<suite>.json` baseline file.
///
/// # Errors
///
/// Returns a human-readable message when the text is not valid JSON or is
/// missing the expected fields.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let value = service::json::parse(text)?;
    let suite = value
        .get("suite")
        .ok_or("missing \"suite\"")?
        .as_str("suite")?
        .to_string();
    let mut benchmarks = Vec::new();
    for (i, entry) in value
        .get("benchmarks")
        .ok_or("missing \"benchmarks\"")?
        .as_array("benchmarks")?
        .iter()
        .enumerate()
    {
        let number = |key: &str| -> Result<f64, String> {
            entry
                .get(key)
                .ok_or_else(|| format!("benchmarks[{i}] missing \"{key}\""))?
                .as_f64(key)
        };
        benchmarks.push(BenchmarkStats {
            id: entry
                .get("id")
                .ok_or_else(|| format!("benchmarks[{i}] missing \"id\""))?
                .as_str("id")?
                .to_string(),
            median_ns: number("median")?,
            mean_ns: number("mean")?,
            min_ns: number("min")?,
            max_ns: number("max")?,
        });
    }
    Ok(Baseline { suite, benchmarks })
}

/// How one benchmark id moved between the baseline and a fresh run.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Benchmark id.
    pub id: String,
    /// Committed median (ns/iter).
    pub baseline_ns: f64,
    /// Freshly measured median (ns/iter).
    pub fresh_ns: f64,
    /// `fresh / baseline` after dividing out the machine-speed scale.
    pub ratio: f64,
}

/// The outcome of diffing a fresh run against a committed baseline.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-benchmark deltas for every id present in the baseline and the
    /// fresh run, in baseline order.
    pub deltas: Vec<Delta>,
    /// Baseline ids with no fresh measurement (these fail the gate: a
    /// silently vanishing benchmark is itself a regression).
    pub missing: Vec<String>,
    /// Fresh ids not present in the baseline (reported, never failing —
    /// they gain a baseline entry at the next re-baseline).
    pub new_ids: Vec<String>,
    /// The machine-speed scale divided out of every ratio: 1.0 in raw
    /// mode, the median of the per-id ratios in normalized mode.
    pub scale: f64,
}

impl Comparison {
    /// Diffs `fresh` against `baseline` on median ns/iter.
    ///
    /// With `normalize` set, the median of all per-id ratios is divided
    /// out first, so a uniformly slower (or faster) machine does not trip
    /// the gate — only benchmarks that regressed *relative to the suite*
    /// do. Use raw mode when both runs come from the same machine.
    pub fn between(baseline: &Baseline, fresh: &Baseline, normalize: bool) -> Comparison {
        let fresh_by_id: BTreeMap<&str, &BenchmarkStats> = fresh
            .benchmarks
            .iter()
            .map(|b| (b.id.as_str(), b))
            .collect();
        let mut deltas = Vec::new();
        let mut missing = Vec::new();
        for base in &baseline.benchmarks {
            match fresh_by_id.get(base.id.as_str()) {
                Some(f) => deltas.push(Delta {
                    id: base.id.clone(),
                    baseline_ns: base.median_ns,
                    fresh_ns: f.median_ns,
                    ratio: f.median_ns / base.median_ns,
                }),
                None => missing.push(base.id.clone()),
            }
        }
        let baseline_ids: BTreeMap<&str, ()> = baseline
            .benchmarks
            .iter()
            .map(|b| (b.id.as_str(), ()))
            .collect();
        let new_ids = fresh
            .benchmarks
            .iter()
            .filter(|b| !baseline_ids.contains_key(b.id.as_str()))
            .map(|b| b.id.clone())
            .collect();
        let scale = if normalize && !deltas.is_empty() {
            let mut ratios: Vec<f64> = deltas.iter().map(|d| d.ratio).collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            let n = ratios.len();
            if n % 2 == 1 {
                ratios[n / 2]
            } else {
                (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0
            }
        } else {
            1.0
        };
        for delta in &mut deltas {
            delta.ratio /= scale;
        }
        Comparison {
            deltas,
            missing,
            new_ids,
            scale,
        }
    }

    /// The deltas whose (scale-adjusted) median regressed by more than
    /// `threshold` (0.25 = 25%), among benchmarks whose baseline median is
    /// at least `floor_ns`.
    ///
    /// The floor exists because micro-benchmarks in the tens of
    /// microseconds jitter well past 25% run to run (allocator state,
    /// frequency scaling, cache luck); gating on them would make the CI
    /// check flaky without protecting anything the hot-path suites don't
    /// already cover. Pass `0.0` to gate every id.
    pub fn regressions(&self, threshold: f64, floor_ns: f64) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.baseline_ns >= floor_ns && d.ratio > 1.0 + threshold)
            .collect()
    }

    /// `true` when the gate passes: no regression beyond `threshold` on any
    /// benchmark at or above `floor_ns`, and no baseline id missing from
    /// the fresh run.
    pub fn passes(&self, threshold: f64, floor_ns: f64) -> bool {
        self.missing.is_empty() && self.regressions(threshold, floor_ns).is_empty()
    }
}

/// Checks the adaptive-portfolio contract on a fresh `ssa_methods` run:
/// within every scenario group, the `auto` column's median must land
/// within `slack` (0.10 = 10%) of the best *concrete* stepper's median.
///
/// Benchmark ids are `suite/scenario/method`; groups without an `auto`
/// column (other suites, pre-portfolio baselines) are skipped. Returns one
/// human-readable message per violated scenario, empty when the contract
/// holds.
pub fn portfolio_violations(fresh: &Baseline, slack: f64) -> Vec<String> {
    let mut groups: BTreeMap<&str, Vec<&BenchmarkStats>> = BTreeMap::new();
    for bench in &fresh.benchmarks {
        if let Some((group, _method)) = bench.id.rsplit_once('/') {
            groups.entry(group).or_default().push(bench);
        }
    }
    let mut violations = Vec::new();
    for (group, members) in groups {
        let Some(auto) = members
            .iter()
            .find(|b| b.id.rsplit_once('/').is_some_and(|(_, m)| m == "auto"))
        else {
            continue;
        };
        let best = members
            .iter()
            .filter(|b| b.id != auto.id)
            .map(|b| b.median_ns)
            .fold(f64::INFINITY, f64::min);
        if auto.median_ns > best * (1.0 + slack) {
            violations.push(format!(
                "{group}: auto median {:.0} ns exceeds best concrete stepper \
                 {:.0} ns by {:.1}% (allowed {:.0}%)",
                auto.median_ns,
                best,
                (auto.median_ns / best - 1.0) * 100.0,
                slack * 100.0
            ));
        }
    }
    violations
}

/// Checks the hybrid-showcase contract on a fresh `ssa_methods` run: in
/// every `multiscale_switch` scenario group, the `hybrid` column's median
/// must be the best (lowest) of all concrete steppers — the whole point of
/// the multiscale scenario is that fast/slow partitioning beats every pure
/// method there.
///
/// Groups without a `hybrid` column (other suites, pre-hybrid baselines)
/// are skipped; the `auto` column is excluded from the comparison since on
/// this scenario it *is* hybrid. Returns one message per violated scenario,
/// empty when the contract holds.
pub fn hybrid_showcase_violations(fresh: &Baseline) -> Vec<String> {
    let mut groups: BTreeMap<&str, Vec<&BenchmarkStats>> = BTreeMap::new();
    for bench in &fresh.benchmarks {
        if let Some((group, _method)) = bench.id.rsplit_once('/') {
            if group.contains("multiscale_switch") {
                groups.entry(group).or_default().push(bench);
            }
        }
    }
    let mut violations = Vec::new();
    for (group, members) in groups {
        let method_of = |b: &BenchmarkStats| {
            b.id.rsplit_once('/')
                .map(|(_, m)| m.to_string())
                .unwrap_or_default()
        };
        let Some(hybrid) = members.iter().find(|b| method_of(b) == "hybrid") else {
            continue;
        };
        for other in &members {
            let method = method_of(other);
            if method == "hybrid" || method == "auto" {
                continue;
            }
            if other.median_ns < hybrid.median_ns {
                violations.push(format!(
                    "{group}: hybrid median {:.0} ns loses to {method} at {:.0} ns \
                     — the multiscale scenario must be a hybrid win",
                    hybrid.median_ns, other.median_ns
                ));
            }
        }
    }
    violations
}

/// Checks the telemetry-overhead contract on a fresh run: wherever a group
/// carries both a `metrics_overhead` and a `simulate_cache_hit` column, the
/// instrumented median must land within `slack` (0.05 = 5%) of the plain
/// cache-hit median — observability is contractually free on the hot path.
///
/// Both rows come from the *same* fresh run on the same machine, so no
/// normalization is needed; groups without the pair (other suites,
/// pre-telemetry baselines) are skipped. Returns one message per violated
/// group, empty when the contract holds.
pub fn telemetry_overhead_violations(fresh: &Baseline, slack: f64) -> Vec<String> {
    let mut groups: BTreeMap<&str, Vec<&BenchmarkStats>> = BTreeMap::new();
    for bench in &fresh.benchmarks {
        if let Some((group, _bench)) = bench.id.rsplit_once('/') {
            groups.entry(group).or_default().push(bench);
        }
    }
    let mut violations = Vec::new();
    for (group, members) in groups {
        let find = |name: &str| {
            members
                .iter()
                .find(|b| b.id.rsplit_once('/').is_some_and(|(_, m)| m == name))
        };
        let (Some(instrumented), Some(plain)) =
            (find("metrics_overhead"), find("simulate_cache_hit"))
        else {
            continue;
        };
        if instrumented.median_ns > plain.median_ns * (1.0 + slack) {
            violations.push(format!(
                "{group}: metrics_overhead median {:.0} ns exceeds simulate_cache_hit \
                 {:.0} ns by {:.1}% (allowed {:.0}%) — telemetry is on the hot path",
                instrumented.median_ns,
                plain.median_ns,
                (instrumented.median_ns / plain.median_ns - 1.0) * 100.0,
                slack * 100.0
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "suite": "ssa_methods",
  "unit": "ns_per_iter",
  "benchmarks": [
    {"id": "ssa_methods/chain_10/direct", "samples": 20, "iters_per_sample": 14, "min": 345609.3, "mean": 359302.2, "median": 358534.1, "max": 385223.5},
    {"id": "ssa_methods/chain_10/next-reaction", "samples": 20, "iters_per_sample": 9, "min": 570921.1, "mean": 585459.3, "median": 587466.6, "max": 598997.8}
  ]
}
"#;

    fn stats(id: &str, median: f64) -> BenchmarkStats {
        BenchmarkStats {
            id: id.to_string(),
            median_ns: median,
            mean_ns: median,
            min_ns: median * 0.9,
            max_ns: median * 1.1,
        }
    }

    fn baseline_of(entries: &[(&str, f64)]) -> Baseline {
        Baseline {
            suite: "unit".to_string(),
            benchmarks: entries.iter().map(|&(id, m)| stats(id, m)).collect(),
        }
    }

    #[test]
    fn parses_the_committed_format() {
        let baseline = parse_baseline(SAMPLE).expect("parse");
        assert_eq!(baseline.suite, "ssa_methods");
        assert_eq!(baseline.benchmarks.len(), 2);
        assert_eq!(baseline.benchmarks[0].id, "ssa_methods/chain_10/direct");
        assert_eq!(baseline.benchmarks[0].median_ns, 358534.1);
        assert_eq!(baseline.benchmarks[1].max_ns, 598997.8);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_baseline("").is_err());
        assert!(parse_baseline("{\"suite\": 3}").is_err());
        assert!(parse_baseline("{\"suite\": \"x\"}").is_err());
        assert!(parse_baseline("[1, 2").is_err());
        assert!(parse_baseline("{\"suite\": \"x\", \"benchmarks\": [{}]}").is_err());
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let base = baseline_of(&[("a", 100.0), ("b", 2000.0)]);
        let comparison = Comparison::between(&base, &base, false);
        assert!(comparison.passes(0.25, 0.0));
        assert!(comparison.regressions(0.0, 0.0).is_empty());
        assert_eq!(comparison.scale, 1.0);
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        let base = baseline_of(&[("a", 100.0), ("b", 2000.0)]);
        // `b` regresses by 30% — past the 25% gate.
        let fresh = baseline_of(&[("a", 100.0), ("b", 2600.0)]);
        let comparison = Comparison::between(&base, &fresh, false);
        assert!(!comparison.passes(0.25, 0.0));
        let regressions = comparison.regressions(0.25, 0.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].id, "b");
        assert!((regressions[0].ratio - 1.3).abs() < 1e-12);
        // A 20% regression stays under the default gate.
        let mild = baseline_of(&[("a", 100.0), ("b", 2400.0)]);
        assert!(Comparison::between(&base, &mild, false).passes(0.25, 0.0));
    }

    #[test]
    fn missing_benchmarks_fail_and_new_ones_do_not() {
        let base = baseline_of(&[("a", 100.0), ("b", 2000.0)]);
        let fresh = baseline_of(&[("a", 100.0), ("c", 50.0)]);
        let comparison = Comparison::between(&base, &fresh, false);
        assert_eq!(comparison.missing, vec!["b".to_string()]);
        assert_eq!(comparison.new_ids, vec!["c".to_string()]);
        assert!(
            !comparison.passes(0.25, 0.0),
            "a vanished benchmark must fail"
        );
    }

    #[test]
    fn floor_ungates_micro_benchmarks_only() {
        let base = baseline_of(&[("micro", 20_000.0), ("hot", 2_000_000.0)]);
        // The micro-benchmark jitters 60%; the hot path is stable.
        let jittery = baseline_of(&[("micro", 32_000.0), ("hot", 2_000_000.0)]);
        assert!(!Comparison::between(&base, &jittery, false).passes(0.25, 0.0));
        assert!(Comparison::between(&base, &jittery, false).passes(0.25, 50_000.0));
        // The floor must not mask a hot-path regression.
        let regressed = baseline_of(&[("micro", 20_000.0), ("hot", 3_000_000.0)]);
        let comparison = Comparison::between(&base, &regressed, false);
        assert!(!comparison.passes(0.25, 50_000.0));
        assert_eq!(comparison.regressions(0.25, 50_000.0)[0].id, "hot");
    }

    #[test]
    fn portfolio_gate_bounds_auto_against_the_best_concrete_stepper() {
        // `auto` within 10% of the best concrete column: passes.
        let fresh = baseline_of(&[
            ("ssa_methods/chain_10/direct", 100.0),
            ("ssa_methods/chain_10/next-reaction", 160.0),
            ("ssa_methods/chain_10/auto", 108.0),
            ("ssa_methods/lambda/tau-leaping", 80.0),
            ("ssa_methods/lambda/direct", 300.0),
            ("ssa_methods/lambda/auto", 85.0),
        ]);
        assert!(portfolio_violations(&fresh, 0.10).is_empty());
        // `auto` resolved to the wrong stepper in one scenario: that
        // scenario (and only that one) is reported.
        let wrong = baseline_of(&[
            ("ssa_methods/chain_10/direct", 100.0),
            ("ssa_methods/chain_10/auto", 105.0),
            ("ssa_methods/lambda/tau-leaping", 80.0),
            ("ssa_methods/lambda/direct", 300.0),
            ("ssa_methods/lambda/auto", 295.0),
        ]);
        let violations = portfolio_violations(&wrong, 0.10);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].starts_with("ssa_methods/lambda:"));
        // Groups without an `auto` column are not the portfolio's problem.
        let concrete_only = baseline_of(&[
            ("ensemble_scaling/chain/threads_1", 100.0),
            ("ensemble_scaling/chain/threads_8", 20.0),
        ]);
        assert!(portfolio_violations(&concrete_only, 0.10).is_empty());
    }

    #[test]
    fn hybrid_showcase_gate_requires_hybrid_to_win_multiscale() {
        // Hybrid best in its scenario: passes; other scenarios are not
        // the showcase's problem even when hybrid loses there.
        let fresh = baseline_of(&[
            ("ssa_methods/multiscale_switch/direct", 5_000_000.0),
            ("ssa_methods/multiscale_switch/tau-leaping", 9_000_000.0),
            ("ssa_methods/multiscale_switch/hybrid", 50_000.0),
            ("ssa_methods/multiscale_switch/auto", 51_000.0),
            ("ssa_methods/chain_10/direct", 100.0),
            ("ssa_methods/chain_10/hybrid", 400.0),
        ]);
        assert!(hybrid_showcase_violations(&fresh).is_empty());
        // A pure stepper beating hybrid on the multiscale scenario fails.
        let beaten = baseline_of(&[
            ("ssa_methods/multiscale_switch/direct", 40_000.0),
            ("ssa_methods/multiscale_switch/hybrid", 50_000.0),
        ]);
        let violations = hybrid_showcase_violations(&beaten);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("loses to direct"));
        // Pre-hybrid baselines (no hybrid column) are skipped.
        let legacy = baseline_of(&[("ssa_methods/multiscale_switch/direct", 100.0)]);
        assert!(hybrid_showcase_violations(&legacy).is_empty());
    }

    #[test]
    fn telemetry_gate_bounds_instrumented_against_plain_cache_hit() {
        // Within 5%: passes.
        let fresh = baseline_of(&[
            ("service_throughput/simulate_cache_hit", 75_000.0),
            ("service_throughput/metrics_overhead", 77_000.0),
            ("service_throughput/simulate_cold", 280_000.0),
        ]);
        assert!(telemetry_overhead_violations(&fresh, 0.05).is_empty());
        // 10% over: the one group is reported.
        let slow = baseline_of(&[
            ("service_throughput/simulate_cache_hit", 75_000.0),
            ("service_throughput/metrics_overhead", 82_500.0),
        ]);
        let violations = telemetry_overhead_violations(&slow, 0.05);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].starts_with("service_throughput:"));
        // Suites without the pair are not the telemetry gate's problem.
        let other = baseline_of(&[
            ("ssa_methods/chain_10/direct", 100.0),
            ("service_throughput/healthz", 60_000.0),
        ]);
        assert!(telemetry_overhead_violations(&other, 0.05).is_empty());
    }

    #[test]
    fn normalization_factors_out_machine_speed() {
        let base = baseline_of(&[("a", 100.0), ("b", 2000.0), ("c", 350.0)]);
        // Uniformly 2x slower machine: raw mode fails, normalized passes.
        let slower = baseline_of(&[("a", 200.0), ("b", 4000.0), ("c", 700.0)]);
        assert!(!Comparison::between(&base, &slower, false).passes(0.25, 0.0));
        let normalized = Comparison::between(&base, &slower, true);
        assert!((normalized.scale - 2.0).abs() < 1e-12);
        assert!(normalized.passes(0.25, 0.0));
        // But a *relative* regression still fails under normalization:
        // machine is 2x slower AND `b` regressed another 40% on top.
        let regressed = baseline_of(&[("a", 200.0), ("b", 5600.0), ("c", 700.0)]);
        let comparison = Comparison::between(&base, &regressed, true);
        assert!(!comparison.passes(0.25, 0.0));
        assert_eq!(comparison.regressions(0.25, 0.0)[0].id, "b");
    }
}
