//! Benchmarks of the deterministic function modules: evaluation cost of the
//! linear, exponentiation, logarithm and power modules at representative
//! inputs, plus the cost sensitivity to the band separation (an ablation on
//! the accuracy/cost trade-off called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synthesis::modules::{
    exponentiation::exponentiation, linear::linear, logarithm::logarithm, power::power,
};

fn bench_module_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("deterministic_modules/evaluate");

    let lin = linear(6, 1, "x", "y", 100.0).expect("linear");
    group.bench_function("linear_x60", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            lin.evaluate(&[("x", 60)], seed).expect("evaluation")
        });
    });

    let exp = exponentiation("x", "y", 100.0).expect("exponentiation");
    group.bench_function("exponentiation_x5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            exp.evaluate(&[("x", 5)], seed).expect("evaluation")
        });
    });

    let log = logarithm("x", "y", 100.0).expect("logarithm");
    group.bench_function("logarithm_x64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            log.evaluate(&[("x", 64)], seed).expect("evaluation")
        });
    });

    let pow = power("x", "p", "y", 25.0).expect("power");
    group.bench_function("power_3_pow_2", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            pow.evaluate(&[("x", 3), ("p", 2)], seed)
                .expect("evaluation")
        });
    });

    group.finish();
}

fn bench_separation_ablation(c: &mut Criterion) {
    // Cost of the logarithm module as the band separation grows: larger
    // separation means more intermediate events per useful step.
    let mut group = c.benchmark_group("deterministic_modules/log_separation");
    for &separation in &[10.0, 50.0, 200.0] {
        let module = logarithm("x", "y", separation).expect("logarithm");
        group.bench_with_input(
            BenchmarkId::from_parameter(separation as u64),
            &separation,
            |b, _| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    module.evaluate(&[("x", 64)], seed).expect("evaluation")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_module_evaluation, bench_separation_ablation);
criterion_main!(benches);
