//! Exact-CME scaling benchmark: state-space size vs. solve time.
//!
//! Sweeps a truncated immigration–death process through growing retained
//! windows and times the three phases separately — reachable-state
//! enumeration, sparse generator assembly, and the uniformization transient
//! solve — plus the first-passage outcome analysis of a scaled
//! winner-take-all module. The numbers answer the practical question behind
//! the "Exact verification" README section: how large a system can the CME
//! oracle afford, and where does the time go as the window grows.

use cme::{Checker, FirstPassage, GeneratorMatrix, PopulationBounds, StateSpace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crn::Crn;
use synthesis::StochasticModule;

/// Immigration–death `∅ -> a`, `a -> ∅` with stationary mean 64, truncated
/// at `cap`: a 1-D chain of `cap + 1` states.
fn birth_death() -> (Crn, crn::State) {
    let crn: Crn = "0 -> a @ 128\na -> 0 @ 2".parse().expect("network");
    let initial = crn.state_from_counts([("a", 64)]).expect("state");
    (crn, initial)
}

fn bench_transient_scaling(c: &mut Criterion) {
    for &cap in &[128u64, 256, 512, 1024] {
        let (crn, initial) = birth_death();
        let bounds = PopulationBounds::truncating(cap);
        let mut group = c.benchmark_group(format!("cme_transient/states_{}", cap + 1));
        group.bench_function(BenchmarkId::from_parameter("enumerate"), |b| {
            b.iter(|| StateSpace::enumerate(&crn, &initial, &bounds).expect("state space"));
        });
        let space = StateSpace::enumerate(&crn, &initial, &bounds).expect("state space");
        group.bench_function(BenchmarkId::from_parameter("generator"), |b| {
            b.iter(|| GeneratorMatrix::from_space(&space));
        });
        group.bench_function(BenchmarkId::from_parameter("solve_t1"), |b| {
            b.iter(|| space.transient(1.0, 1e-10).expect("transient"));
        });
        group.finish();
    }
}

/// Reversible dimerisation over a 1001-state chain: second-order
/// propensities and a stiffer uniformization rate.
fn bench_dimerisation(c: &mut Criterion) {
    let crn: Crn = "2 a -> b @ 0.0002\nb -> 2 a @ 1".parse().expect("network");
    let initial = crn.state_from_counts([("a", 2000)]).expect("state");
    let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(2000))
        .expect("state space");
    let mut group = c.benchmark_group("cme_transient/dimerisation_1001");
    group.bench_function(BenchmarkId::from_parameter("solve_t4"), |b| {
        b.iter(|| space.transient(4.0, 1e-10).expect("transient"));
    });
    group.finish();
}

/// First-passage outcome analysis of the paper's Example 1, scaled down:
/// enumeration + SCC condensation + exact elimination over ~20k states.
fn bench_first_passage(c: &mut Criterion) {
    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(1000.0)
        .input_total(10)
        .food(2)
        .decision_threshold(2)
        .build()
        .expect("module");
    let initial = module
        .initial_state_from_counts(&[3, 4, 3])
        .expect("initial state");
    let bounds = module.exact_bounds(&[3, 4, 3]);
    let mut group = c.benchmark_group("cme_transient/first_passage_module");
    group.bench_function(BenchmarkId::from_parameter("exact_outcomes"), |b| {
        b.iter(|| {
            FirstPassage::new(module.crn())
                .outcome_species_at_least("T1", "o1", 2)
                .expect("outcome")
                .outcome_species_at_least("T2", "o2", 2)
                .expect("outcome")
                .outcome_species_at_least("T3", "o3", 2)
                .expect("outcome")
                .solve(&initial, &bounds)
                .expect("first passage")
        });
    });
    group.finish();
}

/// The `POST /check` sweep workload in miniature: a four-point robustness
/// landscape of race verdicts, each grid point an independent
/// enumerate + embedded-chain solve of a ten-token biased-coin tournament.
/// Prices what one cached grid point of a model-checking sweep costs the
/// service before any fabric dispatch.
fn bench_check_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("cme_transient/check_sweep");
    group.bench_function(BenchmarkId::from_parameter("race_landscape_4pt"), |b| {
        b.iter(|| {
            cme::sweep::landscape(&[1.0, 2.0, 4.0, 8.0], |k| {
                let crn: Crn = format!("x -> h @ {k}\nx -> t @ 1")
                    .parse()
                    .expect("network");
                let initial = crn.state_from_counts([("x", 10)]).expect("state");
                let checker = Checker::new(&crn, initial, PopulationBounds::strict(10));
                checker
                    .reach_before_species(("h", 6), ("t", 6))
                    .map(|race| race.target)
            })
            .expect("landscape")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_transient_scaling,
    bench_dimerisation,
    bench_first_passage,
    bench_check_sweep
);
criterion_main!(benches);
