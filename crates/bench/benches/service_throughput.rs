//! Service-layer throughput: HTTP round trips against an in-process server.
//!
//! Three paths, from cheapest to dearest:
//!
//! * `healthz` — pure transport + routing cost (connect, parse, dispatch,
//!   respond);
//! * `simulate_cache_hit` — a result served from the deterministic cache:
//!   transport plus one key canonicalisation and an LRU lookup, no
//!   simulation;
//! * `simulate_cold` — a full job through the work-stealing scheduler
//!   (unique seed per iteration, so the cache never helps): submit,
//!   fan-out, merge, render, cache-insert, respond.
//!
//! The gap between `cache_hit` and `cold` is the argument for the cache;
//! the regression gate (`bench_compare`, CI's bench-smoke job) watches all
//! three against `BENCH_service_throughput.json`.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use service::{serve, Client, ServiceConfig, ServiceHandle};

fn simulate_request(seed: u64) -> String {
    format!(
        "{{\"network\":\"x -> h @ 3\\nx -> t @ 1\",\"initial\":{{\"x\":1}},\
         \"trials\":500,\"seed\":{seed},\"wait\":true,\
         \"classifier\":[\
         {{\"species\":\"h\",\"at_least\":1,\"outcome\":\"heads\"}},\
         {{\"species\":\"t\",\"at_least\":1,\"outcome\":\"tails\"}}]}}"
    )
}

fn start_service() -> (ServiceHandle, Client) {
    let handle = serve(ServiceConfig {
        // Big enough that the cold benchmark's unique-seed bodies are
        // inserted without evicting the warmed hit entry.
        cache_capacity: 1 << 14,
        queue_capacity: 1024,
        ..ServiceConfig::default()
    })
    .expect("bind in-process service");
    let client = Client::new(handle.addr()).expect("client");
    (handle, client)
}

fn bench_service(c: &mut Criterion) {
    let (handle, client) = start_service();
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(20);

    group.bench_function("healthz", |b| {
        b.iter(|| {
            let reply = client.get("/healthz").expect("healthz");
            assert_eq!(reply.status, 200);
        })
    });

    // Warm one seeded request, then measure pure cache-hit serving.
    let warmed = simulate_request(424242);
    let fresh = client.post("/simulate", &warmed).expect("warm the cache");
    assert_eq!(fresh.status, 200, "{}", fresh.body);
    group.bench_function("simulate_cache_hit", |b| {
        b.iter(|| {
            let reply = client.post("/simulate", &warmed).expect("cached simulate");
            assert_eq!(reply.header("cache"), Some("hit"), "{}", reply.body);
        })
    });

    // Unique seed per iteration: every request is a full scheduler round
    // trip (500-trial ensemble, chunked fan-out, deterministic merge).
    let next_seed = AtomicU64::new(1);
    group.bench_function("simulate_cold", |b| {
        b.iter(|| {
            let seed = next_seed.fetch_add(1, Ordering::Relaxed);
            let reply = client
                .post("/simulate", &simulate_request(seed))
                .expect("cold simulate");
            assert_eq!(reply.header("cache"), Some("miss"), "{}", reply.body);
        })
    });
    group.finish();

    handle.shutdown(std::time::Duration::from_secs(5));
    handle.join();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
