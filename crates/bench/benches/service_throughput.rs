//! Service-layer throughput: HTTP round trips against an in-process server.
//!
//! Five paths, from cheapest to dearest:
//!
//! * `healthz` — pure transport + routing cost (connect, parse, dispatch,
//!   respond);
//! * `simulate_cache_hit` — a result served from the deterministic cache:
//!   transport plus one key canonicalisation and an LRU lookup, no
//!   simulation;
//! * `simulate_cold` — a full job through the work-stealing scheduler
//!   (unique seed per iteration, so the cache never helps): submit,
//!   fan-out, merge, render, cache-insert, respond.
//! * `simulate_sharded` — the same cold job through a two-worker fabric:
//!   the coordinator plans shards, dispatches each over HTTP to a worker
//!   daemon, parses the partial wire documents and merges them — the
//!   full distributed hop, on loopback.
//! * `metrics_overhead` — the cache-hit round trip again, but with
//!   debug-level structured JSON logging enabled (into a null writer) on
//!   top of the always-on histograms and trace recording: the measured
//!   price of the telemetry subsystem on the hottest path.
//!
//! The gap between `cache_hit` and `cold` is the argument for the cache,
//! and `sharded` minus `cold` prices the fabric's per-shard HTTP hop; the
//! regression gate (`bench_compare`, CI's bench-smoke job) watches every
//! row against `BENCH_service_throughput.json` and additionally holds
//! `metrics_overhead` within 5% of `simulate_cache_hit` in the fresh run.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use service::{serve, Client, FabricConfig, ServiceConfig, ServiceHandle};

fn simulate_request(seed: u64) -> String {
    format!(
        "{{\"network\":\"x -> h @ 3\\nx -> t @ 1\",\"initial\":{{\"x\":1}},\
         \"trials\":500,\"seed\":{seed},\"wait\":true,\
         \"classifier\":[\
         {{\"species\":\"h\",\"at_least\":1,\"outcome\":\"heads\"}},\
         {{\"species\":\"t\",\"at_least\":1,\"outcome\":\"tails\"}}]}}"
    )
}

fn start_service() -> (ServiceHandle, Client) {
    let handle = serve(ServiceConfig {
        // Big enough that the cold benchmark's unique-seed bodies are
        // inserted without evicting the warmed hit entry.
        cache_capacity: 1 << 14,
        queue_capacity: 1024,
        ..ServiceConfig::default()
    })
    .expect("bind in-process service");
    let client = Client::new(handle.addr()).expect("client");
    (handle, client)
}

fn bench_service(c: &mut Criterion) {
    let (handle, client) = start_service();
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(20);

    group.bench_function("healthz", |b| {
        b.iter(|| {
            let reply = client.get("/healthz").expect("healthz");
            assert_eq!(reply.status, 200);
        })
    });

    // Warm one seeded request, then measure pure cache-hit serving.
    let warmed = simulate_request(424242);
    let fresh = client.post("/simulate", &warmed).expect("warm the cache");
    assert_eq!(fresh.status, 200, "{}", fresh.body);
    group.bench_function("simulate_cache_hit", |b| {
        b.iter(|| {
            let reply = client.post("/simulate", &warmed).expect("cached simulate");
            assert_eq!(reply.header("cache"), Some("hit"), "{}", reply.body);
        })
    });

    // The same cache-hit round trip with the full telemetry surface on:
    // debug-level structured JSON logging (into a null writer, so the
    // serialisation cost is measured but no I/O lands anywhere) on top of
    // the always-on histograms and trace ring. `bench_compare` holds this
    // within 5% of `simulate_cache_hit` — telemetry must stay off the
    // hot path's back.
    obs::logger().set_writer(Box::new(std::io::sink()));
    obs::logger().set_json(true);
    obs::logger()
        .set_level_spec("debug")
        .expect("valid level spec");
    group.bench_function("metrics_overhead", |b| {
        b.iter(|| {
            let reply = client.post("/simulate", &warmed).expect("cached simulate");
            assert_eq!(reply.header("cache"), Some("hit"), "{}", reply.body);
        })
    });
    // Back to silence so the cold and sharded rows measure the default
    // configuration.
    obs::logger()
        .set_level_spec("off")
        .expect("valid level spec");
    obs::logger().set_json(false);

    // Unique seed per iteration: every request is a full scheduler round
    // trip (500-trial ensemble, chunked fan-out, deterministic merge).
    let next_seed = AtomicU64::new(1);
    group.bench_function("simulate_cold", |b| {
        b.iter(|| {
            let seed = next_seed.fetch_add(1, Ordering::Relaxed);
            let reply = client
                .post("/simulate", &simulate_request(seed))
                .expect("cold simulate");
            assert_eq!(reply.header("cache"), Some("miss"), "{}", reply.body);
        })
    });
    // The same cold job sharded across a two-worker loopback fabric:
    // plan → HTTP dispatch → partial parse → exact merge, per iteration.
    let workers: Vec<ServiceHandle> = (0..2)
        .map(|_| serve(ServiceConfig::default()).expect("bind worker"))
        .collect();
    let coordinator = serve(ServiceConfig {
        cache_capacity: 1 << 14,
        queue_capacity: 1024,
        fabric: Some(FabricConfig {
            workers: workers.iter().map(|w| w.addr().to_string()).collect(),
            shard_trials: 125, // 500-trial job → 4 shards
            ..FabricConfig::default()
        }),
        ..ServiceConfig::default()
    })
    .expect("bind coordinator");
    let fabric_client = Client::new(coordinator.addr()).expect("client");
    let next_sharded_seed = AtomicU64::new(1_000_000_001);
    group.bench_function("simulate_sharded", |b| {
        b.iter(|| {
            let seed = next_sharded_seed.fetch_add(1, Ordering::Relaxed);
            let reply = fabric_client
                .post("/simulate", &simulate_request(seed))
                .expect("sharded simulate");
            assert_eq!(reply.header("cache"), Some("miss"), "{}", reply.body);
        })
    });
    group.finish();

    coordinator.shutdown(std::time::Duration::from_secs(5));
    coordinator.join();
    for worker in workers {
        worker.shutdown(std::time::Duration::from_secs(5));
        worker.join();
    }
    handle.shutdown(std::time::Duration::from_secs(5));
    handle.join();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
