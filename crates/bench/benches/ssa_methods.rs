//! Ablation benchmark: Gillespie direct vs first-reaction vs Gibson–Bruck
//! next-reaction vs tau-leaping, on networks of increasing size. The
//! next-reaction method is expected to win among the exact methods once the
//! number of reactions is large relative to the dependency-graph
//! out-degree; tau-leaping additionally collapses runs of events into
//! single leaps wherever populations allow it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crn::{Crn, CrnBuilder};
use gillespie::{Simulation, SimulationOptions, SsaMethod, StopCondition};

/// Builds a linear chain of isomerisations `s0 -> s1 -> … -> sN` plus the
/// reverse reactions: 2N reactions whose dependency graph has out-degree ≤ 4.
fn chain_network(length: usize) -> Crn {
    let mut b = CrnBuilder::new();
    let species: Vec<_> = (0..=length).map(|i| b.species(format!("s{i}"))).collect();
    for i in 0..length {
        b.reaction()
            .reactant(species[i], 1)
            .product(species[i + 1], 1)
            .rate(1.0)
            .add()
            .expect("forward reaction");
        b.reaction()
            .reactant(species[i + 1], 1)
            .product(species[i], 1)
            .rate(0.5)
            .add()
            .expect("backward reaction");
    }
    b.build().expect("chain network")
}

fn bench_methods(c: &mut Criterion) {
    for &length in &[10usize, 50, 200] {
        let crn = chain_network(length);
        let initial = crn.state_from_counts([("s0", 200)]).expect("initial state");
        let mut group = c.benchmark_group(format!("ssa_methods/chain_{length}"));
        for method in SsaMethod::ALL {
            group.bench_with_input(
                BenchmarkId::from_parameter(method.name()),
                &method,
                |b, &method| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        Simulation::new(&crn, method.stepper())
                            .options(
                                SimulationOptions::new()
                                    .seed(seed)
                                    .stop(StopCondition::events(5_000)),
                            )
                            .run(&initial)
                            .expect("trajectory")
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
