//! Ablation benchmark: Gillespie direct vs first-reaction vs Gibson–Bruck
//! next-reaction vs composition–rejection vs tau-leaping, on networks of
//! increasing size and varying shape (all built by `crn::generators`).
//!
//! The scaling story this sweep documents:
//!
//! * the direct method's per-event `O(R)` CDF scan degrades linearly with
//!   the reaction count (`chain_10` → `chain_1000`),
//! * the first-reaction method degrades even faster (`O(R)` exponential
//!   draws per event),
//! * next-reaction (`O(log R)`) and composition–rejection (`O(1)`
//!   expected) stay near-flat — composition–rejection is the one whose
//!   selection cost is independent of both the reaction count *and* the
//!   dependency structure,
//! * tau-leaping is orthogonal: it wins by firing many events per step
//!   when populations allow it, not by selecting faster,
//! * the hybrid multiscale stepper only pays off when the network really
//!   has two timescales — the `multiscale_switch` scenario (rare promoter
//!   flips over high-copy enzymatic turnover, fixed time horizon) is its
//!   showcase, and `bench_compare` gates that hybrid posts the best
//!   concrete median there.
//!
//! `bench_compare` (this crate's comparator binary) gates CI on the
//! committed `BENCH_ssa_methods.json` baseline, so regressions on any of
//! these ids fail the PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crn::generators::{
    dimerisation_grid, gene_regulatory_tree, lambda_switch_ensemble, linear_cascade,
    multiscale_switch, reversible_chain, GeneratedSystem,
};
use gillespie::{Simulation, SimulationOptions, SsaMethod, StopCondition};

/// Runs every stepper on `system` until `stop` is met.
///
/// Event-count stops keep the *work* fixed across methods whose cost is
/// per-event (the selection-scaling scenarios). Scenarios whose point is
/// that some steppers advance *time* faster per unit work (tau-leaping,
/// hybrid) must use a time-based stop instead — an event budget would let
/// a leaping method batch thousands of firings into one step and make the
/// comparison meaningless.
fn bench_system(c: &mut Criterion, name: &str, system: &GeneratedSystem, stop: &StopCondition) {
    let mut group = c.benchmark_group(format!("ssa_methods/{name}"));
    // Every concrete method, plus the adaptive portfolio resolved once up
    // front (classification amortises over an ensemble, so the steady-state
    // cost of `auto` is the cost of whatever it resolved to —
    // `bench_compare` gates that it lands within 10% of the per-scenario
    // best concrete stepper). The `auto` row is measured *before* the
    // tau-leaping row: tau's long sustained iterations (tens of ms each on
    // the large scenarios) shift the CPU's frequency state, which would
    // bias an identical-workload row sampled right after it.
    let auto = SsaMethod::Auto.resolve(&system.crn, &system.initial);
    let mut rows: Vec<(&str, SsaMethod)> =
        SsaMethod::ALL.into_iter().map(|m| (m.name(), m)).collect();
    let tau = rows
        .iter()
        .position(|&(_, m)| m == SsaMethod::TauLeaping)
        .expect("tau-leaping is one of the concrete methods");
    rows.insert(tau, ("auto", auto));
    for (id, method) in rows {
        group.bench_with_input(BenchmarkId::from_parameter(id), &method, |b, &method| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::new(&system.crn, method.stepper())
                    .options(SimulationOptions::new().seed(seed).stop(stop.clone()))
                    .run(&system.initial)
                    .expect("trajectory")
            });
        });
    }
    group.finish();
}

fn bench_methods(c: &mut Criterion) {
    let per_event = StopCondition::events(5_000);
    // Reversible isomerisation chains: the reaction count scales while the
    // dependency out-degree stays ≤ 4 — pure selection-cost scaling.
    for &length in &[10usize, 50, 200, 1000] {
        let system = reversible_chain(length, 1.0, 0.5, 200);
        bench_system(c, &format!("chain_{length}"), &system, &per_event);
    }
    // Source-driven irreversible cascade: 2002 channels, most of them idle
    // at any instant — the sparsest large network.
    bench_system(
        c,
        "cascade_2000",
        &linear_cascade(2000, 50.0, 1.0, 2000),
        &per_event,
    );
    // Branched gene-regulatory tree (364 genes, 1454 reactions):
    // propensities spread over many binades as the activation wave runs.
    bench_system(
        c,
        "gene_tree_1454",
        &gene_regulatory_tree(5, 3, 0.2, 0.5, 8.0, 1.0),
        &per_event,
    );
    // Reaction–diffusion style dimerisation grid (16×16 sites, 480
    // second-order bindings plus their 480 first-order unbindings, all
    // active at once).
    bench_system(
        c,
        "dimer_grid_960",
        &dimerisation_grid(16, 16, 0.002, 1.0, 25),
        &per_event,
    );
    // 200 independent lambda switches in one network: block-diagonal
    // dependency graph, the scaled-out population-study shape.
    bench_system(
        c,
        "lambda_switch_1200",
        &lambda_switch_ensemble(200, 1.0, 0.1, 0.001, 30),
        &per_event,
    );
    // 90 two-state promoter modules driving high-copy enzymatic turnover
    // (540 species, 720 reactions): promoter flips at rate 0.5 sit five
    // orders of magnitude below ~2e4/module fast turnover. A fixed time
    // horizon makes this the honest hybrid showcase — exact methods pay
    // per firing, tau-leaping leaps, and the hybrid stepper integrates the
    // fast partition as an ODE between slow events.
    bench_system(
        c,
        "multiscale_switch_720",
        &multiscale_switch(90, 0.5, 20_000.0, 2_000, 600),
        &StopCondition::time(0.002),
    );
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
