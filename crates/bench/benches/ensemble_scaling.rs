//! Ablation benchmark: thread-scaling of the Monte-Carlo ensemble runner.
//! Every figure of the paper is an ensemble estimate, so the wall-clock cost
//! of a full reproduction is dominated by how well trials parallelise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gillespie::{
    Ensemble, EnsembleOptions, SimulationOptions, SpeciesThresholdClassifier, StepperKind,
    StopCondition,
};
use synthesis::{StochasticModule, TargetDistribution};

fn bench_thread_scaling(c: &mut Criterion) {
    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(1_000.0)
        .build()
        .expect("module");
    let dist = TargetDistribution::new(vec![0.3, 0.4, 0.3]).expect("distribution");
    let initial = module.initial_state(&dist).expect("state");

    let mut group = c.benchmark_group("ensemble_scaling/threads");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    Ensemble::new(
                        module.crn(),
                        initial.clone(),
                        module.classifier().expect("classifier"),
                    )
                    .options(
                        EnsembleOptions::new()
                            .trials(200)
                            .master_seed(1)
                            .threads(threads)
                            .simulation(module.simulation_options()),
                    )
                    .run()
                    .expect("ensemble")
                });
            },
        );
    }
    group.finish();
}

fn bench_ssa_method_in_ensemble(c: &mut Criterion) {
    // The same ensemble executed with each SSA variant: the per-event cost
    // differences measured in `ssa_methods` should carry over.
    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(1_000.0)
        .build()
        .expect("module");
    let dist = TargetDistribution::new(vec![0.3, 0.4, 0.3]).expect("distribution");
    let initial = module.initial_state(&dist).expect("state");

    let mut group = c.benchmark_group("ensemble_scaling/method");
    group.sample_size(10);
    for method in gillespie::SsaMethod::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                b.iter(|| {
                    Ensemble::new(
                        module.crn(),
                        initial.clone(),
                        module.classifier().expect("classifier"),
                    )
                    .options(
                        EnsembleOptions::new()
                            .trials(200)
                            .master_seed(1)
                            .method(method)
                            .simulation(module.simulation_options()),
                    )
                    .run()
                    .expect("ensemble")
                });
            },
        );
    }
    group.finish();
}

fn bench_tau_vs_direct_high_population(c: &mut Criterion) {
    // A stiff, high-population workload: a fast reversible isomerisation
    // pair (the stiffness — it dominates the exact event count without
    // moving the slow observable) feeding a slow reversible dimerisation.
    // This is tau-leaping's home turf: the exact methods must simulate
    // every one of the ~100k fast hops per trial individually, while
    // tau-leaping covers them in a handful of Poisson leaps per trial.
    let crn: crn::Crn = "a -> b @ 50\n\
                         b -> a @ 50\n\
                         2 b -> c @ 0.00001\n\
                         c -> 2 b @ 0.01"
        .parse()
        .expect("network");
    let initial = crn
        .state_from_counts([("a", 5_000), ("b", 5_000)])
        .expect("state");
    let classifier = SpeciesThresholdClassifier::new()
        .rule_named(&crn, "c", 1, "dimerised")
        .expect("rule");

    let mut group = c.benchmark_group("ensemble_scaling/tau_highpop");
    group.sample_size(10);
    for method in [StepperKind::Direct, StepperKind::TauLeaping] {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                b.iter(|| {
                    Ensemble::new(&crn, initial.clone(), classifier.clone())
                        .options(
                            EnsembleOptions::new()
                                .trials(20)
                                .master_seed(1)
                                .method(method)
                                .simulation(
                                    SimulationOptions::new().stop(StopCondition::time(0.2)),
                                ),
                        )
                        .run()
                        .expect("ensemble")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_thread_scaling,
    bench_ssa_method_in_ensemble,
    bench_tau_vs_direct_high_population
);
criterion_main!(benches);
