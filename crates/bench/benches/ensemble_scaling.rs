//! Ablation benchmark: thread-scaling of the Monte-Carlo ensemble runner.
//! Every figure of the paper is an ensemble estimate, so the wall-clock cost
//! of a full reproduction is dominated by how well trials parallelise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gillespie::{Ensemble, EnsembleOptions};
use synthesis::{StochasticModule, TargetDistribution};

fn bench_thread_scaling(c: &mut Criterion) {
    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(1_000.0)
        .build()
        .expect("module");
    let dist = TargetDistribution::new(vec![0.3, 0.4, 0.3]).expect("distribution");
    let initial = module.initial_state(&dist).expect("state");

    let mut group = c.benchmark_group("ensemble_scaling/threads");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    Ensemble::new(
                        module.crn(),
                        initial.clone(),
                        module.classifier().expect("classifier"),
                    )
                    .options(
                        EnsembleOptions::new()
                            .trials(200)
                            .master_seed(1)
                            .threads(threads)
                            .simulation(module.simulation_options()),
                    )
                    .run()
                    .expect("ensemble")
                });
            },
        );
    }
    group.finish();
}

fn bench_ssa_method_in_ensemble(c: &mut Criterion) {
    // The same ensemble executed with each SSA variant: the per-event cost
    // differences measured in `ssa_methods` should carry over.
    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(1_000.0)
        .build()
        .expect("module");
    let dist = TargetDistribution::new(vec![0.3, 0.4, 0.3]).expect("distribution");
    let initial = module.initial_state(&dist).expect("state");

    let mut group = c.benchmark_group("ensemble_scaling/method");
    group.sample_size(10);
    for method in gillespie::SsaMethod::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                b.iter(|| {
                    Ensemble::new(
                        module.crn(),
                        initial.clone(),
                        module.classifier().expect("classifier"),
                    )
                    .options(
                        EnsembleOptions::new()
                            .trials(200)
                            .master_seed(1)
                            .method(method)
                            .simulation(module.simulation_options()),
                    )
                    .run()
                    .expect("ensemble")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_ssa_method_in_ensemble);
criterion_main!(benches);
