//! Benchmarks of the stochastic (winner-take-all) module: single-trajectory
//! decision cost as a function of the rate separation γ and the number of
//! outcomes. This is the ablation study for the module's central design
//! parameter (experiment E1 measures its *accuracy*; this bench measures its
//! *cost*).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gillespie::{DirectMethod, Simulation};
use synthesis::{StochasticModule, TargetDistribution};

fn bench_gamma_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("stochastic_module/gamma");
    for &gamma in &[10.0, 100.0, 1_000.0, 10_000.0] {
        let module = StochasticModule::builder()
            .outcomes(["T1", "T2", "T3"])
            .gamma(gamma)
            .build()
            .expect("module");
        let dist = TargetDistribution::new(vec![0.3, 0.4, 0.3]).expect("distribution");
        let initial = module.initial_state(&dist).expect("state");
        group.bench_with_input(BenchmarkId::from_parameter(gamma as u64), &gamma, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::new(module.crn(), DirectMethod::new())
                    .options(module.simulation_options().seed(seed))
                    .run(&initial)
                    .expect("trajectory")
            });
        });
    }
    group.finish();
}

fn bench_outcome_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("stochastic_module/outcomes");
    for &n in &[2usize, 3, 5, 8] {
        let outcomes: Vec<String> = (1..=n).map(|i| format!("T{i}")).collect();
        let module = StochasticModule::builder()
            .outcomes(outcomes)
            .gamma(1_000.0)
            .build()
            .expect("module");
        let dist = TargetDistribution::uniform(n).expect("distribution");
        let initial = module.initial_state(&dist).expect("state");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::new(module.crn(), DirectMethod::new())
                    .options(module.simulation_options().seed(seed))
                    .run(&initial)
                    .expect("trajectory")
            });
        });
    }
    group.finish();
}

fn bench_error_trial(c: &mut Criterion) {
    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(1_000.0)
        .input_total(300)
        .build()
        .expect("module");
    let dist = TargetDistribution::uniform(3).expect("distribution");
    let initial = module.initial_state(&dist).expect("state");
    c.bench_function("stochastic_module/error_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            module.error_trial(&initial, seed).expect("trial")
        });
    });
}

criterion_group!(
    benches,
    bench_gamma_sweep,
    bench_outcome_count,
    bench_error_trial
);
criterion_main!(benches);
