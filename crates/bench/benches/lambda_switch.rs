//! Benchmarks of the lambda-phage case study: per-trajectory cost of the
//! natural surrogate and of the synthesized model at representative MOI
//! values. Together with `fig5_lambda_response` (accuracy) this quantifies
//! the "reduced-order modelling" claim: the synthetic model is far smaller
//! than the natural one, at the price of longer simulated trajectories
//! through its extreme rate separation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gillespie::{DirectMethod, NextReactionMethod, Simulation};
use lambda::{LambdaModel, NaturalLambdaModel, SyntheticLambdaModel};

fn bench_natural_model(c: &mut Criterion) {
    let model = NaturalLambdaModel::new().expect("natural model");
    let mut group = c.benchmark_group("lambda/natural");
    for &moi in &[1u64, 5, 10] {
        let initial = model.initial_state(moi).expect("state");
        group.bench_with_input(BenchmarkId::from_parameter(moi), &moi, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::new(LambdaModel::crn(&model), DirectMethod::new())
                    .options(model.simulation_options().seed(seed))
                    .run(&initial)
                    .expect("trajectory")
            });
        });
    }
    group.finish();
}

fn bench_synthetic_model(c: &mut Criterion) {
    let model = SyntheticLambdaModel::paper().expect("synthetic model");
    let mut group = c.benchmark_group("lambda/synthetic");
    group.sample_size(10);
    for &moi in &[1u64, 5, 10] {
        let initial = model.initial_state(moi).expect("state");
        group.bench_with_input(BenchmarkId::from_parameter(moi), &moi, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::new(LambdaModel::crn(&model), DirectMethod::new())
                    .options(model.simulation_options().seed(seed))
                    .run(&initial)
                    .expect("trajectory")
            });
        });
    }
    group.finish();
}

fn bench_synthetic_model_next_reaction(c: &mut Criterion) {
    // Ablation: does the Gibson–Bruck method pay off on the synthesized
    // network (20 reactions, strongly separated rates)?
    let model = SyntheticLambdaModel::paper().expect("synthetic model");
    let initial = model.initial_state(5).expect("state");
    let mut group = c.benchmark_group("lambda/synthetic_next_reaction");
    group.sample_size(10);
    group.bench_function("moi_5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Simulation::new(LambdaModel::crn(&model), NextReactionMethod::new())
                .options(model.simulation_options().seed(seed))
                .run(&initial)
                .expect("trajectory")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_natural_model,
    bench_synthetic_model,
    bench_synthetic_model_next_reaction
);
criterion_main!(benches);
