//! Exact stochastic simulation of chemical reaction networks.
//!
//! This crate implements the standard exact stochastic simulation algorithms
//! (SSA) over the [`crn`] data model:
//!
//! * [`DirectMethod`] — Gillespie's direct method (Gillespie 1977),
//! * [`FirstReactionMethod`] — Gillespie's first-reaction method,
//! * [`NextReactionMethod`] — the Gibson–Bruck next-reaction method
//!   (Gibson & Bruck 2000) with a dependency graph and an indexed priority
//!   queue,
//! * [`CompositionRejection`] — the composition–rejection method (Slepoy,
//!   Thompson & Plimpton 2008): log₂-binned propensity groups with
//!   rejection sampling inside a group, `O(1)` expected channel selection
//!   independent of the reaction count.
//!
//! All four produce statistically identical trajectories; they differ only
//! in performance characteristics, which the `bench` crate's `ssa_methods`
//! benchmark quantifies.
//!
//! For high-population ensembles there is additionally [`TauLeaping`] —
//! explicit Poisson tau-leaping with Cao–Gillespie adaptive step selection.
//! It is *approximate*: orders of magnitude faster on dense populations,
//! with a controlled `O(ε)` distribution bias pinned against the exact SSA
//! by the chi-square/Kolmogorov–Smirnov conformance harness in
//! `tests/statistical_validation.rs`. [`StepperKind`] selects between all
//! five at run time, and [`StepperKind::Auto`] picks for you: the
//! [`classify`] portfolio classifier measures the network (size, propensity
//! spread, leap occupancy from a deterministic pilot run) and resolves to
//! the empirically best concrete stepper.
//!
//! On top of the single-trajectory simulators, the [`Ensemble`] runner
//! executes Monte-Carlo ensembles across threads and classifies trajectory
//! outcomes, which is how all of the paper's figures are produced.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gillespie::{DirectMethod, Simulation, SimulationOptions, StopCondition};
//!
//! let crn: crn::Crn = "a + b -> 2 c @ 0.01".parse()?;
//! let initial = crn.state_from_counts([("a", 100), ("b", 100)])?;
//! let options = SimulationOptions::new()
//!     .seed(7)
//!     .stop(StopCondition::exhaustion());
//! let result = Simulation::new(&crn, DirectMethod::new())
//!     .options(options)
//!     .run(&initial)?;
//! // Every a/b pair eventually reacts.
//! assert_eq!(result.final_state.count(crn.require_species("c")?), 200);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod auto;
mod composition_rejection;
mod direct;
pub mod engine;
mod ensemble;
mod error;
mod export;
mod first_reaction;
mod hybrid;
mod next_reaction;
mod outcome;
mod profile;
mod propensity;
mod simulator;
mod stats;
mod stop;
mod tau_leap;
mod trajectory;

pub use auto::{classify, ClassifierReport};
pub use composition_rejection::CompositionRejection;
pub use direct::DirectMethod;
pub use engine::ReactionDependencyGraph;
pub use ensemble::{
    Ensemble, EnsembleOptions, EnsemblePartial, EnsemblePartialParts, EnsembleReport, OutcomeCount,
};
pub use error::SimulationError;
pub use first_reaction::FirstReactionMethod;
pub use hybrid::{Hybrid, HybridDiagnostics};
pub use next_reaction::NextReactionMethod;
pub use outcome::{Outcome, OutcomeClassifier, SpeciesThresholdClassifier, ThresholdRule};
pub use profile::SimProfile;
pub use propensity::{propensities, propensity, total_propensity, PropensitySet};
pub use simulator::{
    Simulation, SimulationOptions, SimulationResult, SsaMethod, SsaStepper, StepOutcome,
    StepperKind,
};
pub use stats::{Moments, SpeciesStatistics, TrajectorySummary};
pub use stop::StopCondition;
pub use tau_leap::TauLeaping;
pub use trajectory::{RecordingMode, Trajectory, TrajectoryPoint};
