//! The adaptive solver portfolio behind [`StepperKind::Auto`].
//!
//! No single SSA variant wins everywhere (the `ssa_methods` benchmark in
//! the `bench` crate quantifies the crossovers): the direct method's low
//! constant wins on small networks, the Gibson–Bruck next-reaction method
//! wins once the per-event `O(R)` scan starts to bite *as long as the
//! active working set stays small*, composition–rejection's `O(1)`
//! selection pays off when many channels are concurrently fireable (or at
//! extreme reaction counts), and tau-leaping wins *iff* populations are
//! dense enough that one leap amortises many events. [`classify`] measures exactly those regime
//! features on the concrete `(network, initial state)` pair and picks the
//! empirically best stepper.
//!
//! # Determinism
//!
//! The verdict is a **pure function of the parsed network and initial
//! state**. The one dynamic feature — leap occupancy — comes from a short
//! pilot trajectory driven by a *fixed internal seed* ([`PILOT_SEED`]),
//! never by the caller's ensemble seed, thread count or environment. The
//! property tests in `tests/proptests.rs` pin this purity, and the
//! determinism suite pins that an `Auto` ensemble is bit-identical to one
//! that requests the resolved kind explicitly. That purity is also what
//! lets the `service` crate fold the *resolved* kind into its cache key
//! and still replay cached responses byte-for-byte.

use crn::{Crn, State};
use rand::rngs::StdRng;
use rand::SeedableRng as _;
use serde::Serialize;

use crate::direct::DirectMethod;
use crate::hybrid::partition_masses;
use crate::propensity::propensities;
use crate::simulator::{SsaStepper, StepOutcome, StepperKind};
use crate::tau_leap::TauLeaping;

/// Fixed seed of the classifier's pilot trajectory. Internal by design:
/// feeding the caller's seed in here would make the resolved kind depend on
/// the ensemble configuration instead of the network.
const PILOT_SEED: u64 = 0x5EED_0A07;

/// Total pilot events and the stride between leap-occupancy probes. The
/// pilot exists to see past an unrepresentative initial state (e.g. a
/// source-driven cascade that starts empty), so it is deliberately short —
/// its cost is amortised over a whole ensemble, and probes at 0, 64, 128,
/// 192 and 256 events are enough to see the occupancy settle.
const PILOT_EVENTS: u64 = 256;
const PROBE_STRIDE: u64 = 64;

/// Networks at or below this reaction count go to the direct method: its
/// per-event constant beats every queue/bin structure while the `O(R)` CDF
/// scan is still trivially cheap (the benchmark crossover sits between the
/// `chain_10` and `chain_50` scenarios).
const SMALL_NET_MAX_REACTIONS: usize = 48;

/// Networks at or above this reaction count go to composition–rejection
/// unconditionally: whatever the dependency shape, an `O(log R)` queue
/// eventually loses to `O(1)` selection.
const CR_MIN_REACTIONS: usize = 10_000;

/// Mid-size networks whose pilot trajectory shows at least this many
/// *concurrently fireable* channels go to composition–rejection instead of
/// next-reaction. The next-reaction method's edge lives where the active
/// working set is tiny — most of its heap holds `t = ∞` idle channels and
/// dependent updates barely reshuffle it — but once hundreds of channels
/// are simultaneously active every dependent refresh is a real `O(log R)`
/// sift, while composition–rejection re-bins each dependent in `O(1)`.
/// Measured on the benchmark suite: the reversible chains (next-reaction's
/// wins) probe at 9 active channels, while the gene-regulatory tree, the
/// source-driven cascade and the dimerisation grid (all now
/// composition–rejection wins) probe at 92, 502 and 631.
const CR_MIN_ACTIVE_CHANNELS: usize = 64;

/// Minimum expected reaction firings per tau-leap (minimum over all pilot
/// probes of `τ·a₀`) for tau-leaping to be worth its per-leap overhead.
/// Tuned against the benchmark suite: the lambda-switch ensemble — the one
/// scenario where tau-leaping actually wins — probes at ~365, while the
/// densest scenario where it loses (the dimerisation grid, 37× slower than
/// next-reaction) probes at 120; see the decision table in the README.
const TAU_MIN_OCCUPANCY: f64 = 200.0;

/// Minimum timescale separation (expected slow-event waiting time over the
/// Cao leap bound, minimum across pilot probes) for the hybrid multiscale
/// stepper to be worth its partitioning machinery. At 100+ leaps per slow
/// event the fast partition behaves as a quasi-continuum between slow
/// firings — the regime where hybrid's ODE mean field crushes both exact
/// stepping and pure tau-leaping. Genuinely multiscale: all benchmark
/// scenarios other than `multiscale_switch` measure either no split
/// (`None`) or a ratio below 1.
const HYBRID_MIN_SEPARATION: f64 = 100.0;

/// The features [`classify`] measured and the verdict it reached.
///
/// Returned so callers can surface *why* a kind was chosen — the service
/// exposes this as the `classifier_report` field of `auto` responses.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClassifierReport {
    /// Number of reaction channels in the network.
    pub reactions: usize,
    /// Number of species in the network.
    pub species: usize,
    /// Channels with positive propensity in the initial state.
    pub active_channels: usize,
    /// `log₂(a_max / a_min)` over the positive initial propensities — the
    /// binade spread that sizes composition–rejection's group structure
    /// (0 when fewer than two channels are active).
    pub binade_spread: f64,
    /// Minimum over the pilot probes of `τ·a₀`, the expected number of
    /// reaction firings a single tau-leap would batch. `None` when the
    /// network is exhausted at every probe point (no leap is possible).
    pub leap_occupancy: Option<f64>,
    /// Maximum number of concurrently fireable channels observed across
    /// the pilot probes — the feature that separates next-reaction's
    /// regime (a tiny active working set) from composition–rejection's
    /// (hundreds of simultaneously active channels). `None` for an empty
    /// network (no pilot runs).
    pub pilot_active_channels: Option<usize>,
    /// Minimum over the pilot probes of the expected slow-event waiting
    /// time divided by the Cao leap bound, under the hybrid stepper's
    /// fast/slow partition rule — how many leaps of fast dynamics fit
    /// between consecutive slow events. `None` unless every probe saw a
    /// genuine two-sided partition (both fast and slow mass positive).
    pub timescale_separation: Option<f64>,
    /// The concrete stepper kind the portfolio resolved to.
    pub resolved: StepperKind,
    /// One-line human-readable justification of the verdict.
    pub reason: &'static str,
}

/// Classifies `(crn, initial)` and resolves the portfolio to the concrete
/// [`StepperKind`] expected to be fastest, with the measured features.
///
/// Deterministic: see the [module docs](self) for the purity contract.
/// Prefer [`StepperKind::resolve`] when only the verdict is needed.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let crn: crn::Crn = "a + b -> c @ 0.1\nc -> a + b @ 0.2".parse()?;
/// let initial = crn.state_from_counts([("a", 50), ("b", 40)])?;
/// let report = gillespie::classify(&crn, &initial);
/// // Two reactions: squarely in the direct method's regime.
/// assert_eq!(report.resolved, gillespie::StepperKind::Direct);
/// assert_eq!(report.resolved, gillespie::StepperKind::Auto.resolve(&crn, &initial));
/// # Ok(())
/// # }
/// ```
pub fn classify(crn: &Crn, initial: &State) -> ClassifierReport {
    let reactions = crn.reactions().len();
    let species = crn.species_len();

    let mut propensity_buf = Vec::new();
    propensities(crn, initial, &mut propensity_buf);
    let active_channels = propensity_buf.iter().filter(|&&a| a > 0.0).count();
    let binade_spread = {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for &a in propensity_buf.iter().filter(|&&a| a > 0.0) {
            lo = lo.min(a);
            hi = hi.max(a);
        }
        if active_channels >= 2 {
            (hi / lo).log2()
        } else {
            0.0
        }
    };

    let pilot = if reactions == 0 {
        PilotProbe::default()
    } else {
        run_pilot(crn, initial)
    };
    let leap_occupancy = pilot.leap_occupancy;
    let pilot_active_channels = if reactions == 0 {
        None
    } else {
        Some(pilot.max_active)
    };
    let timescale_separation = pilot.timescale_separation();

    let (resolved, reason) = if reactions == 0 {
        (
            StepperKind::Direct,
            "empty network: nothing to select between",
        )
    } else if timescale_separation.is_some_and(|sep| sep >= HYBRID_MIN_SEPARATION) {
        (
            StepperKind::Hybrid,
            "persistent fast/slow split: many leaps of fast dynamics per slow event",
        )
    } else if leap_occupancy.is_some_and(|occ| occ >= TAU_MIN_OCCUPANCY) {
        (
            StepperKind::TauLeaping,
            "dense populations: every pilot probe batches enough firings per leap",
        )
    } else if reactions <= SMALL_NET_MAX_REACTIONS {
        (
            StepperKind::Direct,
            "small network: the direct method's per-event constant wins",
        )
    } else if reactions >= CR_MIN_REACTIONS {
        (
            StepperKind::CompositionRejection,
            "very large network: O(1) selection beats the O(log R) queue",
        )
    } else if pilot.max_active >= CR_MIN_ACTIVE_CHANNELS {
        (
            StepperKind::CompositionRejection,
            "many concurrently active channels: O(1) re-binning beats heap sifts",
        )
    } else {
        (
            StepperKind::NextReaction,
            "mid-size network with a small active working set: next-reaction wins",
        )
    };

    ClassifierReport {
        reactions,
        species,
        active_channels,
        binade_spread,
        leap_occupancy,
        pilot_active_channels,
        timescale_separation,
        resolved,
        reason,
    }
}

/// The dynamic features the pilot trajectory measured at its probes.
#[derive(Debug, Default)]
struct PilotProbe {
    /// Minimum observed leap occupancy `τ·a₀` across the probes — a
    /// conservative estimate of how many firings a tau-leap would batch
    /// *throughout* the transient, not just at `t = 0`. `None` when the
    /// network was exhausted at every probe.
    leap_occupancy: Option<f64>,
    /// Maximum number of channels with positive propensity across probes.
    max_active: usize,
    /// Minimum observed `(1/a₀_slow)/τ` across probes under the hybrid
    /// partition rule.
    min_separation: Option<f64>,
    /// Set when any probe saw a one-sided partition (no fast or no slow
    /// mass): the network is not persistently multiscale.
    separation_broken: bool,
}

impl PilotProbe {
    /// The timescale-separation feature: `None` unless *every* probe saw a
    /// two-sided fast/slow partition.
    fn timescale_separation(&self) -> Option<f64> {
        if self.separation_broken {
            None
        } else {
            self.min_separation
        }
    }
}

/// Runs the fixed-seed pilot trajectory (direct method, [`PILOT_EVENTS`]
/// events), measuring leap occupancy and active-channel concurrency at the
/// probe checkpoints.
fn run_pilot(crn: &Crn, initial: &State) -> PilotProbe {
    let mut probe = TauLeaping::new();
    let mut features = PilotProbe::default();
    let mut propensity_buf = Vec::new();
    let mut fold = |state: &State, probe: &mut TauLeaping, buf: &mut Vec<f64>| {
        let a0 = propensities(crn, state, buf);
        features.max_active = features
            .max_active
            .max(buf.iter().filter(|&&a| a > 0.0).count());
        if a0 <= 0.0 {
            return;
        }
        let candidate_tau = probe.candidate_tau(crn, state);
        if let Some(tau) = candidate_tau {
            let occ = tau * a0;
            features.leap_occupancy =
                Some(features.leap_occupancy.map_or(occ, |prev| prev.min(occ)));
        } else {
            // Fireable but fully critical: a leap would batch nothing.
            features.leap_occupancy = Some(0.0);
        }
        // Timescale separation under the hybrid partition rule: expected
        // slow-event waiting time over the leap bound, required two-sided
        // at every probe.
        let (a0_fast, a0_slow) = partition_masses(crn, state, buf);
        match candidate_tau {
            Some(tau) if a0_fast > 0.0 && a0_slow > 0.0 && tau > 0.0 => {
                let separation = (1.0 / a0_slow) / tau;
                features.min_separation = Some(
                    features
                        .min_separation
                        .map_or(separation, |prev| prev.min(separation)),
                );
            }
            _ => features.separation_broken = true,
        }
    };

    let mut rng = StdRng::seed_from_u64(PILOT_SEED);
    let mut pilot = DirectMethod::new();
    let mut state = initial.clone();
    let mut time = 0.0f64;
    pilot.initialize(crn, &state, &mut rng);
    fold(&state, &mut probe, &mut propensity_buf);
    'pilot: for _ in 0..PILOT_EVENTS / PROBE_STRIDE {
        for _ in 0..PROBE_STRIDE {
            match pilot.step(crn, &mut state, &mut time, &mut rng) {
                StepOutcome::Fired { .. } => {}
                StepOutcome::Leaped { .. } => unreachable!("the direct method never leaps"),
                StepOutcome::Exhausted => break 'pilot,
            }
        }
        fold(&state, &mut probe, &mut propensity_buf);
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_network_resolves_to_direct() {
        let crn: Crn = "".parse().unwrap();
        let report = classify(&crn, &crn.zero_state());
        assert_eq!(report.resolved, StepperKind::Direct);
        assert_eq!(report.reactions, 0);
        assert_eq!(report.leap_occupancy, None);
        assert_eq!(report.pilot_active_channels, None);
    }

    #[test]
    fn small_network_resolves_to_direct() {
        let crn: Crn = "a + b -> c @ 0.1\nc -> a + b @ 0.2".parse().unwrap();
        let initial = crn.state_from_counts([("a", 50), ("b", 40)]).unwrap();
        let report = classify(&crn, &initial);
        assert_eq!(report.resolved, StepperKind::Direct);
        assert_eq!(report.reactions, 2);
        assert_eq!(report.active_channels, 1);
        assert_eq!(report.binade_spread, 0.0);
    }

    #[test]
    fn sparse_mid_size_network_resolves_to_next_reaction() {
        // A reversible chain keeps its population wave in a handful of
        // species, so only ~9 channels are ever simultaneously fireable.
        let system = crn::generators::reversible_chain(200, 1.0, 0.5, 200);
        let report = classify(&system.crn, &system.initial);
        assert_eq!(report.resolved, StepperKind::NextReaction);
        assert!(report.reactions > SMALL_NET_MAX_REACTIONS);
        assert!(report.pilot_active_channels.unwrap() < CR_MIN_ACTIVE_CHANNELS);
    }

    #[test]
    fn concurrently_active_mid_size_network_resolves_to_composition_rejection() {
        // A dimerisation grid keeps every binding/unbinding channel live at
        // once — the shape where per-dependent heap sifts lose to O(1)
        // re-binning.
        let system = crn::generators::dimerisation_grid(16, 16, 0.002, 1.0, 25);
        let report = classify(&system.crn, &system.initial);
        assert_eq!(report.resolved, StepperKind::CompositionRejection);
        assert!(report.reactions < CR_MIN_REACTIONS);
        assert!(report.pilot_active_channels.unwrap() >= CR_MIN_ACTIVE_CHANNELS);
    }

    #[test]
    fn dense_populations_resolve_to_tau_leaping() {
        let system = crn::generators::lambda_switch_ensemble(200, 1.0, 0.1, 0.001, 30);
        let report = classify(&system.crn, &system.initial);
        assert_eq!(
            report.resolved,
            StepperKind::TauLeaping,
            "leap occupancy was {:?}",
            report.leap_occupancy
        );
        assert!(report.leap_occupancy.unwrap() >= TAU_MIN_OCCUPANCY);
    }

    #[test]
    fn multiscale_networks_resolve_to_hybrid() {
        // Slow promoter toggles (~0.5/s) under fast enzyme cycling
        // (~10⁴–10⁵/s): every probe sees a two-sided partition with a huge
        // waiting-time-to-leap ratio.
        let system = crn::generators::multiscale_switch(8, 0.5, 20_000.0, 2_000, 60);
        let report = classify(&system.crn, &system.initial);
        assert_eq!(
            report.resolved,
            StepperKind::Hybrid,
            "timescale separation was {:?}",
            report.timescale_separation
        );
        assert!(report.timescale_separation.unwrap() >= HYBRID_MIN_SEPARATION);
    }

    #[test]
    fn single_scale_networks_measure_no_separation() {
        // Dense but single-scale: tau-leaping's regime must be untouched by
        // the hybrid rule.
        let system = crn::generators::lambda_switch_ensemble(200, 1.0, 0.1, 0.001, 30);
        let report = classify(&system.crn, &system.initial);
        assert!(
            report
                .timescale_separation
                .is_none_or(|sep| sep < HYBRID_MIN_SEPARATION),
            "unexpected separation {:?}",
            report.timescale_separation
        );
    }

    #[test]
    fn exhausted_initial_state_falls_back_to_size() {
        let crn: Crn = "a + b -> c @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 3)]).unwrap();
        let report = classify(&crn, &initial);
        assert_eq!(report.resolved, StepperKind::Direct);
        assert_eq!(report.active_channels, 0);
        assert_eq!(report.leap_occupancy, None);
    }

    #[test]
    fn classification_is_deterministic() {
        let system = crn::generators::gene_regulatory_tree(4, 3, 0.2, 0.5, 8.0, 1.0);
        let a = classify(&system.crn, &system.initial);
        let b = classify(&system.crn, &system.initial);
        assert_eq!(a, b);
        assert_eq!(
            a.resolved,
            StepperKind::Auto.resolve(&system.crn, &system.initial)
        );
    }

    #[test]
    fn concrete_kinds_resolve_to_themselves() {
        let crn: Crn = "a -> b @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 5)]).unwrap();
        for kind in StepperKind::ALL {
            assert_eq!(kind.resolve(&crn, &initial), kind);
        }
    }
}
