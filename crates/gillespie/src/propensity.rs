//! Mass-action propensity (stochastic rate) evaluation.
//!
//! In Gillespie's formulation the propensity `a_r(x)` of reaction `r` in
//! state `x` is its stochastic rate constant multiplied by the number of
//! distinct combinations of reactant molecules available:
//!
//! * `∅ -> …` (order 0): `a = k`
//! * `s -> …`: `a = k · X_s`
//! * `s + t -> …`: `a = k · X_s · X_t`
//! * `2s -> …`: `a = k · X_s · (X_s − 1) / 2`
//!
//! and in general `a = k · Π_s C(X_s, ν_s)` where `ν_s` is the reactant
//! stoichiometry of species `s` and `C` is the binomial coefficient.

use crn::{Crn, Reaction, State};

/// Computes the propensity of a single reaction in the given state.
///
/// Returns `0.0` whenever any reactant is present in insufficient quantity.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let crn: crn::Crn = "2 a -> b @ 3".parse()?;
/// let state = crn.state_from_counts([("a", 4)])?;
/// // C(4, 2) = 6 distinct pairs, so the propensity is 3 · 6 = 18.
/// assert_eq!(gillespie::propensity(&crn.reactions()[0], &state), 18.0);
/// # Ok(())
/// # }
/// ```
pub fn propensity(reaction: &Reaction, state: &State) -> f64 {
    let mut combinations = 1.0f64;
    for term in reaction.reactants() {
        let count = match state.try_count(term.species) {
            Some(c) => c,
            None => return 0.0,
        };
        if count < u64::from(term.coefficient) {
            return 0.0;
        }
        combinations *= falling_factorial(count, term.coefficient) / factorial(term.coefficient);
    }
    reaction.rate() * combinations
}

/// Computes the propensities of every reaction of `crn` in `state`, writing
/// them into `out` (which is resized as needed) and returning the total.
pub fn propensities(crn: &Crn, state: &State, out: &mut Vec<f64>) -> f64 {
    out.clear();
    out.reserve(crn.reactions().len());
    let mut total = 0.0;
    for reaction in crn.reactions() {
        let a = propensity(reaction, state);
        out.push(a);
        total += a;
    }
    total
}

/// Computes only the total propensity of the network in `state`.
pub fn total_propensity(crn: &Crn, state: &State) -> f64 {
    crn.reactions().iter().map(|r| propensity(r, state)).sum()
}

fn falling_factorial(n: u64, k: u32) -> f64 {
    let mut acc = 1.0f64;
    for i in 0..u64::from(k) {
        acc *= (n - i) as f64;
    }
    acc
}

fn factorial(k: u32) -> f64 {
    (1..=u64::from(k))
        .map(|i| i as f64)
        .product::<f64>()
        .max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crn_of(text: &str) -> Crn {
        text.parse().unwrap()
    }

    #[test]
    fn zeroth_order_propensity_is_the_rate() {
        let crn = crn_of("0 -> a @ 2.5");
        let state = crn.zero_state();
        assert_eq!(propensity(&crn.reactions()[0], &state), 2.5);
    }

    #[test]
    fn first_order_scales_with_count() {
        let crn = crn_of("a -> b @ 0.1");
        let state = crn.state_from_counts([("a", 30)]).unwrap();
        assert!((propensity(&crn.reactions()[0], &state) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bimolecular_distinct_species() {
        let crn = crn_of("a + b -> c @ 10");
        let state = crn.state_from_counts([("a", 15), ("b", 25)]).unwrap();
        assert_eq!(propensity(&crn.reactions()[0], &state), 10.0 * 15.0 * 25.0);
    }

    #[test]
    fn bimolecular_same_species_uses_combinations() {
        let crn = crn_of("2 a -> b @ 1");
        let state = crn.state_from_counts([("a", 5)]).unwrap();
        // C(5,2) = 10
        assert_eq!(propensity(&crn.reactions()[0], &state), 10.0);
        // With fewer molecules than required, propensity is exactly zero.
        let state1 = crn.state_from_counts([("a", 1)]).unwrap();
        assert_eq!(propensity(&crn.reactions()[0], &state1), 0.0);
    }

    #[test]
    fn trimolecular_combination_counting() {
        let crn = crn_of("3 a -> b @ 2");
        let state = crn.state_from_counts([("a", 6)]).unwrap();
        // C(6,3) = 20 -> propensity 40.
        assert_eq!(propensity(&crn.reactions()[0], &state), 40.0);
    }

    #[test]
    fn mixed_high_order_reaction() {
        let crn = crn_of("2 a + b -> c @ 0.5");
        let state = crn.state_from_counts([("a", 4), ("b", 3)]).unwrap();
        // C(4,2)·C(3,1) = 6·3 = 18 -> 9.0.
        assert_eq!(propensity(&crn.reactions()[0], &state), 9.0);
    }

    #[test]
    fn totals_sum_over_reactions() {
        let crn = crn_of("a -> b @ 1\nb -> a @ 2");
        let state = crn.state_from_counts([("a", 10), ("b", 5)]).unwrap();
        let mut buf = Vec::new();
        let total = propensities(&crn, &state, &mut buf);
        assert_eq!(buf, vec![10.0, 10.0]);
        assert_eq!(total, 20.0);
        assert_eq!(total_propensity(&crn, &state), 20.0);
    }

    #[test]
    fn missing_reactants_give_zero() {
        let crn = crn_of("a + b -> c @ 1");
        let state = crn.state_from_counts([("a", 10)]).unwrap();
        assert_eq!(propensity(&crn.reactions()[0], &state), 0.0);
    }
}
