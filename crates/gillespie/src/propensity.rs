//! Mass-action propensity (stochastic rate) evaluation.
//!
//! In Gillespie's formulation the propensity `a_r(x)` of reaction `r` in
//! state `x` is its stochastic rate constant multiplied by the number of
//! distinct combinations of reactant molecules available:
//!
//! * `∅ -> …` (order 0): `a = k`
//! * `s -> …`: `a = k · X_s`
//! * `s + t -> …`: `a = k · X_s · X_t`
//! * `2s -> …`: `a = k · X_s · (X_s − 1) / 2`
//!
//! and in general `a = k · Π_s C(X_s, ν_s)` where `ν_s` is the reactant
//! stoichiometry of species `s` and `C` is the binomial coefficient.

use std::cell::Cell;

use crn::{Crn, Reaction, State};

/// Computes the propensity of a single reaction in the given state.
///
/// Returns `0.0` whenever any reactant is present in insufficient quantity.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let crn: crn::Crn = "2 a -> b @ 3".parse()?;
/// let state = crn.state_from_counts([("a", 4)])?;
/// // C(4, 2) = 6 distinct pairs, so the propensity is 3 · 6 = 18.
/// assert_eq!(gillespie::propensity(&crn.reactions()[0], &state), 18.0);
/// # Ok(())
/// # }
/// ```
pub fn propensity(reaction: &Reaction, state: &State) -> f64 {
    let mut combinations = 1.0f64;
    for term in reaction.reactants() {
        let count = match state.try_count(term.species) {
            Some(c) => c,
            None => return 0.0,
        };
        if count < u64::from(term.coefficient) {
            return 0.0;
        }
        combinations *= falling_factorial(count, term.coefficient) / factorial(term.coefficient);
    }
    reaction.rate() * combinations
}

/// Computes the propensities of every reaction of `crn` in `state`, writing
/// them into `out` (which is resized as needed) and returning the total.
pub fn propensities(crn: &Crn, state: &State, out: &mut Vec<f64>) -> f64 {
    out.clear();
    out.reserve(crn.reactions().len());
    let mut total = 0.0;
    for reaction in crn.reactions() {
        let a = propensity(reaction, state);
        out.push(a);
        total += a;
    }
    total
}

/// Computes only the total propensity of the network in `state`.
pub fn total_propensity(crn: &Crn, state: &State) -> f64 {
    crn.reactions().iter().map(|r| propensity(r, state)).sum()
}

/// Structure-of-arrays propensity evaluator: the reactant structure of a
/// network flattened into contiguous CSR arrays, plus the current propensity
/// of every reaction.
///
/// [`propensity`] dispatches through each [`Reaction`]'s own term vector — a
/// pointer chase per reaction that dominates the per-event dependent-refresh
/// loop of the incremental steppers. `PropensitySet` lays the same data out
/// as four flat arrays (rates, row offsets, species indices, coefficients)
/// so a batch of dependent re-evaluations from a
/// [`ReactionDependencyGraph`](crate::ReactionDependencyGraph) fan-out is
/// one pass over contiguous memory.
///
/// Evaluation replicates [`propensity`]'s floating-point operations in the
/// exact same order, so the stored values are **bitwise identical** to a
/// per-reaction recompute — which is what lets [`DirectMethod`]
/// (crate::DirectMethod) and
/// [`CompositionRejection`](crate::CompositionRejection) adopt it without
/// perturbing any pinned trajectory.
#[derive(Debug, Default, Clone)]
pub struct PropensitySet {
    /// Stochastic rate constant per reaction.
    rates: Vec<f64>,
    /// CSR row starts into the term arrays (length `reactions + 1`).
    offsets: Vec<u32>,
    /// Flattened reactant species indices, in declaration order.
    species: Vec<u32>,
    /// Flattened reactant coefficients (parallel to `species`).
    coeffs: Vec<u32>,
    /// Precomputed `factorial(coefficient)` per term (parallel to `species`).
    facts: Vec<f64>,
    /// Current propensity of every reaction.
    values: Vec<f64>,
    /// Evaluations performed since the last [`PropensitySet::prime`] — a
    /// profiling observable (`Cell` because [`PropensitySet::eval`] takes
    /// `&self`); never read by the evaluation logic itself.
    evals: Cell<u64>,
}

impl PropensitySet {
    /// Creates an empty set; call [`PropensitySet::prime`] before use.
    pub fn new() -> Self {
        PropensitySet::default()
    }

    /// Rebuilds the flattened reactant layout for `crn` and evaluates every
    /// propensity in `state`, returning the total (accumulated in reaction
    /// order, exactly like [`propensities`]). Allocations are reused across
    /// calls, so per-trial re-priming in an ensemble worker is cheap.
    pub fn prime(&mut self, crn: &Crn, state: &State) -> f64 {
        self.rates.clear();
        self.offsets.clear();
        self.species.clear();
        self.coeffs.clear();
        self.facts.clear();
        let reactions = crn.reactions();
        self.rates.reserve(reactions.len());
        self.offsets.reserve(reactions.len() + 1);
        self.offsets.push(0);
        self.evals.set(0);
        for reaction in reactions {
            self.rates.push(reaction.rate());
            for term in reaction.reactants() {
                self.species.push(term.species.index() as u32);
                self.coeffs.push(term.coefficient);
                self.facts.push(factorial(term.coefficient));
            }
            self.offsets.push(self.species.len() as u32);
        }
        self.values.clear();
        self.values.resize(reactions.len(), 0.0);
        let mut total = 0.0;
        for r in 0..reactions.len() {
            let a = self.eval(r, state);
            self.values[r] = a;
            total += a;
        }
        total
    }

    /// Evaluates reaction `r`'s propensity in `state` without storing it —
    /// bitwise identical to `propensity(&crn.reactions()[r], state)`.
    #[inline]
    pub fn eval(&self, r: usize, state: &State) -> f64 {
        self.evals.set(self.evals.get().wrapping_add(1));
        let counts = state.counts();
        let start = self.offsets[r] as usize;
        let end = self.offsets[r + 1] as usize;
        let mut combinations = 1.0f64;
        for term in start..end {
            let count = match counts.get(self.species[term] as usize) {
                Some(&c) => c,
                None => return 0.0,
            };
            let coefficient = self.coeffs[term];
            if count < u64::from(coefficient) {
                return 0.0;
            }
            combinations *= falling_factorial(count, coefficient) / self.facts[term];
        }
        self.rates[r] * combinations
    }

    /// Re-evaluates reaction `r` in `state`, stores and returns the value.
    #[inline]
    pub fn refresh(&mut self, r: usize, state: &State) -> f64 {
        let a = self.eval(r, state);
        self.values[r] = a;
        a
    }

    /// Overwrites the stored value of reaction `r` (for steppers that
    /// evaluate first and commit after updating their own bookkeeping).
    #[inline]
    pub fn store(&mut self, r: usize, a: f64) {
        self.values[r] = a;
    }

    /// The stored propensity of reaction `r`.
    #[inline]
    pub fn value(&self, r: usize) -> f64 {
        self.values[r]
    }

    /// The full stored propensity vector, in reaction order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of reactions in the primed layout.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty (unprimed or a reaction-free network).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Evaluations performed since the last [`PropensitySet::prime`]
    /// (the priming pass itself included).
    pub fn evals(&self) -> u64 {
        self.evals.get()
    }
}

fn falling_factorial(n: u64, k: u32) -> f64 {
    let mut acc = 1.0f64;
    for i in 0..u64::from(k) {
        acc *= (n - i) as f64;
    }
    acc
}

fn factorial(k: u32) -> f64 {
    (1..=u64::from(k))
        .map(|i| i as f64)
        .product::<f64>()
        .max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crn_of(text: &str) -> Crn {
        text.parse().unwrap()
    }

    #[test]
    fn zeroth_order_propensity_is_the_rate() {
        let crn = crn_of("0 -> a @ 2.5");
        let state = crn.zero_state();
        assert_eq!(propensity(&crn.reactions()[0], &state), 2.5);
    }

    #[test]
    fn first_order_scales_with_count() {
        let crn = crn_of("a -> b @ 0.1");
        let state = crn.state_from_counts([("a", 30)]).unwrap();
        assert!((propensity(&crn.reactions()[0], &state) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bimolecular_distinct_species() {
        let crn = crn_of("a + b -> c @ 10");
        let state = crn.state_from_counts([("a", 15), ("b", 25)]).unwrap();
        assert_eq!(propensity(&crn.reactions()[0], &state), 10.0 * 15.0 * 25.0);
    }

    #[test]
    fn bimolecular_same_species_uses_combinations() {
        let crn = crn_of("2 a -> b @ 1");
        let state = crn.state_from_counts([("a", 5)]).unwrap();
        // C(5,2) = 10
        assert_eq!(propensity(&crn.reactions()[0], &state), 10.0);
        // With fewer molecules than required, propensity is exactly zero.
        let state1 = crn.state_from_counts([("a", 1)]).unwrap();
        assert_eq!(propensity(&crn.reactions()[0], &state1), 0.0);
    }

    #[test]
    fn trimolecular_combination_counting() {
        let crn = crn_of("3 a -> b @ 2");
        let state = crn.state_from_counts([("a", 6)]).unwrap();
        // C(6,3) = 20 -> propensity 40.
        assert_eq!(propensity(&crn.reactions()[0], &state), 40.0);
    }

    #[test]
    fn mixed_high_order_reaction() {
        let crn = crn_of("2 a + b -> c @ 0.5");
        let state = crn.state_from_counts([("a", 4), ("b", 3)]).unwrap();
        // C(4,2)·C(3,1) = 6·3 = 18 -> 9.0.
        assert_eq!(propensity(&crn.reactions()[0], &state), 9.0);
    }

    #[test]
    fn totals_sum_over_reactions() {
        let crn = crn_of("a -> b @ 1\nb -> a @ 2");
        let state = crn.state_from_counts([("a", 10), ("b", 5)]).unwrap();
        let mut buf = Vec::new();
        let total = propensities(&crn, &state, &mut buf);
        assert_eq!(buf, vec![10.0, 10.0]);
        assert_eq!(total, 20.0);
        assert_eq!(total_propensity(&crn, &state), 20.0);
    }

    #[test]
    fn missing_reactants_give_zero() {
        let crn = crn_of("a + b -> c @ 1");
        let state = crn.state_from_counts([("a", 10)]).unwrap();
        assert_eq!(propensity(&crn.reactions()[0], &state), 0.0);
    }

    #[test]
    fn soa_set_matches_per_reaction_eval_bitwise() {
        // Mixed orders, repeated reactants, an idle channel and a source —
        // every code path of the flattened evaluator.
        let crn = crn_of(
            "0 -> a @ 2.5\n2 a + b -> c @ 0.37\na -> b @ 1e-3\n3 c -> a @ 7.25\nq + a -> c @ 5",
        );
        let mut set = PropensitySet::new();
        for counts in [
            vec![("a", 4u64), ("b", 3), ("c", 6)],
            vec![("a", 1), ("c", 2)],
            vec![("a", 1_000_000), ("b", 77), ("c", 1), ("q", 3)],
        ] {
            let state = crn.state_from_counts(counts).unwrap();
            let mut reference = Vec::new();
            let ref_total = propensities(&crn, &state, &mut reference);
            let total = set.prime(&crn, &state);
            assert_eq!(set.len(), crn.reactions().len());
            assert_eq!(total.to_bits(), ref_total.to_bits());
            for (r, &a) in reference.iter().enumerate() {
                assert_eq!(set.value(r).to_bits(), a.to_bits(), "reaction {r}");
                assert_eq!(set.eval(r, &state).to_bits(), a.to_bits(), "reaction {r}");
            }
            assert_eq!(set.values(), reference.as_slice());
        }
        assert!(!set.is_empty());
    }
}
