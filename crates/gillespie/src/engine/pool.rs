//! Deterministic chunked fan-out of independent trials over scoped threads.

use std::sync::atomic::{AtomicBool, Ordering};

/// A cooperative cancellation flag shared by the workers of one fan-out.
///
/// Workers poll [`is_cancelled`](Self::is_cancelled) between trials and stop
/// early once any worker has failed; [`run_chunked`] raises the flag
/// automatically when a worker returns an error.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
}

impl CancelToken {
    /// Creates an un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Returns `true` once any party has cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The contiguous block of trial indices assigned to one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRange {
    /// First trial index (inclusive).
    pub start: u64,
    /// One past the last trial index.
    pub end: u64,
    /// Index of the worker executing this range.
    pub worker: usize,
}

impl TrialRange {
    /// Returns the trial indices of the range in ascending order.
    pub fn trials(&self) -> std::ops::Range<u64> {
        self.start..self.end
    }

    /// Returns the number of trials in the range.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Returns `true` if the range holds no trials.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Runs `trials` independent tasks across up to `threads` scoped workers and
/// returns each worker's partial result **in worker order**.
///
/// The partitioning is a pure function of `(threads, trials)`: worker `w`
/// owns the contiguous range `[w·⌈trials/threads⌉, (w+1)·⌈trials/threads⌉)`
/// clamped to `trials`. Because every trial seeds its own RNG from the trial
/// index, and because callers merge the returned partials in the worker
/// order this function guarantees, results are bit-identical for any thread
/// count — the foundation of the ensemble's determinism contract.
///
/// Error handling: if any worker returns an error, the shared [`CancelToken`]
/// is raised so the remaining workers finish their current trial and stop,
/// and the error of the lowest-indexed failed worker is returned.
///
/// # Panics
///
/// Propagates panics from worker closures.
pub fn run_chunked<P, E, F>(threads: usize, trials: u64, worker: F) -> Result<Vec<P>, E>
where
    P: Send,
    E: Send,
    F: Fn(TrialRange, &CancelToken) -> Result<P, E> + Sync,
{
    run_chunked_cancellable(threads, trials, &CancelToken::new(), worker)
}

/// [`run_chunked`] with an externally owned [`CancelToken`].
///
/// The token is shared with every worker: raising it from outside (another
/// thread, a job scheduler, a ctrl-c handler) makes cooperative workers stop
/// after their current trial, exactly as an internal worker error would.
/// Callers that cancel externally are responsible for checking
/// [`CancelToken::is_cancelled`] afterwards and discarding the partials —
/// a cancelled fan-out returns `Ok` with *incomplete* partial results
/// (workers that observed the flag simply stopped early).
///
/// This is the cancellation hook behind
/// [`Ensemble::run_cancellable`](crate::Ensemble::run_cancellable) and the
/// `service` crate's job scheduler.
pub fn run_chunked_cancellable<P, E, F>(
    threads: usize,
    trials: u64,
    cancel: &CancelToken,
    worker: F,
) -> Result<Vec<P>, E>
where
    P: Send,
    E: Send,
    F: Fn(TrialRange, &CancelToken) -> Result<P, E> + Sync,
{
    if trials == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.max(1);
    let chunk = trials.div_ceil(threads as u64);

    let outcomes: Vec<Result<P, E>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads as u64 {
            let start = w * chunk;
            let end = (start + chunk).min(trials);
            if start >= end {
                break;
            }
            let range = TrialRange {
                start,
                end,
                worker: w as usize,
            };
            let worker = &worker;
            handles.push(scope.spawn(move || {
                let outcome = worker(range, cancel);
                if outcome.is_err() {
                    cancel.cancel();
                }
                outcome
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("ensemble worker must not panic"))
            .collect()
    });

    let mut partials = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        partials.push(outcome?);
    }
    Ok(partials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_all_trials_exactly_once() {
        for threads in [1usize, 2, 3, 8, 16] {
            for trials in [1u64, 2, 7, 16, 100] {
                let partials: Vec<Vec<u64>> = run_chunked(threads, trials, |range, _| {
                    Ok::<_, ()>(range.trials().collect())
                })
                .unwrap();
                let flat: Vec<u64> = partials.into_iter().flatten().collect();
                // Worker-order concatenation is exactly trial order.
                assert_eq!(flat, (0..trials).collect::<Vec<_>>(), "{threads}x{trials}");
            }
        }
    }

    #[test]
    fn zero_trials_spawns_nothing() {
        let partials = run_chunked(8, 0, |_, _| -> Result<u64, ()> {
            unreachable!("no range to run")
        })
        .unwrap();
        assert!(partials.is_empty());
    }

    #[test]
    fn errors_cancel_and_propagate() {
        let err = run_chunked(4, 100, |range, cancel| {
            if range.worker == 0 {
                Err(format!("worker {} failed", range.worker))
            } else {
                // Cooperative workers observe the cancellation quickly.
                for _ in range.trials() {
                    if cancel.is_cancelled() {
                        break;
                    }
                    std::thread::yield_now();
                }
                Ok(range.len())
            }
        })
        .unwrap_err();
        assert_eq!(err, "worker 0 failed");
    }

    #[test]
    fn external_cancellation_stops_workers_early() {
        let cancel = CancelToken::new();
        cancel.cancel();
        // Every worker observes the pre-raised token before its first trial
        // and returns an empty partial.
        let partials: Vec<Vec<u64>> = run_chunked_cancellable(4, 100, &cancel, |range, token| {
            let mut done = Vec::new();
            for trial in range.trials() {
                if token.is_cancelled() {
                    break;
                }
                done.push(trial);
            }
            Ok::<_, ()>(done)
        })
        .unwrap();
        assert!(partials.iter().all(|p| p.is_empty()));
        assert!(cancel.is_cancelled());
    }

    #[test]
    fn single_thread_runs_everything_inline_order() {
        let partials = run_chunked(1, 10, |range, _| {
            Ok::<_, ()>((range.worker, range.start, range.end))
        })
        .unwrap();
        assert_eq!(partials, vec![(0, 0, 10)]);
    }
}
