//! The shared reaction dependency graph of the execution engine.

use crn::Crn;

/// Which reaction propensities change when a given reaction fires.
///
/// This is the Gibson–Bruck dependency graph in a flat CSR (compressed
/// sparse row) layout tuned for the simulation hot path: one contiguous
/// `targets` array plus per-reaction offsets, so `dependents(r)` is a slice
/// lookup with no pointer chasing. The analysis-oriented
/// [`crn::DependencyGraph`] remains the right type for structural queries;
/// this one is what the steppers use every event.
///
/// A graph is owned by a stepper and [rebuilt](Self::rebuild) at the start
/// of each trajectory. Rebuilding reuses all internal allocations, so a
/// stepper that runs thousands of ensemble trials of the same network
/// allocates only on its first trial.
///
/// Reaction `r` depends on reaction `f` when `f` changes the count of at
/// least one reactant of `r`; every reaction depends on itself (its own
/// reactant counts change when it fires, and even a catalytic self-loop
/// must redraw its waiting time).
#[derive(Debug, Default, Clone)]
pub struct ReactionDependencyGraph {
    /// `targets[offsets[r]..offsets[r + 1]]` = sorted dependents of `r`.
    offsets: Vec<usize>,
    targets: Vec<usize>,
    /// Scratch: CSR of consumers per species, reused across rebuilds.
    consumer_offsets: Vec<usize>,
    consumer_targets: Vec<usize>,
    /// Scratch: per-species fill cursor while building `consumer_targets`.
    cursor: Vec<usize>,
    /// Scratch: dependents of the reaction currently being built.
    row: Vec<usize>,
}

impl ReactionDependencyGraph {
    /// Creates an empty graph; call [`rebuild`](Self::rebuild) before use.
    pub fn new() -> Self {
        ReactionDependencyGraph::default()
    }

    /// Builds the graph of `crn` in one pass, reusing prior allocations.
    pub fn rebuild(&mut self, crn: &Crn) {
        let reactions = crn.reactions();
        let species_len = crn.species_len();

        // Pass 1: CSR of "which reactions consume species s".
        self.consumer_offsets.clear();
        self.consumer_offsets.resize(species_len + 1, 0);
        for r in reactions {
            for term in r.reactants() {
                self.consumer_offsets[term.species.index() + 1] += 1;
            }
        }
        for s in 0..species_len {
            self.consumer_offsets[s + 1] += self.consumer_offsets[s];
        }
        self.consumer_targets.clear();
        self.consumer_targets
            .resize(*self.consumer_offsets.last().unwrap_or(&0), 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.consumer_offsets);
        for (idx, r) in reactions.iter().enumerate() {
            for term in r.reactants() {
                let slot = &mut self.cursor[term.species.index()];
                self.consumer_targets[*slot] = idx;
                *slot += 1;
            }
        }

        // Pass 2: dependents of each reaction = itself plus every consumer
        // of a species whose count the firing actually changes.
        self.offsets.clear();
        self.offsets.push(0);
        self.targets.clear();
        for (idx, r) in reactions.iter().enumerate() {
            self.row.clear();
            self.row.push(idx);
            // Walk the raw term lists rather than `Reaction::species()`,
            // which allocates a deduplicated Vec per call; a species present
            // on both sides is visited twice, but the sort+dedup below
            // already absorbs that.
            for term in r.reactants().iter().chain(r.products()) {
                if r.net_change(term.species) != 0 {
                    let s = term.species.index();
                    let consumers = &self.consumer_targets
                        [self.consumer_offsets[s]..self.consumer_offsets[s + 1]];
                    self.row.extend_from_slice(consumers);
                }
            }
            self.row.sort_unstable();
            self.row.dedup();
            self.targets.extend_from_slice(&self.row);
            self.offsets.push(self.targets.len());
        }
    }

    /// Returns the reactions whose propensities must be refreshed after
    /// `reaction` fires, sorted ascending and including `reaction` itself.
    ///
    /// # Panics
    ///
    /// Panics if `reaction` is out of range for the network this graph was
    /// last rebuilt for.
    #[inline]
    pub fn dependents(&self, reaction: usize) -> &[usize] {
        &self.targets[self.offsets[reaction]..self.offsets[reaction + 1]]
    }

    /// Returns the number of reactions covered by the graph.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Returns `true` if the graph covers no reactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the mean out-degree — how many propensities an average firing
    /// invalidates, and therefore how much incremental steppers save.
    pub fn mean_out_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.targets.len() as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(text: &str) -> ReactionDependencyGraph {
        let crn: Crn = text.parse().unwrap();
        let mut g = ReactionDependencyGraph::new();
        g.rebuild(&crn);
        g
    }

    #[test]
    fn matches_the_analysis_graph_on_a_cycle() {
        let text = "a -> b @ 1\nb -> c @ 1\nc -> a @ 1";
        let g = graph_of(text);
        let reference: Crn = text.parse().unwrap();
        let analysis = reference.dependency_graph();
        assert_eq!(g.len(), analysis.len());
        for r in 0..g.len() {
            assert_eq!(g.dependents(r), analysis.dependents(r), "reaction {r}");
        }
    }

    #[test]
    fn catalysts_do_not_propagate() {
        let g = graph_of("cat + x -> cat + y @ 1\ncat + z -> w @ 1");
        // The catalyst count never changes, so reaction 1 is unaffected by 0.
        assert_eq!(g.dependents(0), &[0]);
        assert_eq!(g.dependents(1), &[0, 1]);
    }

    #[test]
    fn rebuild_reuses_and_replaces() {
        let small: Crn = "a -> b @ 1".parse().unwrap();
        let big: Crn = "a -> b @ 1\nb -> a @ 1\nb -> c @ 1".parse().unwrap();
        let mut g = ReactionDependencyGraph::new();
        g.rebuild(&big);
        assert_eq!(g.len(), 3);
        g.rebuild(&small);
        assert_eq!(g.len(), 1);
        assert_eq!(g.dependents(0), &[0]);
        g.rebuild(&big);
        assert_eq!(g.len(), 3);
        assert_eq!(g.dependents(0), &[0, 1, 2]);
    }

    #[test]
    fn empty_network_yields_empty_graph() {
        let crn = crn::CrnBuilder::new().build().unwrap();
        let mut g = ReactionDependencyGraph::new();
        g.rebuild(&crn);
        assert!(g.is_empty());
        assert_eq!(g.mean_out_degree(), 0.0);
    }

    #[test]
    fn mean_out_degree_counts_edges() {
        let g = graph_of("a -> b @ 1\nb -> a @ 1");
        // Each reaction invalidates both.
        assert!((g.mean_out_degree() - 2.0).abs() < 1e-12);
    }
}
