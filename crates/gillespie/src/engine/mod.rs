//! The reusable execution engine underneath the SSA steppers and ensembles.
//!
//! This layer owns the machinery every exact-SSA variant shares, so that the
//! steppers themselves stay small:
//!
//! * [`ReactionDependencyGraph`] — which propensities a firing invalidates,
//!   in a flat CSR layout rebuilt allocation-free per trajectory. Both the
//!   incremental [`DirectMethod`](crate::DirectMethod) and the Gibson–Bruck
//!   [`NextReactionMethod`](crate::NextReactionMethod) drive their updates
//!   from it.
//! * [`run_chunked`] — deterministic fan-out of independent trials over
//!   scoped worker threads with cooperative cancellation ([`CancelToken`]),
//!   returning per-worker partial results in worker order. The Monte-Carlo
//!   [`Ensemble`](crate::Ensemble) runner is a thin client of this function,
//!   and new parallel workloads (parameter sweeps, distribution fitting)
//!   can reuse it directly. [`run_chunked_cancellable`] additionally shares
//!   an externally owned [`CancelToken`] with the workers, which is how the
//!   `service` crate's job scheduler cancels in-flight ensemble jobs.
//!
//! Determinism contract: trial `i` always derives its RNG from
//! `master_seed + i`, partitioning is a pure function of `(threads, trials)`
//! and partials merge in worker order — so every ensemble statistic is
//! bit-identical regardless of thread count.

mod deps;
mod pool;

pub use deps::ReactionDependencyGraph;
pub use pool::{run_chunked, run_chunked_cancellable, CancelToken, TrialRange};
