//! Outcome classification of trajectories.
//!
//! The paper's experiments all reduce a trajectory to a *discrete outcome*:
//! which working pathway fired enough times (Figure 3), or which of the two
//! output proteins crossed its threshold first (Figure 5). An
//! [`OutcomeClassifier`] maps a finished
//! [`SimulationResult`](crate::SimulationResult) to such an outcome label;
//! the [`Ensemble`](crate::Ensemble) runner then aggregates labels into an
//! empirical distribution.

use std::fmt;

use crn::{Crn, SpeciesId};
use serde::{Deserialize, Serialize};

use crate::simulator::SimulationResult;

/// A discrete outcome label (e.g. `"lysis"`, `"T1"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Outcome(String);

impl Outcome {
    /// Creates an outcome label.
    pub fn new(name: impl Into<String>) -> Self {
        Outcome(name.into())
    }

    /// Returns the label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Outcome {
    fn from(name: &str) -> Self {
        Outcome::new(name)
    }
}

impl From<String> for Outcome {
    fn from(name: String) -> Self {
        Outcome(name)
    }
}

/// Maps a finished trajectory to a discrete outcome.
///
/// Returning `None` marks the trajectory as *undecided*; the ensemble runner
/// reports undecided trajectories separately so they are never silently
/// folded into a real outcome.
pub trait OutcomeClassifier {
    /// Classifies one trajectory.
    fn classify(&self, result: &SimulationResult) -> Option<Outcome>;

    /// Lists every outcome this classifier can produce, used to present
    /// zero-count outcomes in reports.
    fn outcomes(&self) -> Vec<Outcome>;
}

/// One rule of a [`SpeciesThresholdClassifier`]: if the final count of
/// `species` is at least `threshold`, the trajectory is assigned `outcome`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdRule {
    /// The species whose final count is inspected.
    pub species: SpeciesId,
    /// The threshold (inclusive).
    pub threshold: u64,
    /// The outcome assigned when the threshold is met.
    pub outcome: Outcome,
}

/// Classifies trajectories by final species counts against thresholds.
///
/// Rules are evaluated in order; when several rules are satisfied
/// simultaneously the rule whose species *exceeds its threshold by the
/// largest margin (relative to the threshold)* wins. This matches the
/// paper's usage where the simulation is stopped as soon as the first output
/// crosses its threshold, so ties are rare and benign.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gillespie::SpeciesThresholdClassifier;
///
/// let crn: crn::Crn = "d1 + f1 -> d1 + cro2 @ 1\nd2 + f2 -> d2 + ci2 @ 1".parse()?;
/// let classifier = SpeciesThresholdClassifier::new()
///     .rule_named(&crn, "cro2", 55, "lysis")?
///     .rule_named(&crn, "ci2", 145, "lysogeny")?;
/// assert_eq!(classifier.rules().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpeciesThresholdClassifier {
    rules: Vec<ThresholdRule>,
}

impl SpeciesThresholdClassifier {
    /// Creates a classifier with no rules.
    pub fn new() -> Self {
        SpeciesThresholdClassifier::default()
    }

    /// Adds a rule by species id.
    pub fn rule(mut self, species: SpeciesId, threshold: u64, outcome: impl Into<Outcome>) -> Self {
        self.rules.push(ThresholdRule {
            species,
            threshold,
            outcome: outcome.into(),
        });
        self
    }

    /// Adds a rule by species name.
    ///
    /// # Errors
    ///
    /// Returns [`crn::CrnError::UnknownSpecies`] if the species does not
    /// exist in `crn`.
    pub fn rule_named(
        self,
        crn: &Crn,
        species: &str,
        threshold: u64,
        outcome: impl Into<Outcome>,
    ) -> Result<Self, crn::CrnError> {
        let id = crn.require_species(species)?;
        Ok(self.rule(id, threshold, outcome))
    }

    /// Returns the configured rules.
    pub fn rules(&self) -> &[ThresholdRule] {
        &self.rules
    }
}

impl OutcomeClassifier for SpeciesThresholdClassifier {
    fn classify(&self, result: &SimulationResult) -> Option<Outcome> {
        let mut best: Option<(f64, &Outcome)> = None;
        for rule in &self.rules {
            let count = result.final_state.try_count(rule.species)?;
            if count >= rule.threshold {
                let margin = if rule.threshold == 0 {
                    count as f64
                } else {
                    count as f64 / rule.threshold as f64
                };
                if best.is_none_or(|(m, _)| margin > m) {
                    best = Some((margin, &rule.outcome));
                }
            }
        }
        best.map(|(_, outcome)| outcome.clone())
    }

    fn outcomes(&self) -> Vec<Outcome> {
        let mut outcomes: Vec<Outcome> = self.rules.iter().map(|r| r.outcome.clone()).collect();
        outcomes.dedup();
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{SimulationResult, StopReason};
    use crate::trajectory::Trajectory;
    use crn::State;

    fn result_with_counts(counts: Vec<u64>) -> SimulationResult {
        SimulationResult {
            final_state: State::from_counts(counts),
            final_time: 1.0,
            events: 10,
            stop_reason: StopReason::ConditionMet,
            trajectory: Trajectory::new(),
        }
    }

    fn classifier() -> SpeciesThresholdClassifier {
        SpeciesThresholdClassifier::new()
            .rule(SpeciesId::from_index(0), 55, "lysis")
            .rule(SpeciesId::from_index(1), 145, "lysogeny")
    }

    #[test]
    fn classifies_by_threshold() {
        let c = classifier();
        assert_eq!(
            c.classify(&result_with_counts(vec![60, 0])),
            Some(Outcome::new("lysis"))
        );
        assert_eq!(
            c.classify(&result_with_counts(vec![0, 150])),
            Some(Outcome::new("lysogeny"))
        );
        assert_eq!(c.classify(&result_with_counts(vec![10, 10])), None);
    }

    #[test]
    fn ties_resolve_to_largest_relative_margin() {
        let c = classifier();
        // 60/55 ≈ 1.09 < 300/145 ≈ 2.07, so lysogeny wins.
        assert_eq!(
            c.classify(&result_with_counts(vec![60, 300])),
            Some(Outcome::new("lysogeny"))
        );
    }

    #[test]
    fn out_of_range_species_is_undecided() {
        let c = classifier();
        assert_eq!(c.classify(&result_with_counts(vec![60])), None);
    }

    #[test]
    fn outcome_listing_and_display() {
        let c = classifier();
        let names: Vec<String> = c.outcomes().iter().map(|o| o.to_string()).collect();
        assert_eq!(names, vec!["lysis", "lysogeny"]);
        assert_eq!(Outcome::from("x").as_str(), "x");
        assert_eq!(Outcome::from(String::from("y")).as_str(), "y");
    }

    #[test]
    fn rule_named_validates_species() {
        let crn: Crn = "cro2 -> 0 @ 1".parse().unwrap();
        assert!(SpeciesThresholdClassifier::new()
            .rule_named(&crn, "missing", 1, "x")
            .is_err());
    }
}
