//! Per-species statistics over repeated trajectories.

use crn::{Crn, SpeciesId};
use serde::{Deserialize, Serialize};

use crate::simulator::SimulationResult;

/// Running mean/variance accumulator for the final count of one species.
///
/// Uses Welford's online algorithm so that ensembles of any size can be
/// accumulated without storing every sample.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpeciesStatistics {
    samples: u64,
    mean: f64,
    m2: f64,
    min: u64,
    max: u64,
}

impl SpeciesStatistics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SpeciesStatistics {
            samples: 0,
            mean: 0.0,
            m2: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Adds one observed final count.
    pub fn push(&mut self, count: u64) {
        self.samples += 1;
        let x = count as f64;
        let delta = x - self.mean;
        self.mean += delta / self.samples as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(count);
        self.max = self.max.max(count);
    }

    /// Number of samples accumulated.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Sample mean of the final count.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance of the final count.
    pub fn variance(&self) -> f64 {
        if self.samples < 2 {
            0.0
        } else {
            self.m2 / (self.samples - 1) as f64
        }
    }

    /// Sample standard deviation of the final count.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observed count (0 if no samples).
    pub fn min(&self) -> u64 {
        if self.samples == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observed count.
    pub fn max(&self) -> u64 {
        self.max
    }
}

/// Statistics of the final state of a set of trajectories, one accumulator
/// per species, plus event/time summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectorySummary {
    species: Vec<SpeciesStatistics>,
    events: SpeciesStatistics,
    total_time: f64,
    trajectories: u64,
}

impl TrajectorySummary {
    /// Creates a summary for a network with `species_len` species.
    pub fn new(species_len: usize) -> Self {
        TrajectorySummary {
            species: vec![SpeciesStatistics::new(); species_len],
            events: SpeciesStatistics::new(),
            total_time: 0.0,
            trajectories: 0,
        }
    }

    /// Creates a summary sized for `crn`.
    pub fn for_crn(crn: &Crn) -> Self {
        TrajectorySummary::new(crn.species_len())
    }

    /// Accumulates one finished trajectory.
    pub fn push(&mut self, result: &SimulationResult) {
        self.trajectories += 1;
        self.total_time += result.final_time;
        self.events.push(result.events);
        for (idx, stats) in self.species.iter_mut().enumerate() {
            stats.push(result.final_state.counts().get(idx).copied().unwrap_or(0));
        }
    }

    /// Returns the per-species accumulator.
    ///
    /// # Panics
    ///
    /// Panics if the species index is out of range.
    pub fn species(&self, species: SpeciesId) -> &SpeciesStatistics {
        &self.species[species.index()]
    }

    /// Statistics of the number of reaction events per trajectory.
    pub fn events(&self) -> &SpeciesStatistics {
        &self.events
    }

    /// Mean simulated end time per trajectory.
    pub fn mean_final_time(&self) -> f64 {
        if self.trajectories == 0 {
            0.0
        } else {
            self.total_time / self.trajectories as f64
        }
    }

    /// Number of trajectories accumulated.
    pub fn trajectories(&self) -> u64 {
        self.trajectories
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::StopReason;
    use crate::trajectory::Trajectory;
    use crn::State;

    #[test]
    fn welford_matches_direct_computation() {
        let samples = [3u64, 7, 7, 1, 12, 0, 5];
        let mut stats = SpeciesStatistics::new();
        for &s in &samples {
            stats.push(s);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / (n - 1.0);
        assert!((stats.mean() - mean).abs() < 1e-12);
        assert!((stats.variance() - var).abs() < 1e-9);
        assert_eq!(stats.min(), 0);
        assert_eq!(stats.max(), 12);
        assert_eq!(stats.samples(), 7);
    }

    #[test]
    fn empty_statistics_are_well_defined() {
        let stats = SpeciesStatistics::new();
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.variance(), 0.0);
        assert_eq!(stats.std_dev(), 0.0);
        assert_eq!(stats.min(), 0);
        assert_eq!(stats.max(), 0);
    }

    #[test]
    fn summary_accumulates_trajectories() {
        let mut summary = TrajectorySummary::new(2);
        for (counts, time, events) in [(vec![1u64, 4], 1.0, 5u64), (vec![3, 2], 3.0, 7)] {
            summary.push(&SimulationResult {
                final_state: State::from_counts(counts),
                final_time: time,
                events,
                stop_reason: StopReason::ConditionMet,
                trajectory: Trajectory::new(),
            });
        }
        assert_eq!(summary.trajectories(), 2);
        assert_eq!(summary.species(SpeciesId::from_index(0)).mean(), 2.0);
        assert_eq!(summary.species(SpeciesId::from_index(1)).mean(), 3.0);
        assert_eq!(summary.events().mean(), 6.0);
        assert_eq!(summary.mean_final_time(), 2.0);
    }

    #[test]
    fn summary_sized_for_crn() {
        let crn: crn::Crn = "a -> b @ 1".parse().unwrap();
        let summary = TrajectorySummary::for_crn(&crn);
        assert_eq!(summary.trajectories(), 0);
        assert_eq!(summary.mean_final_time(), 0.0);
    }
}
