//! Per-species statistics over repeated trajectories.

use crn::{Crn, SpeciesId};
use serde::{Deserialize, Serialize};

use crate::simulator::SimulationResult;

/// An online mean/variance accumulator over a stream of `f64` samples.
///
/// Uses Welford's algorithm for [`push`](Self::push) and Chan et al.'s
/// pairwise formula for [`merge`](Self::merge), so statistics of an
/// arbitrarily large sample stream are maintained in `O(1)` memory and
/// shard-level accumulators computed on different machines combine into
/// whole-stream statistics without ever shipping raw samples. This is the
/// streaming surface of distributed ensemble jobs: each worker folds its
/// trials into a `Moments` as they finish, and the coordinator merges
/// shard moments to expose running statistics of a million-trial job
/// while it is still in flight.
///
/// `merge` is mathematically exact but, like all floating-point
/// reductions, not bitwise associative — byte-pinned report fields use
/// exact accumulators instead ([`numerics::ExactSum`]); `Moments` is for
/// monitoring and summary statistics where `O(1)` state matters more
/// than last-bit reproducibility.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Moments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Moments::default()
    }

    /// Reconstructs an accumulator from its [`parts`](Self::parts) — the
    /// wire format shard moments travel in.
    pub fn from_parts(count: u64, mean: f64, m2: f64) -> Self {
        Moments { count, mean, m2 }
    }

    /// The raw `(count, mean, m2)` triple, where `m2` is the sum of
    /// squared deviations from the mean.
    pub fn parts(&self) -> (u64, f64, f64) {
        (self.count, self.mean, self.m2)
    }

    /// Folds one sample into the stream.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Combines another accumulator's stream into this one (Chan et al.'s
    /// parallel update), as if every sample of both streams had been
    /// pushed into a single accumulator.
    pub fn merge(&mut self, other: &Moments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64 / total as f64);
        self.count = total;
    }

    /// Number of samples accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 below two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Running mean/variance accumulator for the final count of one species.
///
/// Uses Welford's online algorithm so that ensembles of any size can be
/// accumulated without storing every sample.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpeciesStatistics {
    samples: u64,
    mean: f64,
    m2: f64,
    min: u64,
    max: u64,
}

impl SpeciesStatistics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SpeciesStatistics {
            samples: 0,
            mean: 0.0,
            m2: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Adds one observed final count.
    pub fn push(&mut self, count: u64) {
        self.samples += 1;
        let x = count as f64;
        let delta = x - self.mean;
        self.mean += delta / self.samples as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(count);
        self.max = self.max.max(count);
    }

    /// Number of samples accumulated.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Sample mean of the final count.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance of the final count.
    pub fn variance(&self) -> f64 {
        if self.samples < 2 {
            0.0
        } else {
            self.m2 / (self.samples - 1) as f64
        }
    }

    /// Sample standard deviation of the final count.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observed count (0 if no samples).
    pub fn min(&self) -> u64 {
        if self.samples == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observed count.
    pub fn max(&self) -> u64 {
        self.max
    }
}

/// Statistics of the final state of a set of trajectories, one accumulator
/// per species, plus event/time summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectorySummary {
    species: Vec<SpeciesStatistics>,
    events: SpeciesStatistics,
    total_time: f64,
    trajectories: u64,
}

impl TrajectorySummary {
    /// Creates a summary for a network with `species_len` species.
    pub fn new(species_len: usize) -> Self {
        TrajectorySummary {
            species: vec![SpeciesStatistics::new(); species_len],
            events: SpeciesStatistics::new(),
            total_time: 0.0,
            trajectories: 0,
        }
    }

    /// Creates a summary sized for `crn`.
    pub fn for_crn(crn: &Crn) -> Self {
        TrajectorySummary::new(crn.species_len())
    }

    /// Accumulates one finished trajectory.
    pub fn push(&mut self, result: &SimulationResult) {
        self.trajectories += 1;
        self.total_time += result.final_time;
        self.events.push(result.events);
        for (idx, stats) in self.species.iter_mut().enumerate() {
            stats.push(result.final_state.counts().get(idx).copied().unwrap_or(0));
        }
    }

    /// Returns the per-species accumulator.
    ///
    /// # Panics
    ///
    /// Panics if the species index is out of range.
    pub fn species(&self, species: SpeciesId) -> &SpeciesStatistics {
        &self.species[species.index()]
    }

    /// Statistics of the number of reaction events per trajectory.
    pub fn events(&self) -> &SpeciesStatistics {
        &self.events
    }

    /// Mean simulated end time per trajectory.
    pub fn mean_final_time(&self) -> f64 {
        if self.trajectories == 0 {
            0.0
        } else {
            self.total_time / self.trajectories as f64
        }
    }

    /// Number of trajectories accumulated.
    pub fn trajectories(&self) -> u64 {
        self.trajectories
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::StopReason;
    use crate::trajectory::Trajectory;
    use crn::State;

    #[test]
    fn welford_matches_direct_computation() {
        let samples = [3u64, 7, 7, 1, 12, 0, 5];
        let mut stats = SpeciesStatistics::new();
        for &s in &samples {
            stats.push(s);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / (n - 1.0);
        assert!((stats.mean() - mean).abs() < 1e-12);
        assert!((stats.variance() - var).abs() < 1e-9);
        assert_eq!(stats.min(), 0);
        assert_eq!(stats.max(), 12);
        assert_eq!(stats.samples(), 7);
    }

    #[test]
    fn moments_match_direct_computation() {
        let samples = [3.5f64, 7.0, 7.25, 1.0, 12.5, 0.0, 5.75];
        let mut moments = Moments::new();
        for &s in &samples {
            moments.push(s);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|&s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert_eq!(moments.count(), 7);
        assert!((moments.mean() - mean).abs() < 1e-12);
        assert!((moments.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn moments_merge_matches_single_stream() {
        let samples: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let mut whole = Moments::new();
        for &s in &samples {
            whole.push(s);
        }
        // Uneven shards, merged out of order — as a distributed job would.
        let mut merged = Moments::new();
        for shard in [&samples[700..], &samples[..13], &samples[13..700]] {
            let mut part = Moments::new();
            for &s in shard {
                part.push(s);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-12);
        assert!((merged.variance() - whole.variance()).abs() < 1e-9);
        // Merging empties is the identity in both directions.
        let snapshot = merged.clone();
        merged.merge(&Moments::new());
        assert_eq!(merged, snapshot);
        let mut empty = Moments::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn moments_round_trip_through_parts() {
        let mut moments = Moments::new();
        for x in [1.0, 2.5, 9.75] {
            moments.push(x);
        }
        let (count, mean, m2) = moments.parts();
        assert_eq!(Moments::from_parts(count, mean, m2), moments);
    }

    #[test]
    fn empty_statistics_are_well_defined() {
        let stats = SpeciesStatistics::new();
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.variance(), 0.0);
        assert_eq!(stats.std_dev(), 0.0);
        assert_eq!(stats.min(), 0);
        assert_eq!(stats.max(), 0);
    }

    #[test]
    fn summary_accumulates_trajectories() {
        let mut summary = TrajectorySummary::new(2);
        for (counts, time, events) in [(vec![1u64, 4], 1.0, 5u64), (vec![3, 2], 3.0, 7)] {
            summary.push(&SimulationResult {
                final_state: State::from_counts(counts),
                final_time: time,
                events,
                stop_reason: StopReason::ConditionMet,
                trajectory: Trajectory::new(),
            });
        }
        assert_eq!(summary.trajectories(), 2);
        assert_eq!(summary.species(SpeciesId::from_index(0)).mean(), 2.0);
        assert_eq!(summary.species(SpeciesId::from_index(1)).mean(), 3.0);
        assert_eq!(summary.events().mean(), 6.0);
        assert_eq!(summary.mean_final_time(), 2.0);
    }

    #[test]
    fn summary_sized_for_crn() {
        let crn: crn::Crn = "a -> b @ 1".parse().unwrap();
        let summary = TrajectorySummary::for_crn(&crn);
        assert_eq!(summary.trajectories(), 0);
        assert_eq!(summary.mean_final_time(), 0.0);
    }
}
