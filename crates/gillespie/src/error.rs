//! Error type for simulations.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running a stochastic simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimulationError {
    /// The initial state has a different number of species than the network.
    StateSizeMismatch {
        /// Species in the network.
        network: usize,
        /// Species in the supplied state.
        state: usize,
    },
    /// An underlying CRN operation failed.
    Crn(crn::CrnError),
    /// The simulation exceeded the configured hard limit on the number of
    /// reaction events without satisfying its stop condition.
    EventLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The ensemble runner was configured with zero trials or zero threads.
    InvalidEnsembleConfig {
        /// Description of the problem.
        message: String,
    },
    /// The run was cancelled through an external
    /// [`CancelToken`](crate::engine::CancelToken) before it finished.
    Cancelled,
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::StateSizeMismatch { network, state } => write!(
                f,
                "initial state has {state} species but the network has {network}"
            ),
            SimulationError::Crn(err) => write!(f, "network error: {err}"),
            SimulationError::EventLimitExceeded { limit } => {
                write!(
                    f,
                    "simulation exceeded the hard event limit of {limit} reactions"
                )
            }
            SimulationError::InvalidEnsembleConfig { message } => {
                write!(f, "invalid ensemble configuration: {message}")
            }
            SimulationError::Cancelled => write!(f, "simulation cancelled"),
        }
    }
}

impl Error for SimulationError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimulationError::Crn(err) => Some(err),
            _ => None,
        }
    }
}

impl From<crn::CrnError> for SimulationError {
    fn from(err: crn::CrnError) -> Self {
        SimulationError::Crn(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let errors = vec![
            SimulationError::StateSizeMismatch {
                network: 3,
                state: 2,
            },
            SimulationError::Crn(crn::CrnError::EmptyReaction),
            SimulationError::EventLimitExceeded { limit: 100 },
            SimulationError::InvalidEnsembleConfig {
                message: "zero trials".into(),
            },
            SimulationError::Cancelled,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn crn_errors_convert() {
        let err: SimulationError = crn::CrnError::EmptyReaction.into();
        assert!(matches!(err, SimulationError::Crn(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimulationError>();
    }
}
