//! The simulation driver shared by all SSA variants.

use crn::{Crn, State};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::SimulationError;
use crate::profile::SimProfile;
use crate::stop::StopCondition;
use crate::trajectory::{Recorder, RecordingMode, Trajectory};

/// The outcome of asking a stepper for the next reaction event (or leap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A single reaction fired; its index within the network is reported.
    Fired {
        /// Index of the reaction that fired.
        reaction: usize,
    },
    /// An approximate stepper advanced time by one leap, firing a batch of
    /// reactions at once.
    Leaped {
        /// Total number of reaction firings applied during the leap (may be
        /// zero when every Poisson draw came up empty).
        firings: u64,
    },
    /// No reaction can fire (total propensity is zero).
    Exhausted,
}

/// A single-step kernel of an SSA variant (exact or approximate).
///
/// Implementations own whatever per-run caches they need (propensity
/// vectors, putative-time queues, …); [`SsaStepper::initialize`] is called
/// once per trajectory before the first [`SsaStepper::step`].
///
/// The exact implementations are [`DirectMethod`](crate::DirectMethod),
/// [`FirstReactionMethod`](crate::FirstReactionMethod) and
/// [`NextReactionMethod`](crate::NextReactionMethod); they are statistically
/// equivalent. [`TauLeaping`](crate::TauLeaping) is approximate: it trades
/// exactness for leaps that fire many reactions per step, and reports
/// [`StepOutcome::Leaped`] instead of [`StepOutcome::Fired`].
pub trait SsaStepper {
    /// Prepares internal caches for a fresh trajectory of `crn` starting in
    /// `state`.
    fn initialize(&mut self, crn: &Crn, state: &State, rng: &mut StdRng);

    /// Selects the next reaction (or leap), applies it to `state`, advances
    /// `time` and reports what happened.
    fn step(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome;

    /// Hints that the driver will stop the trajectory once `time` reaches
    /// `t_stop`. Exact steppers ignore this (their per-event dynamics do not
    /// depend on the horizon), but leaping steppers clamp their step size so
    /// the trajectory lands exactly on the stop time instead of overshooting
    /// it — which is what keeps terminal-state distributions comparable with
    /// the exact methods. Called after [`SsaStepper::initialize`], only when
    /// the stop condition implies a time bound.
    fn set_time_limit(&mut self, _t_stop: f64) {}

    /// Work counters accumulated since the last [`SsaStepper::initialize`]
    /// (propensity evaluations, leap and RK45 accept/reject decisions).
    /// Purely observational — implementations must not let the counters
    /// influence stepping. The default reports zeros for uninstrumented
    /// steppers; driver-level `steps` are counted by the trial runner, not
    /// here.
    fn profile(&self) -> SimProfile {
        SimProfile::default()
    }

    /// A short human-readable name for reports and benchmarks.
    fn name(&self) -> &'static str;
}

/// Boxed steppers forward the trait, so a runtime-selected
/// [`StepperKind::stepper`] can drive a [`Simulation`] directly.
impl SsaStepper for Box<dyn SsaStepper + Send> {
    fn initialize(&mut self, crn: &Crn, state: &State, rng: &mut StdRng) {
        self.as_mut().initialize(crn, state, rng);
    }

    fn step(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        self.as_mut().step(crn, state, time, rng)
    }

    fn set_time_limit(&mut self, t_stop: f64) {
        self.as_mut().set_time_limit(t_stop);
    }

    fn profile(&self) -> SimProfile {
        self.as_ref().profile()
    }

    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
}

/// Identifies one of the built-in steppers; useful when the algorithm is
/// chosen at run time (CLI flags, benchmark sweeps, ensemble options).
///
/// The exact variants are statistically equivalent;
/// [`StepperKind::TauLeaping`] is approximate — distributionally faithful
/// within its error-control tolerance (pinned by the conformance harness in
/// `tests/statistical_validation.rs`) but not trajectory-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum StepperKind {
    /// Gillespie's direct method.
    #[default]
    Direct,
    /// Gillespie's first-reaction method.
    FirstReaction,
    /// Gibson–Bruck next-reaction method.
    NextReaction,
    /// Composition–rejection method: log₂-binned groups with rejection
    /// sampling, `O(1)` expected selection independent of network size
    /// (exact; best for large networks).
    CompositionRejection,
    /// Explicit Poisson tau-leaping with Cao–Gillespie adaptive step
    /// selection (approximate, fast for high-population networks).
    TauLeaping,
    /// Hybrid multiscale stepper: high-propensity channels with population
    /// headroom are tau-leaped or integrated as a deterministic RK45 mean
    /// field, while the slow remainder fires exactly from its integrated
    /// hazard (approximate, built for stiff fast/slow networks).
    Hybrid,
    /// Adaptive portfolio: classify the network (size, propensity spread,
    /// leap occupancy from a short deterministic pilot run) and delegate to
    /// the empirically best concrete stepper. Resolve with
    /// [`StepperKind::resolve`] (or [`classify`](crate::classify) for the
    /// full feature report) before instantiating a stepper; the ensemble
    /// runner and the service do this automatically and record the resolved
    /// concrete kind in their reports.
    Auto,
}

/// Backwards-compatible name for [`StepperKind`], predating the addition of
/// approximate steppers.
pub type SsaMethod = StepperKind;

impl StepperKind {
    /// All built-in *concrete* methods (exact and approximate), convenient
    /// for sweeps. [`StepperKind::Auto`] is deliberately absent: it always
    /// resolves to one of these.
    pub const ALL: [StepperKind; 6] = [
        StepperKind::Direct,
        StepperKind::FirstReaction,
        StepperKind::NextReaction,
        StepperKind::CompositionRejection,
        StepperKind::TauLeaping,
        StepperKind::Hybrid,
    ];

    /// The exact methods only — use this for assertions that rely on exact
    /// per-event statistics.
    pub const EXACT: [StepperKind; 4] = [
        StepperKind::Direct,
        StepperKind::FirstReaction,
        StepperKind::NextReaction,
        StepperKind::CompositionRejection,
    ];

    /// Instantiates a fresh stepper for this method.
    ///
    /// # Panics
    ///
    /// Panics on [`StepperKind::Auto`]: the portfolio is a *selection
    /// policy*, not a stepper, and must be resolved against a concrete
    /// network and initial state first via [`StepperKind::resolve`].
    pub fn stepper(self) -> Box<dyn SsaStepper + Send> {
        match self {
            StepperKind::Direct => Box::new(crate::DirectMethod::new()),
            StepperKind::FirstReaction => Box::new(crate::FirstReactionMethod::new()),
            StepperKind::NextReaction => Box::new(crate::NextReactionMethod::new()),
            StepperKind::CompositionRejection => Box::new(crate::CompositionRejection::new()),
            StepperKind::TauLeaping => Box::new(crate::TauLeaping::new()),
            StepperKind::Hybrid => Box::new(crate::Hybrid::new()),
            StepperKind::Auto => {
                panic!(
                    "StepperKind::Auto must be resolved against a network first: \
                        call `kind.resolve(&crn, &initial)` and instantiate the result"
                )
            }
        }
    }

    /// Resolves this kind to a concrete stepper kind for the given network
    /// and initial state. Concrete kinds return themselves unchanged;
    /// [`StepperKind::Auto`] runs the [`classify`](crate::classify)
    /// portfolio classifier, whose verdict is a deterministic pure function
    /// of `(crn, initial)` — the pilot run uses a fixed internal seed, so
    /// the same request always resolves to the same kind on every thread,
    /// process and machine.
    pub fn resolve(self, crn: &Crn, initial: &State) -> StepperKind {
        match self {
            StepperKind::Auto => crate::auto::classify(crn, initial).resolved,
            concrete => concrete,
        }
    }

    /// A short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            StepperKind::Direct => "direct",
            StepperKind::FirstReaction => "first-reaction",
            StepperKind::NextReaction => "next-reaction",
            StepperKind::CompositionRejection => "composition-rejection",
            StepperKind::TauLeaping => "tau-leaping",
            StepperKind::Hybrid => "hybrid",
            StepperKind::Auto => "auto",
        }
    }

    /// Returns `true` for the exact SSA variants, `false` for approximate
    /// ones. [`StepperKind::Auto`] reports `false`: it may resolve to
    /// tau-leaping, so exactness cannot be promised before resolution.
    pub fn is_exact(self) -> bool {
        !matches!(
            self,
            StepperKind::TauLeaping | StepperKind::Hybrid | StepperKind::Auto
        )
    }
}

/// Selects an index by inverting the discrete CDF over `weights` (total mass
/// `total`), consuming exactly one uniform draw. Floating-point round-off can
/// land past the last positive weight; the scan walks back to a positive one.
///
/// Shared by [`DirectMethod`](crate::DirectMethod) and tau-leaping's exact
/// fallback steps so both consume the RNG stream identically.
pub(crate) fn select_by_weight(weights: &[f64], total: f64, rng: &mut StdRng) -> usize {
    use rand::Rng as _;
    let target: f64 = rng.gen::<f64>() * total;
    let mut acc = 0.0;
    let mut chosen = weights.len() - 1;
    for (idx, &w) in weights.iter().enumerate() {
        acc += w;
        if target < acc {
            chosen = idx;
            break;
        }
    }
    while weights[chosen] <= 0.0 && chosen > 0 {
        chosen -= 1;
    }
    chosen
}

/// Options controlling a single stochastic trajectory.
///
/// The builder-style setters return `self`, so options are typically
/// constructed inline:
///
/// ```
/// use gillespie::{RecordingMode, SimulationOptions, StopCondition};
///
/// let options = SimulationOptions::new()
///     .seed(42)
///     .stop(StopCondition::time(100.0))
///     .recording(RecordingMode::Interval(1.0))
///     .max_events(1_000_000);
/// assert_eq!(options.seed_value(), Some(42));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationOptions {
    seed: Option<u64>,
    stop: StopCondition,
    recording: RecordingMode,
    max_events: u64,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            seed: None,
            stop: StopCondition::Exhaustion,
            recording: RecordingMode::FinalOnly,
            max_events: u64::MAX,
        }
    }
}

impl SimulationOptions {
    /// Creates default options: run to exhaustion, record only the final
    /// state, seed from system entropy, no event limit.
    pub fn new() -> Self {
        SimulationOptions::default()
    }

    /// Uses a fixed RNG seed, making the trajectory reproducible.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the stop condition.
    pub fn stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Sets the trajectory recording mode.
    pub fn recording(mut self, recording: RecordingMode) -> Self {
        self.recording = recording;
        self
    }

    /// Sets a hard limit on the number of reaction events; exceeding it is
    /// reported as [`SimulationError::EventLimitExceeded`]. This is a safety
    /// net against networks that never satisfy their stop condition.
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Returns the configured seed, if any.
    pub fn seed_value(&self) -> Option<u64> {
        self.seed
    }

    /// Returns the configured stop condition.
    pub fn stop_condition(&self) -> &StopCondition {
        &self.stop
    }

    pub(crate) fn make_rng(&self) -> StdRng {
        match self.seed {
            Some(seed) => StdRng::seed_from_u64(seed),
            None => StdRng::from_entropy(),
        }
    }
}

/// Why a trajectory terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The configured [`StopCondition`] was satisfied.
    ConditionMet,
    /// No reaction could fire any more.
    Exhausted,
}

/// The result of a single stochastic trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// The state at the end of the trajectory.
    pub final_state: State,
    /// The simulated time at the end of the trajectory.
    pub final_time: f64,
    /// The number of reaction events that fired.
    pub events: u64,
    /// Why the trajectory stopped.
    pub stop_reason: StopReason,
    /// Recorded snapshots (depends on [`RecordingMode`]).
    pub trajectory: Trajectory,
}

/// A single-trajectory simulation of a network with a chosen SSA kernel.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug)]
pub struct Simulation<'a, S> {
    crn: &'a Crn,
    stepper: S,
    options: SimulationOptions,
}

impl<'a, S: SsaStepper> Simulation<'a, S> {
    /// Creates a simulation of `crn` using the given stepper.
    pub fn new(crn: &'a Crn, stepper: S) -> Self {
        Simulation {
            crn,
            stepper,
            options: SimulationOptions::default(),
        }
    }

    /// Replaces the simulation options.
    pub fn options(mut self, options: SimulationOptions) -> Self {
        self.options = options;
        self
    }

    /// Returns the network being simulated.
    pub fn crn(&self) -> &Crn {
        self.crn
    }

    /// Runs one trajectory from `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::StateSizeMismatch`] if the state does not
    /// match the network and [`SimulationError::EventLimitExceeded`] if the
    /// configured hard event limit is hit.
    pub fn run(&mut self, initial: &State) -> Result<SimulationResult, SimulationError> {
        run_with(self.crn, &mut self.stepper, &self.options, initial)
    }

    /// Runs one trajectory from `initial`, accumulating work counters into
    /// `profile`. The result is bit-identical to [`Simulation::run`] —
    /// profiling observes the run without touching the RNG or the dynamics.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Simulation::run`].
    pub fn run_profiled(
        &mut self,
        initial: &State,
        profile: &mut SimProfile,
    ) -> Result<SimulationResult, SimulationError> {
        if initial.species_len() != self.crn.species_len() {
            return Err(SimulationError::StateSizeMismatch {
                network: self.crn.species_len(),
                state: initial.species_len(),
            });
        }
        let mut rng = self.options.make_rng();
        run_trial_profiled(
            self.crn,
            &mut self.stepper,
            &self.options,
            initial.clone(),
            &mut rng,
            profile,
        )
    }
}

/// Runs one trajectory with an explicit stepper; this is the function both
/// [`Simulation::run`] and the ensemble runner share.
pub(crate) fn run_with(
    crn: &Crn,
    stepper: &mut dyn SsaStepper,
    options: &SimulationOptions,
    initial: &State,
) -> Result<SimulationResult, SimulationError> {
    if initial.species_len() != crn.species_len() {
        return Err(SimulationError::StateSizeMismatch {
            network: crn.species_len(),
            state: initial.species_len(),
        });
    }
    let mut rng = options.make_rng();
    run_trial(crn, stepper, options, initial.clone(), &mut rng)
}

/// Runs one trajectory on an owned, already-primed state with an explicit
/// RNG. The state's allocation travels into the returned
/// [`SimulationResult::final_state`], which is how the ensemble engine
/// recycles one state buffer across thousands of trials (it takes the buffer
/// back out of the result and re-primes it with `clone_from`). The caller is
/// responsible for size-checking `state` against `crn`.
pub(crate) fn run_trial(
    crn: &Crn,
    stepper: &mut dyn SsaStepper,
    options: &SimulationOptions,
    state: State,
    rng: &mut StdRng,
) -> Result<SimulationResult, SimulationError> {
    let mut profile = SimProfile::default();
    run_trial_profiled(crn, stepper, options, state, rng, &mut profile)
}

/// [`run_trial`] with work counters folded into `profile`: driver steps are
/// counted here, the stepper's own counters (propensity evaluations, leap
/// and RK45 accept/reject) are collected once after the trajectory ends.
/// Profiling is pure observation — the control flow, RNG consumption and
/// result are identical to the unprofiled path.
pub(crate) fn run_trial_profiled(
    crn: &Crn,
    stepper: &mut dyn SsaStepper,
    options: &SimulationOptions,
    state: State,
    rng: &mut StdRng,
    profile: &mut SimProfile,
) -> Result<SimulationResult, SimulationError> {
    debug_assert_eq!(state.species_len(), crn.species_len());
    let mut state = state;
    let mut time = 0.0f64;
    let mut events = 0u64;
    let mut recorder = Recorder::new(options.recording);
    recorder.record_initial(&state);
    stepper.initialize(crn, &state, rng);
    if let Some(t_stop) = options.stop.time_bound() {
        stepper.set_time_limit(t_stop);
    }

    let stop_reason = loop {
        if options.stop.is_met(time, events, &state) {
            break StopReason::ConditionMet;
        }
        if events >= options.max_events {
            return Err(SimulationError::EventLimitExceeded {
                limit: options.max_events,
            });
        }
        match stepper.step(crn, &mut state, &mut time, rng) {
            StepOutcome::Fired { .. } => {
                profile.steps += 1;
                events += 1;
                recorder.record(time, &state);
            }
            StepOutcome::Leaped { firings } => {
                profile.steps += 1;
                events += firings;
                recorder.record(time, &state);
            }
            StepOutcome::Exhausted => break StopReason::Exhausted,
        }
    };
    profile.merge(&stepper.profile());

    Ok(SimulationResult {
        final_state: state,
        final_time: time,
        events,
        stop_reason,
        trajectory: recorder.trajectory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectMethod;

    fn isomerisation() -> Crn {
        "a -> b @ 1".parse().unwrap()
    }

    #[test]
    fn runs_to_exhaustion() {
        let crn = isomerisation();
        let initial = crn.state_from_counts([("a", 50)]).unwrap();
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(SimulationOptions::new().seed(1))
            .run(&initial)
            .unwrap();
        assert_eq!(result.events, 50);
        assert_eq!(result.stop_reason, StopReason::Exhausted);
        assert_eq!(result.final_state.count(crn.species_id("b").unwrap()), 50);
        assert!(result.final_time > 0.0);
    }

    #[test]
    fn stops_on_event_count() {
        let crn = isomerisation();
        let initial = crn.state_from_counts([("a", 50)]).unwrap();
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(
                SimulationOptions::new()
                    .seed(1)
                    .stop(StopCondition::events(10)),
            )
            .run(&initial)
            .unwrap();
        assert_eq!(result.events, 10);
        assert_eq!(result.stop_reason, StopReason::ConditionMet);
    }

    #[test]
    fn enforces_event_limit() {
        // A source reaction never exhausts.
        let crn: Crn = "0 -> a @ 1".parse().unwrap();
        let initial = crn.zero_state();
        let err = Simulation::new(&crn, DirectMethod::new())
            .options(SimulationOptions::new().seed(1).max_events(100))
            .run(&initial)
            .unwrap_err();
        assert!(matches!(
            err,
            SimulationError::EventLimitExceeded { limit: 100 }
        ));
    }

    #[test]
    fn rejects_mismatched_state() {
        let crn = isomerisation();
        let err = Simulation::new(&crn, DirectMethod::new())
            .run(&State::zero(5))
            .unwrap_err();
        assert!(matches!(err, SimulationError::StateSizeMismatch { .. }));
    }

    #[test]
    fn fixed_seed_reproduces_trajectory() {
        let crn: Crn = "a -> b @ 1\nb -> a @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 100)]).unwrap();
        let opts = SimulationOptions::new()
            .seed(99)
            .stop(StopCondition::events(1000));
        let r1 = Simulation::new(&crn, DirectMethod::new())
            .options(opts.clone())
            .run(&initial)
            .unwrap();
        let r2 = Simulation::new(&crn, DirectMethod::new())
            .options(opts)
            .run(&initial)
            .unwrap();
        assert_eq!(r1.final_state, r2.final_state);
        assert_eq!(r1.final_time, r2.final_time);
    }

    #[test]
    fn recording_every_event_captures_all_states() {
        let crn = isomerisation();
        let initial = crn.state_from_counts([("a", 10)]).unwrap();
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(
                SimulationOptions::new()
                    .seed(3)
                    .recording(RecordingMode::EveryEvent),
            )
            .run(&initial)
            .unwrap();
        // initial snapshot + one per event
        assert_eq!(result.trajectory.len() as u64, result.events + 1);
    }

    #[test]
    fn profiled_run_is_bit_identical_and_counts_work() {
        let crn: Crn = "a -> b @ 1\nb -> a @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 100)]).unwrap();
        let opts = SimulationOptions::new()
            .seed(7)
            .stop(StopCondition::events(500));
        let plain = Simulation::new(&crn, DirectMethod::new())
            .options(opts.clone())
            .run(&initial)
            .unwrap();
        let mut profile = SimProfile::default();
        let profiled = Simulation::new(&crn, DirectMethod::new())
            .options(opts)
            .run_profiled(&initial, &mut profile)
            .unwrap();
        assert_eq!(profiled, plain, "profiling must not perturb the run");
        assert_eq!(profile.steps, 500);
        assert!(
            // Priming evaluates both channels; each event refreshes its
            // dependents.
            profile.propensity_evals > 500,
            "direct method re-evaluates dependents per event: {profile:?}"
        );
        assert_eq!(profile.rk45_accepted, 0);
    }

    #[test]
    fn profiled_tau_leaping_counts_leaps() {
        let crn: Crn = "a -> b @ 1\nb -> a @ 1".parse().unwrap();
        let initial = crn
            .state_from_counts([("a", 10_000), ("b", 10_000)])
            .unwrap();
        let mut profile = SimProfile::default();
        let result = Simulation::new(&crn, crate::TauLeaping::new())
            .options(
                SimulationOptions::new()
                    .seed(5)
                    .stop(StopCondition::time(1.0)),
            )
            .run_profiled(&initial, &mut profile)
            .unwrap();
        assert!(result.events > 1_000);
        assert!(
            profile.leaps_accepted > 0,
            "high-population run must commit leaps: {profile:?}"
        );
        assert!(profile.steps >= profile.leaps_accepted);
    }

    #[test]
    fn ssa_method_enum_creates_steppers() {
        for method in SsaMethod::ALL {
            let stepper = method.stepper();
            assert_eq!(stepper.name(), method.name());
        }
        assert_eq!(SsaMethod::default(), SsaMethod::Direct);
    }
}
