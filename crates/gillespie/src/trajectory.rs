//! Trajectory recording.

use crn::State;
use serde::{Deserialize, Serialize};

/// What to record while a trajectory unfolds.
///
/// Recording every event of a stiff network (the DAC'07 stochastic module
/// with γ = 10⁵ fires millions of fast reactions) is expensive; most users
/// only need the final state or sparse snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RecordingMode {
    /// Record nothing but the final state (the default).
    #[default]
    FinalOnly,
    /// Record the state after every stepper step. For the exact SSA
    /// variants a step is a single reaction event, so the trajectory holds
    /// one point per event (`trajectory.len() == events + 1`). For
    /// [`TauLeaping`](crate::TauLeaping) a step is one *leap* covering a
    /// whole batch of firings, so points are per leap and far sparser than
    /// [`SimulationResult::events`](crate::SimulationResult::events); use an
    /// exact stepper for per-event analyses.
    EveryEvent,
    /// Record the state at most once per `interval` of simulated time.
    Interval(f64),
}

/// A single recorded point of a trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Simulated time of the snapshot.
    pub time: f64,
    /// Species counts at that time.
    pub state: State,
}

/// A recorded stochastic trajectory.
///
/// Construct trajectories through
/// [`Simulation::run`](crate::Simulation::run); the recording density is
/// controlled by [`RecordingMode`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<TrajectoryPoint>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Trajectory::default()
    }

    /// Appends a snapshot.
    pub fn push(&mut self, time: f64, state: State) {
        self.points.push(TrajectoryPoint { time, state });
    }

    /// Returns the recorded points in chronological order.
    pub fn points(&self) -> &[TrajectoryPoint] {
        &self.points
    }

    /// Returns the number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the last recorded point, if any.
    pub fn last(&self) -> Option<&TrajectoryPoint> {
        self.points.last()
    }

    /// Returns the count of `species` over time as `(time, count)` pairs.
    pub fn series(&self, species: crn::SpeciesId) -> Vec<(f64, u64)> {
        self.points
            .iter()
            .map(|p| (p.time, p.state.count(species)))
            .collect()
    }

    /// Returns the state recorded at or immediately before `time`
    /// (zero-order hold), if any point precedes it.
    pub fn state_at(&self, time: f64) -> Option<&State> {
        self.points
            .iter()
            .take_while(|p| p.time <= time)
            .last()
            .map(|p| &p.state)
    }
}

impl FromIterator<TrajectoryPoint> for Trajectory {
    fn from_iter<I: IntoIterator<Item = TrajectoryPoint>>(iter: I) -> Self {
        Trajectory {
            points: iter.into_iter().collect(),
        }
    }
}

/// Internal helper deciding whether a snapshot should be recorded.
#[derive(Debug, Clone)]
pub(crate) struct Recorder {
    mode: RecordingMode,
    next_sample_time: f64,
    pub(crate) trajectory: Trajectory,
}

impl Recorder {
    pub(crate) fn new(mode: RecordingMode) -> Self {
        Recorder {
            mode,
            next_sample_time: 0.0,
            trajectory: Trajectory::new(),
        }
    }

    /// Records the initial state unconditionally (except in `FinalOnly` mode).
    pub(crate) fn record_initial(&mut self, state: &State) {
        match self.mode {
            RecordingMode::FinalOnly => {}
            RecordingMode::EveryEvent => self.trajectory.push(0.0, state.clone()),
            RecordingMode::Interval(interval) => {
                self.trajectory.push(0.0, state.clone());
                self.next_sample_time = interval;
            }
        }
    }

    /// Possibly records the state reached at `time`.
    pub(crate) fn record(&mut self, time: f64, state: &State) {
        match self.mode {
            RecordingMode::FinalOnly => {}
            RecordingMode::EveryEvent => self.trajectory.push(time, state.clone()),
            RecordingMode::Interval(interval) => {
                if time >= self.next_sample_time {
                    self.trajectory.push(time, state.clone());
                    // Skip forward past any empty sampling intervals.
                    while self.next_sample_time <= time {
                        self.next_sample_time += interval;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn::SpeciesId;

    fn state(counts: &[u64]) -> State {
        State::from_counts(counts.to_vec())
    }

    #[test]
    fn final_only_records_nothing() {
        let mut rec = Recorder::new(RecordingMode::FinalOnly);
        rec.record_initial(&state(&[1]));
        rec.record(1.0, &state(&[2]));
        assert!(rec.trajectory.is_empty());
    }

    #[test]
    fn every_event_records_all() {
        let mut rec = Recorder::new(RecordingMode::EveryEvent);
        rec.record_initial(&state(&[1]));
        rec.record(0.5, &state(&[2]));
        rec.record(0.7, &state(&[3]));
        assert_eq!(rec.trajectory.len(), 3);
        assert_eq!(rec.trajectory.last().unwrap().time, 0.7);
    }

    #[test]
    fn interval_mode_subsamples() {
        let mut rec = Recorder::new(RecordingMode::Interval(1.0));
        rec.record_initial(&state(&[0]));
        for i in 1..=10 {
            rec.record(i as f64 * 0.25, &state(&[i]));
        }
        // Samples at t=0 plus one per unit interval crossed (t=1.0, 2.0, 2.5).
        assert!(rec.trajectory.len() >= 3 && rec.trajectory.len() <= 4);
        // Times are non-decreasing.
        let times: Vec<f64> = rec.trajectory.points().iter().map(|p| p.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn series_and_state_at() {
        let mut t = Trajectory::new();
        t.push(0.0, state(&[5, 0]));
        t.push(1.0, state(&[4, 1]));
        t.push(2.0, state(&[3, 2]));
        let s0 = SpeciesId::from_index(0);
        assert_eq!(t.series(s0), vec![(0.0, 5), (1.0, 4), (2.0, 3)]);
        assert_eq!(t.state_at(1.5).unwrap().count(s0), 4);
        assert_eq!(t.state_at(5.0).unwrap().count(s0), 3);
        assert!(Trajectory::new().state_at(1.0).is_none());
    }

    #[test]
    fn collect_from_points() {
        let t: Trajectory = vec![TrajectoryPoint {
            time: 0.0,
            state: state(&[1]),
        }]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 1);
    }
}
