//! Composition–rejection SSA for large reaction networks.

use crn::{Crn, State};
use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::ReactionDependencyGraph;
use crate::propensity::PropensitySet;
use crate::simulator::{SsaStepper, StepOutcome};

/// Sentinel for "this reaction is in no group" (zero propensity).
const NO_GROUP: i32 = i32::MIN;

/// The composition–rejection SSA (Slepoy, Thompson & Plimpton 2008):
/// exact Gillespie dynamics with **O(1) expected channel selection**,
/// independent of the number of reactions.
///
/// Propensities are partitioned into log₂-binned groups: group `g` holds
/// every channel whose propensity lies in `[2ᵍ, 2ᵍ⁺¹)`. Selecting the next
/// reaction is a two-level draw:
///
/// 1. **Composition** — pick a group with probability proportional to its
///    propensity sum (a walk over the active groups; their number is
///    bounded by the *dynamic range* of the propensities — `log₂(aₘₐₓ/aₘᵢₙ)`
///    — not by the reaction count).
/// 2. **Rejection** — inside the group, draw a uniform member and accept it
///    with probability `a / 2ᵍ⁺¹`. Every member's acceptance probability is
///    at least ½ by construction, so the expected number of rounds is < 2
///    regardless of group size.
///
/// The direct method's per-event `O(R)` CDF scan disappears; what remains
/// per event is the `O(D)` incremental propensity refresh driven by the
/// engine's shared [`ReactionDependencyGraph`] — after a firing, only the
/// dependent channels are re-evaluated (in one pass over the
/// [`PropensitySet`]'s contiguous SoA arrays) and moved between bins.
///
/// # Exact group-sum bookkeeping
///
/// The one subtlety of incremental composition–rejection is the group sums:
/// maintained as plain `f64` running sums (`sum += a_new − a_old`) they
/// drift away from a from-scratch recompute, making trajectories depend on
/// the *history* of the data structure rather than its contents. This
/// implementation exploits the binning invariant to make the sums exact by
/// construction: every member of binade `g` is `m · 2^(g−52)` for an
/// integer significand `m` (`2⁵² ≤ m < 2⁵³`), so a group's exact sum is
/// `(Σ m) · 2^(g−52)` — and `Σ m` is a plain integer, maintained
/// incrementally in a `u128` with arithmetic that cannot round, drift, or
/// depend on operation order. The `f64` readout (one round-to-nearest of
/// the integer, one exact power-of-two multiply) is therefore a pure
/// function of the group's current members: a stepper that has
/// incrementally tracked millions of firings reports **bitwise** the same
/// group sums as a fresh stepper initialised from the final state, which
/// is pinned by the property tests in `tests/proptests.rs` (and is what
/// keeps ensemble reports bit-identical across thread counts, like every
/// other stepper). The same readout is what a [`numerics::ExactSum`]
/// superaccumulator computes for the same multiset — the unit tests pin
/// the two against each other — but the integer ledger needs two machine
/// adds per update instead of limb-array bookkeeping, which is what
/// removed the small-network floor the `ssa_methods` benchmark used to
/// show.
///
/// A constant-factor refinement rides along: the groups live in a
/// binade-sorted `Vec` rather than a `BTreeMap`. Their number is bounded
/// by the propensity dynamic range (a few dozen in practice), so
/// binary-searched inserts stay cheap while the per-event composition walk
/// becomes a linear scan over contiguous memory.
///
/// # When to use it
///
/// The `ssa_methods` benchmark (see the README's solver guide) shows the
/// selection cost staying flat from hundreds to thousands of reactions
/// while the direct method degrades linearly. Prefer it for large networks
/// — gene-regulatory trees, DNA-computing cascades, `crn::generators`
/// scale models. For small networks the direct method's lower constant
/// wins; for sparse networks whose propensities span many binades,
/// [`NextReactionMethod`](crate::NextReactionMethod) is the alternative.
/// [`StepperKind::Auto`](crate::StepperKind) applies exactly that decision
/// table automatically.
#[derive(Debug, Default, Clone)]
pub struct CompositionRejection {
    propensities: PropensitySet,
    deps: ReactionDependencyGraph,
    /// Binade of each reaction's propensity (`NO_GROUP` when zero).
    group_of: Vec<i32>,
    /// Index of each reaction within its group's member list.
    slot_of: Vec<usize>,
    /// Binade groups, sorted by ascending binade. A group that empties is
    /// kept as a shell rather than removed: its sum is exactly `0.0`, which
    /// is invisible to both the total (`x + 0.0 == x` bitwise for the
    /// non-negative sums here) and the composition walk, and keeping it
    /// avoids memmove churn of these ledger-carrying structs every time a
    /// propensity oscillates across a binade boundary. The shell count is
    /// bounded by the dynamic range of binades ever visited.
    groups: Vec<Group>,
}

/// One log₂ bin of channels, with its exact propensity-sum ledger.
#[derive(Debug, Clone)]
struct Group {
    binade: i32,
    members: Vec<usize>,
    /// Exact integer ledger: the sum of the members' significands. Each
    /// member's propensity is `m · 2^(binade − 52)` for the integer `m`
    /// extracted by [`significand`], so this sum times that power of two
    /// *is* the exact group sum. `u128` cannot overflow: `m < 2⁵³` and the
    /// member count is bounded by the reaction count.
    sum_sig: u128,
    /// Cached `f64` readout of the ledger; refreshed lazily (`dirty`).
    cached_sum: f64,
    dirty: bool,
}

impl Group {
    fn new(binade: i32) -> Self {
        Group {
            binade,
            members: Vec::new(),
            sum_sig: 0,
            cached_sum: 0.0,
            dirty: true,
        }
    }
}

/// Binade (floor of log₂) of a positive, finite propensity.
#[inline]
fn binade(a: f64) -> i32 {
    debug_assert!(a > 0.0 && a.is_finite(), "propensity must be positive");
    let bits = a.to_bits();
    let exp_field = ((bits >> 52) & 0x7ff) as i32;
    if exp_field != 0 {
        exp_field - 1023
    } else {
        // Subnormal: the binade is set by the highest mantissa bit.
        let mantissa = bits & ((1 << 52) - 1);
        (63 - mantissa.leading_zeros() as i32) - 1074
    }
}

/// `2^(g+1)`, the exclusive upper bound of binade `g` (saturating — a
/// propensity in the top binade cannot exist, but stay defensive).
#[inline]
fn binade_sup(g: i32) -> f64 {
    if g >= 1023 {
        f64::MAX
    } else if g + 1 >= -1022 {
        f64::from_bits(((g + 1 + 1023) as u64) << 52)
    } else {
        // Subnormal power of two: bare mantissa bit at position e + 1074.
        f64::from_bits(1u64 << (g + 1 + 1074))
    }
}

/// The integer significand of propensity `a` in binade `g`: the `m` such
/// that `a = m · 2^(g − 52)` for normal `a`, or `a = m · 2^(−1074)` for
/// subnormal `a` (where the exponent is fixed and the mantissa carries no
/// implicit bit). Exact — both forms read the bits straight out of the
/// IEEE representation.
#[inline]
fn significand(a: f64, g: i32) -> u128 {
    const MANTISSA: u64 = (1 << 52) - 1;
    let bits = a.to_bits() & MANTISSA;
    if g >= -1022 {
        (bits | (1 << 52)) as u128
    } else {
        bits as u128
    }
}

/// Rounds a group's exact integer ledger to the nearest `f64`.
///
/// The exact sum is `sum_sig · 2^e` with `e = g − 52` (normal binades) or
/// `e = −1074` (subnormal binades, whose members all share that fixed
/// exponent). `u128 as f64` rounds the integer to nearest (ties to even)
/// once; the power-of-two multiply is then exact, because a non-empty
/// normal-binade group sums to at least `2^g ≥ 2^−1022` (no subnormal
/// rounding) and a subnormal-scale product of an integer `< 2⁵³` is always
/// representable. This is bit-for-bit the readout a
/// [`numerics::ExactSum`] superaccumulator holding the same members
/// produces — both are a single round-to-nearest of the same exact value
/// — pinned by the `integer_ledger_matches_the_superaccumulator` test.
#[inline]
fn readout(sum_sig: u128, g: i32) -> f64 {
    let exp = if g >= -1022 { g - 52 } else { -1074 };
    let scale = if exp >= -1022 {
        f64::from_bits(((exp + 1023) as u64) << 52)
    } else {
        f64::from_bits(1u64 << (exp + 1074))
    };
    (sum_sig as f64) * scale
}

/// The sum of `group`, refreshing its cache if an update dirtied it. Clean
/// groups — the common case, since a firing dirties only the handful of
/// groups holding its dependents — cost a single `f64` load, so the
/// per-event `total()` and composition walk stay cheap even when they
/// visit every group twice.
#[inline]
fn group_sum(group: &mut Group) -> f64 {
    if group.dirty {
        group.cached_sum = readout(group.sum_sig, group.binade);
        group.dirty = false;
    }
    group.cached_sum
}

impl CompositionRejection {
    /// Creates a new composition–rejection stepper.
    pub fn new() -> Self {
        CompositionRejection::default()
    }

    /// Index of binade `g` in the sorted group vector.
    #[inline]
    fn group_index(&self, g: i32) -> Result<usize, usize> {
        self.groups.binary_search_by(|group| group.binade.cmp(&g))
    }

    /// Inserts reaction `r` (propensity `a > 0`) into its binade group.
    fn insert(&mut self, r: usize, a: f64) {
        let g = binade(a);
        let idx = match self.group_index(g) {
            Ok(idx) => idx,
            Err(idx) => {
                self.groups.insert(idx, Group::new(g));
                idx
            }
        };
        let group = &mut self.groups[idx];
        self.group_of[r] = g;
        self.slot_of[r] = group.members.len();
        group.members.push(r);
        group.sum_sig += significand(a, g);
        group.dirty = true;
    }

    /// Removes reaction `r` (old propensity `a_old > 0`) from its group.
    /// An emptied group stays in place as a zero-sum shell (see `groups`).
    fn evict(&mut self, r: usize, a_old: f64) {
        let g = self.group_of[r];
        let slot = self.slot_of[r];
        let idx = self.group_index(g).expect("member implies group");
        let group = &mut self.groups[idx];
        group.members.swap_remove(slot);
        if let Some(&moved) = group.members.get(slot) {
            self.slot_of[moved] = slot;
        }
        group.sum_sig -= significand(a_old, g);
        group.dirty = true;
        self.group_of[r] = NO_GROUP;
        debug_assert!(
            !group.members.is_empty() || group.sum_sig == 0,
            "emptied group must sum to 0"
        );
    }

    /// Records that reaction `r`'s propensity changed from `a_old` to
    /// `a_new`, moving it between bins only when its binade actually
    /// changed — the common stay-in-binade case is a pair of O(1) ledger
    /// digit updates.
    fn update(&mut self, r: usize, a_new: f64) {
        let a_old = self.propensities.value(r);
        if a_old.to_bits() == a_new.to_bits() {
            return;
        }
        self.propensities.store(r, a_new);
        match (a_old > 0.0, a_new > 0.0) {
            (false, false) => {}
            (false, true) => self.insert(r, a_new),
            (true, false) => self.evict(r, a_old),
            (true, true) => {
                let g_new = binade(a_new);
                if self.group_of[r] == g_new {
                    let idx = self.group_index(g_new).expect("member implies group");
                    let group = &mut self.groups[idx];
                    group.sum_sig =
                        group.sum_sig - significand(a_old, g_new) + significand(a_new, g_new);
                    group.dirty = true;
                } else {
                    self.evict(r, a_old);
                    self.insert(r, a_new);
                }
            }
        }
    }

    /// Total propensity: the sum of the group sums, accumulated in
    /// ascending-binade order (deterministic, and identical to what a fresh
    /// rebuild computes because each group sum is ledger-exact).
    fn total(&mut self) -> f64 {
        self.groups.iter_mut().map(group_sum).sum()
    }

    /// The incrementally maintained propensity vector — the values the
    /// rejection stage actually samples against. Diagnostic entry point for
    /// the property-test suite, which pins it bitwise against a full
    /// recompute from the current state.
    pub fn maintained_propensities(&self) -> &[f64] {
        self.propensities.values()
    }

    /// Diagnostic/validation snapshot of the group bookkeeping: for every
    /// occupied binade (ascending), its exact propensity sum and its member
    /// reactions (sorted). The property-test suite compares this bitwise
    /// against a freshly initialised stepper after arbitrary firing
    /// sequences; it is not part of the simulation hot path, so it always
    /// re-rounds the integer ledger (bypassing the cache) and skips the
    /// empty shells the hot path carries.
    pub fn group_ledger(&mut self) -> Vec<(i32, f64, Vec<usize>)> {
        self.groups
            .iter()
            .filter(|group| !group.members.is_empty())
            .map(|group| {
                let mut members = group.members.clone();
                members.sort_unstable();
                (group.binade, readout(group.sum_sig, group.binade), members)
            })
            .collect()
    }
}

impl SsaStepper for CompositionRejection {
    fn initialize(&mut self, crn: &Crn, state: &State, _rng: &mut StdRng) {
        self.propensities.prime(crn, state);
        self.deps.rebuild(crn);
        let n = crn.reactions().len();
        self.groups.clear();
        self.group_of.clear();
        self.group_of.resize(n, NO_GROUP);
        self.slot_of.clear();
        self.slot_of.resize(n, 0);
        for r in 0..n {
            let a = self.propensities.value(r);
            if a > 0.0 {
                self.insert(r, a);
            }
        }
    }

    fn step(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        let total = self.total();
        if total <= 0.0 {
            return StepOutcome::Exhausted;
        }
        // Exponential waiting time with rate `total`, drawn exactly as the
        // direct method draws it.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        *time += -u.ln() / total;

        // Composition: pick a group proportionally to its sum, skipping
        // zero-sum shells. Round-off can leave the target positive after
        // the last group; the walk then settles on the last *occupied*
        // (highest-binade) group, mirroring the walk-back in
        // `select_by_weight`.
        let mut target: f64 = rng.gen::<f64>() * total;
        let mut chosen_group = usize::MAX;
        for (idx, group) in self.groups.iter_mut().enumerate() {
            let sum = group_sum(group);
            if sum <= 0.0 {
                continue;
            }
            chosen_group = idx;
            target -= sum;
            if target < 0.0 {
                break;
            }
        }
        let group = &self.groups[chosen_group];

        // Rejection: uniform member, accepted with probability a / 2^(g+1)
        // — at least ½ because every member propensity is ≥ 2^g.
        let sup = binade_sup(group.binade);
        let chosen = loop {
            let idx = rng.gen_range(0..group.members.len());
            let r = group.members[idx];
            if rng.gen::<f64>() * sup < self.propensities.value(r) {
                break r;
            }
        };

        state
            .apply(&crn.reactions()[chosen])
            .expect("selected reaction must be fireable: propensity was positive");
        // Refresh only the propensities the firing could have changed,
        // re-binning each dependent whose binade moved. The graph is taken
        // out of `self` for the loop because `update` needs `&mut self`.
        let deps = std::mem::take(&mut self.deps);
        for &dep in deps.dependents(chosen) {
            let a_new = self.propensities.eval(dep, state);
            self.update(dep, a_new);
        }
        self.deps = deps;
        StepOutcome::Fired { reaction: chosen }
    }

    fn profile(&self) -> crate::SimProfile {
        crate::SimProfile {
            propensity_evals: self.propensities.evals(),
            ..crate::SimProfile::default()
        }
    }

    fn name(&self) -> &'static str {
        "composition-rejection"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{Simulation, SimulationOptions};
    use crate::stop::StopCondition;

    #[test]
    fn binade_matches_log2_floor() {
        for &(a, expected) in &[
            (1.0, 0),
            (1.5, 0),
            (2.0, 1),
            (3.99, 1),
            (0.5, -1),
            (0.75, -1),
            (1e9, 29),
            (1e-9, -30),
            (f64::MIN_POSITIVE, -1022),
            (5e-324, -1074),
        ] {
            assert_eq!(binade(a), expected, "binade of {a:e}");
        }
        // Boundary: the sup of a binade is exclusive.
        for g in [-5i32, 0, 7, 100] {
            assert_eq!(binade(binade_sup(g)), g + 1);
            let just_below = f64::from_bits(binade_sup(g).to_bits() - 1);
            assert_eq!(binade(just_below), g);
        }
    }

    #[test]
    fn integer_ledger_matches_the_superaccumulator() {
        // The integer significand ledger claims to round exactly like a
        // numerics::ExactSum superaccumulator holding the same members.
        // Drive a network whose propensities need rounding when summed
        // (multiples of 0.1 and 0.025 are not exactly representable) and
        // whose binades spread widely, and pin every group sum — and the
        // hot-path total — against the superaccumulator, bit for bit,
        // along a firing history.
        let crn: Crn = "a -> b @ 0.1\na -> c @ 0.11\na -> d @ 0.025\n\
                        a -> e @ 0.027\na -> f @ 1e-7\na -> g @ 97000"
            .parse()
            .unwrap();
        let initial = crn.state_from_counts([("a", 70)]).unwrap();
        let mut rng = {
            use rand::SeedableRng;
            StdRng::seed_from_u64(1)
        };
        let mut method = CompositionRejection::new();
        let mut state = initial.clone();
        let mut time = 0.0;
        method.initialize(&crn, &state, &mut rng);
        assert!(
            method
                .group_ledger()
                .iter()
                .any(|(_, _, members)| members.len() >= 2),
            "test network must produce at least one multi-member group"
        );
        for _ in 0..50 {
            let groups = method.group_ledger();
            let mut exact_total = numerics::ExactSum::new();
            for (_, sum, members) in &groups {
                let mut acc = numerics::ExactSum::new();
                for &r in members {
                    acc.add(method.maintained_propensities()[r]);
                }
                assert_eq!(sum.to_bits(), acc.value().to_bits());
                exact_total.add(acc.value());
            }
            // The hot-path total is the left-to-right f64 sum of the group
            // sums in ascending-binade order; recompute it the same way.
            let via_groups: f64 = groups.iter().map(|(_, sum, _)| sum).sum();
            assert_eq!(method.total().to_bits(), via_groups.to_bits());
            if matches!(
                method.step(&crn, &mut state, &mut time, &mut rng),
                StepOutcome::Exhausted
            ) {
                break;
            }
        }
    }

    #[test]
    fn conserves_mass_in_closed_network() {
        let crn: Crn = "a + b -> c @ 0.1\nc -> a + b @ 0.2".parse().unwrap();
        let initial = crn.state_from_counts([("a", 50), ("b", 40)]).unwrap();
        let result = Simulation::new(&crn, CompositionRejection::new())
            .options(
                SimulationOptions::new()
                    .seed(11)
                    .stop(StopCondition::events(5_000)),
            )
            .run(&initial)
            .unwrap();
        let a = crn.species_id("a").unwrap();
        let b = crn.species_id("b").unwrap();
        let c = crn.species_id("c").unwrap();
        let s = &result.final_state;
        assert_eq!(s.count(a) + s.count(c), 50);
        assert_eq!(s.count(b) + s.count(c), 40);
    }

    #[test]
    fn two_competing_reactions_fire_proportionally_to_rates() {
        // x -> y @ 3 and x -> z @ 1: roughly 75% of x should become y. The
        // two channels sit in *different* binades whenever x > 0, so this
        // exercises the composition stage, not just rejection.
        let crn: Crn = "x -> y @ 3\nx -> z @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("x", 10_000)]).unwrap();
        let result = Simulation::new(&crn, CompositionRejection::new())
            .options(SimulationOptions::new().seed(7))
            .run(&initial)
            .unwrap();
        let y = result.final_state.count(crn.species_id("y").unwrap()) as f64;
        let frac = y / 10_000.0;
        assert!(
            (frac - 0.75).abs() < 0.02,
            "expected ~75% routed to y, got {frac}"
        );
    }

    #[test]
    fn exponential_waiting_times_have_correct_mean() {
        let crn: Crn = "a -> b @ 4".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        let trials = 4000;
        let mut total_time = 0.0;
        for seed in 0..trials {
            let result = Simulation::new(&crn, CompositionRejection::new())
                .options(SimulationOptions::new().seed(seed))
                .run(&initial)
                .unwrap();
            total_time += result.final_time;
        }
        let mean = total_time / trials as f64;
        assert!(
            (mean - 0.25).abs() < 0.02,
            "mean waiting time {mean}, expected 0.25"
        );
    }

    #[test]
    fn exhausts_when_no_reaction_possible() {
        let crn: Crn = "a + b -> c @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 3)]).unwrap();
        let result = Simulation::new(&crn, CompositionRejection::new())
            .options(SimulationOptions::new().seed(5))
            .run(&initial)
            .unwrap();
        assert_eq!(result.events, 0);
        assert_eq!(result.final_time, 0.0);
    }

    #[test]
    fn wide_rate_hierarchies_select_correctly() {
        // Propensities spanning ~30 binades (the paper's γ = 1e9 regime):
        // the slow channel still wins with probability 1/(1+γ) — sample
        // enough trials to see the expected handful of slow wins.
        let gamma = 1e3;
        let crn: Crn = format!("x -> fast @ {gamma}\nx -> slow @ 1")
            .parse()
            .unwrap();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let slow = crn.species_id("slow").unwrap();
        let trials = 20_000u64;
        let mut slow_wins = 0u64;
        for seed in 0..trials {
            let result = Simulation::new(&crn, CompositionRejection::new())
                .options(SimulationOptions::new().seed(seed))
                .run(&initial)
                .unwrap();
            slow_wins += result.final_state.count(slow);
        }
        let p = slow_wins as f64 / trials as f64;
        let expected = 1.0 / (1.0 + gamma);
        // ~20 expected wins; a 3σ band around the binomial mean.
        let sigma = (expected * (1.0 - expected) / trials as f64).sqrt();
        assert!(
            (p - expected).abs() < 3.5 * sigma,
            "slow-channel probability {p:e}, expected {expected:e}"
        );
    }

    #[test]
    fn group_ledger_tracks_the_state() {
        // Drive a coupled network and verify after every event that the
        // incrementally maintained bookkeeping equals — bitwise — what a
        // fresh stepper builds from the current state.
        let crn: Crn = "a + b -> c @ 0.05\nc -> a + b @ 1\nb -> d @ 0.1\nd -> b @ 0.2"
            .parse()
            .unwrap();
        let initial = crn.state_from_counts([("a", 30), ("b", 25)]).unwrap();
        let mut rng = {
            use rand::SeedableRng;
            StdRng::seed_from_u64(99)
        };
        let mut method = CompositionRejection::new();
        let mut state = initial.clone();
        let mut time = 0.0;
        method.initialize(&crn, &state, &mut rng);
        for event in 0..2_000 {
            match method.step(&crn, &mut state, &mut time, &mut rng) {
                StepOutcome::Fired { .. } => {
                    let mut fresh = CompositionRejection::new();
                    fresh.initialize(&crn, &state, &mut rng);
                    let incremental = method.group_ledger();
                    let rebuilt = fresh.group_ledger();
                    assert_eq!(incremental.len(), rebuilt.len(), "event {event}");
                    for (inc, reb) in incremental.iter().zip(&rebuilt) {
                        assert_eq!(inc.0, reb.0, "binade drift after event {event}");
                        assert_eq!(
                            inc.1.to_bits(),
                            reb.1.to_bits(),
                            "group {} sum drift after event {event}: {} vs {}",
                            inc.0,
                            inc.1,
                            reb.1
                        );
                        assert_eq!(&inc.2, &reb.2, "membership drift after event {event}");
                    }
                }
                StepOutcome::Leaped { .. } => unreachable!("composition-rejection never leaps"),
                StepOutcome::Exhausted => break,
            }
        }
    }
}
