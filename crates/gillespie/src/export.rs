//! Plain-text (CSV) export of trajectories and ensemble reports.
//!
//! The experiment binaries print aligned tables for humans; these helpers
//! produce machine-readable CSV for plotting Figure-3/Figure-5-style graphs
//! with external tools. No CSV crate is used — the values are numbers and
//! species names, which never need quoting.

use std::fmt::Write as _;

use crn::Crn;

use crate::ensemble::EnsembleReport;
use crate::trajectory::Trajectory;

impl Trajectory {
    /// Renders the trajectory as CSV with a `time` column followed by one
    /// column per species (named from `crn`).
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use gillespie::{DirectMethod, RecordingMode, Simulation, SimulationOptions};
    ///
    /// let crn: crn::Crn = "a -> b @ 1".parse()?;
    /// let initial = crn.state_from_counts([("a", 3)])?;
    /// let result = Simulation::new(&crn, DirectMethod::new())
    ///     .options(SimulationOptions::new().seed(1).recording(RecordingMode::EveryEvent))
    ///     .run(&initial)?;
    /// let csv = result.trajectory.to_csv(&crn);
    /// assert!(csv.starts_with("time,a,b\n"));
    /// assert_eq!(csv.lines().count(), 1 + 4); // header + initial + 3 events
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_csv(&self, crn: &Crn) -> String {
        let mut out = String::from("time");
        for species in crn.species() {
            let _ = write!(out, ",{}", species.name());
        }
        out.push('\n');
        for point in self.points() {
            let _ = write!(out, "{}", point.time);
            for count in point.state.counts() {
                let _ = write!(out, ",{count}");
            }
            out.push('\n');
        }
        out
    }
}

impl EnsembleReport {
    /// Renders the outcome counts as CSV with columns
    /// `outcome,count,probability`.
    ///
    /// Undecided trajectories appear as a final `undecided` row so that the
    /// counts always sum to the number of trials.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use gillespie::{Ensemble, EnsembleOptions, SpeciesThresholdClassifier};
    ///
    /// let crn: crn::Crn = "x -> h @ 1\nx -> t @ 1".parse()?;
    /// let initial = crn.state_from_counts([("x", 1)])?;
    /// let classifier = SpeciesThresholdClassifier::new()
    ///     .rule_named(&crn, "h", 1, "heads")?
    ///     .rule_named(&crn, "t", 1, "tails")?;
    /// let report = Ensemble::new(&crn, initial, classifier)
    ///     .options(EnsembleOptions::new().trials(100).master_seed(1))
    ///     .run()?;
    /// let csv = report.to_csv();
    /// assert!(csv.starts_with("outcome,count,probability\n"));
    /// assert!(csv.contains("heads,"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_csv(&self) -> String {
        let mut out = String::from("outcome,count,probability\n");
        for entry in &self.counts {
            let _ = writeln!(
                out,
                "{},{},{}",
                entry.outcome.as_str(),
                entry.count,
                self.probability(entry.outcome.as_str())
            );
        }
        let _ = writeln!(
            out,
            "undecided,{},{}",
            self.undecided,
            self.undecided_fraction()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::OutcomeCount;
    use crate::outcome::Outcome;
    use crate::trajectory::TrajectoryPoint;
    use crn::State;

    #[test]
    fn trajectory_csv_has_one_row_per_point() {
        let crn: Crn = "a -> b @ 1".parse().unwrap();
        let trajectory: Trajectory = vec![
            TrajectoryPoint {
                time: 0.0,
                state: State::from_counts(vec![2, 0]),
            },
            TrajectoryPoint {
                time: 1.5,
                state: State::from_counts(vec![1, 1]),
            },
        ]
        .into_iter()
        .collect();
        let csv = trajectory.to_csv(&crn);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["time,a,b", "0,2,0", "1.5,1,1"]);
    }

    #[test]
    fn empty_trajectory_renders_header_only() {
        let crn: Crn = "a -> b @ 1".parse().unwrap();
        assert_eq!(Trajectory::new().to_csv(&crn), "time,a,b\n");
    }

    #[test]
    fn report_csv_includes_undecided_row() {
        let report = EnsembleReport {
            trials: 10,
            master_seed: 0,
            method: crate::StepperKind::Direct,
            counts: vec![
                OutcomeCount {
                    outcome: Outcome::new("win"),
                    count: 7,
                },
                OutcomeCount {
                    outcome: Outcome::new("lose"),
                    count: 2,
                },
            ],
            undecided: 1,
            mean_events: 3.0,
            events_variance: 0.5,
            mean_final_time: 1.0,
            final_time_variance: 0.25,
        };
        let csv = report.to_csv();
        assert!(csv.contains("win,7,0.7"));
        assert!(csv.contains("lose,2,0.2"));
        assert!(csv.contains("undecided,1,0.1"));
    }
}
