//! Gibson–Bruck next-reaction method.

use crn::{Crn, State};
use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::ReactionDependencyGraph;
use crate::propensity::propensity;
use crate::simulator::{SsaStepper, StepOutcome};

/// The Gibson–Bruck next-reaction method (Gibson & Bruck 2000).
///
/// Each reaction carries an absolute putative firing time stored in an
/// indexed binary min-heap. After a reaction fires, only the reactions that
/// depend on the changed species (per the engine's shared
/// [`ReactionDependencyGraph`]) have their putative times refreshed — reused
/// via the scaling rule for unchanged-but-rescaled channels, redrawn
/// otherwise. Each step therefore costs `O(D log R)` where `D` is the
/// out-degree of the dependency graph, instead of the direct method's
/// `O(R)`.
///
/// The paper cites this algorithm (its reference \[7\]) as the efficient
/// simulator for systems with many species and channels; the
/// `ssa_methods` benchmark in the `bench` crate compares it against the
/// direct method on the paper's networks.
#[derive(Debug, Default, Clone)]
pub struct NextReactionMethod {
    propensities: Vec<f64>,
    heap: IndexedMinHeap,
    deps: ReactionDependencyGraph,
    evals: u64,
}

impl NextReactionMethod {
    /// Creates a new next-reaction stepper.
    pub fn new() -> Self {
        NextReactionMethod::default()
    }

    fn draw_time(now: f64, a: f64, rng: &mut StdRng) -> f64 {
        if a <= 0.0 {
            f64::INFINITY
        } else {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            now + (-u.ln() / a)
        }
    }
}

impl SsaStepper for NextReactionMethod {
    fn initialize(&mut self, crn: &Crn, state: &State, rng: &mut StdRng) {
        let n = crn.reactions().len();
        self.propensities.clear();
        self.propensities.resize(n, 0.0);
        self.heap.reset(n);
        self.deps.rebuild(crn);
        self.evals = n as u64;
        for (idx, reaction) in crn.reactions().iter().enumerate() {
            let a = propensity(reaction, state);
            self.propensities[idx] = a;
            self.heap.set(idx, Self::draw_time(0.0, a, rng));
        }
    }

    fn step(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        let Some((chosen, firing_time)) = self.heap.peek_min() else {
            return StepOutcome::Exhausted;
        };
        if !firing_time.is_finite() {
            return StepOutcome::Exhausted;
        }
        let now = firing_time;
        *time = now;
        state
            .apply(&crn.reactions()[chosen])
            .expect("reaction with finite putative time must be fireable");

        for &alpha in self.deps.dependents(chosen) {
            self.evals += 1;
            let a_new = propensity(&crn.reactions()[alpha], state);
            let a_old = self.propensities[alpha];
            let t_alpha = self.heap.time(alpha);
            let t_new = if alpha == chosen {
                Self::draw_time(now, a_new, rng)
            } else if a_old > 0.0 && a_new > 0.0 && t_alpha.is_finite() {
                // Reuse the remaining exponential, rescaled to the new rate.
                now + (a_old / a_new) * (t_alpha - now)
            } else {
                Self::draw_time(now, a_new, rng)
            };
            self.propensities[alpha] = a_new;
            self.heap.set(alpha, t_new);
        }
        StepOutcome::Fired { reaction: chosen }
    }

    fn profile(&self) -> crate::SimProfile {
        crate::SimProfile {
            propensity_evals: self.evals,
            ..crate::SimProfile::default()
        }
    }

    fn name(&self) -> &'static str {
        "next-reaction"
    }
}

/// A binary min-heap over reaction indices keyed by putative firing time,
/// with an index-to-position map so that arbitrary keys can be updated in
/// `O(log n)`.
#[derive(Debug, Default, Clone)]
struct IndexedMinHeap {
    /// Heap array of reaction indices.
    heap: Vec<usize>,
    /// `positions[reaction]` = index of the reaction within `heap`.
    positions: Vec<usize>,
    /// Current key (putative time) per reaction.
    times: Vec<f64>,
}

impl IndexedMinHeap {
    fn reset(&mut self, n: usize) {
        self.heap = (0..n).collect();
        self.positions = (0..n).collect();
        self.times = vec![f64::INFINITY; n];
    }

    fn time(&self, reaction: usize) -> f64 {
        self.times[reaction]
    }

    fn peek_min(&self) -> Option<(usize, f64)> {
        self.heap.first().map(|&r| (r, self.times[r]))
    }

    fn set(&mut self, reaction: usize, time: f64) {
        let old = self.times[reaction];
        self.times[reaction] = time;
        let pos = self.positions[reaction];
        if time < old {
            self.sift_up(pos);
        } else {
            self.sift_down(pos);
        }
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.key(pos) < self.key(parent) {
                self.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut smallest = pos;
            if left < n && self.key(left) < self.key(smallest) {
                smallest = left;
            }
            if right < n && self.key(right) < self.key(smallest) {
                smallest = right;
            }
            if smallest == pos {
                break;
            }
            self.swap(pos, smallest);
            pos = smallest;
        }
    }

    fn key(&self, pos: usize) -> f64 {
        self.times[self.heap[pos]]
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.positions[self.heap[a]] = a;
        self.positions[self.heap[b]] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectMethod;
    use crate::simulator::{Simulation, SimulationOptions};
    use crate::stop::StopCondition;

    #[test]
    fn indexed_heap_maintains_min() {
        let mut h = IndexedMinHeap::default();
        h.reset(4);
        h.set(0, 5.0);
        h.set(1, 2.0);
        h.set(2, 9.0);
        h.set(3, 3.0);
        assert_eq!(h.peek_min(), Some((1, 2.0)));
        h.set(1, 10.0);
        assert_eq!(h.peek_min(), Some((3, 3.0)));
        h.set(2, 0.5);
        assert_eq!(h.peek_min(), Some((2, 0.5)));
    }

    #[test]
    fn branching_probabilities_match_rates() {
        let crn: Crn = "x -> y @ 1\nx -> z @ 3".parse().unwrap();
        let initial = crn.state_from_counts([("x", 20_000)]).unwrap();
        let result = Simulation::new(&crn, NextReactionMethod::new())
            .options(SimulationOptions::new().seed(5))
            .run(&initial)
            .unwrap();
        let z = result.final_state.count(crn.species_id("z").unwrap()) as f64;
        assert!((z / 20_000.0 - 0.75).abs() < 0.02);
    }

    #[test]
    fn agrees_with_direct_method_on_mean_final_counts() {
        // Reversible dimerisation; compare the equilibrium mean of c between
        // the two algorithms over many trajectories.
        let crn: Crn = "a + b -> c @ 0.05\nc -> a + b @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 40), ("b", 40)]).unwrap();
        let c = crn.species_id("c").unwrap();
        let trials = 200;
        let mean = |use_next: bool| -> f64 {
            let mut sum = 0.0;
            for seed in 0..trials {
                let opts = SimulationOptions::new()
                    .seed(seed)
                    .stop(StopCondition::events(2_000));
                let final_count = if use_next {
                    Simulation::new(&crn, NextReactionMethod::new())
                        .options(opts)
                        .run(&initial)
                        .unwrap()
                        .final_state
                        .count(c)
                } else {
                    Simulation::new(&crn, DirectMethod::new())
                        .options(opts)
                        .run(&initial)
                        .unwrap()
                        .final_state
                        .count(c)
                };
                sum += final_count as f64;
            }
            sum / trials as f64
        };
        let m_direct = mean(false);
        let m_next = mean(true);
        assert!(
            (m_direct - m_next).abs() < 3.0,
            "direct {m_direct} vs next-reaction {m_next}"
        );
    }

    #[test]
    fn exhausts_when_nothing_can_fire() {
        let crn: Crn = "a + b -> c @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("b", 2)]).unwrap();
        let result = Simulation::new(&crn, NextReactionMethod::new())
            .options(SimulationOptions::new().seed(9))
            .run(&initial)
            .unwrap();
        assert_eq!(result.events, 0);
    }

    #[test]
    fn waiting_time_mean_is_correct() {
        let crn: Crn = "a -> b @ 5".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        let trials = 4000;
        let mut total = 0.0;
        for seed in 0..trials {
            let r = Simulation::new(&crn, NextReactionMethod::new())
                .options(SimulationOptions::new().seed(seed))
                .run(&initial)
                .unwrap();
            total += r.final_time;
        }
        let mean = total / trials as f64;
        assert!(
            (mean - 0.2).abs() < 0.02,
            "mean waiting time {mean}, expected 0.2"
        );
    }
}
