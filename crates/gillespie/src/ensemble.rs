//! Multi-trial Monte-Carlo ensembles.
//!
//! Every figure in the paper is a Monte-Carlo estimate: run many independent
//! trajectories of the same network, classify each one, and report the
//! empirical outcome distribution. [`Ensemble`] does exactly that on top of
//! the engine's [`run_chunked`](crate::engine::run_chunked) fan-out, keeping
//! results *bit-identical regardless of the thread count*:
//!
//! * trial `i` always seeds its RNG with `master_seed + i`;
//! * every worker owns a contiguous trial range and a private accumulator —
//!   no locks anywhere on the hot path;
//! * partial results merge in worker order, and floating-point statistics
//!   are reduced in trial order, so even `mean_final_time` is the same to
//!   the last bit for `threads = 1` and `threads = 64`.
//!
//! Each worker also recycles its stepper and state allocations across all of
//! its trials, so an `N`-trial ensemble performs `O(threads)` setup
//! allocations rather than `O(N)`.

use std::collections::BTreeMap;

use crn::{Crn, State};
use rand::rngs::StdRng;
use rand::SeedableRng as _;
use serde::{Deserialize, Serialize};

use crate::engine::run_chunked;
use crate::error::SimulationError;
use crate::outcome::{Outcome, OutcomeClassifier};
use crate::simulator::{run_trial, SimulationOptions, StepperKind};

/// Options controlling an ensemble run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleOptions {
    /// Number of independent trajectories.
    pub trials: u64,
    /// Master seed; trial `i` uses `master_seed + i`.
    pub master_seed: u64,
    /// Number of worker threads (`0` means "one per available CPU").
    pub threads: usize,
    /// Which stepper to use (exact SSA variants or tau-leaping).
    pub method: StepperKind,
    /// Per-trajectory options (stop condition, recording, event limit). The
    /// per-trajectory seed is overridden by the ensemble.
    pub simulation: SimulationOptions,
}

impl Default for EnsembleOptions {
    fn default() -> Self {
        EnsembleOptions {
            trials: 1_000,
            master_seed: 0,
            threads: 0,
            method: StepperKind::Direct,
            simulation: SimulationOptions::default(),
        }
    }
}

impl EnsembleOptions {
    /// Creates default options (1000 trials, direct method, auto threads).
    pub fn new() -> Self {
        EnsembleOptions::default()
    }

    /// Sets the number of trials.
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the number of worker threads (0 = one per CPU).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the stepper (exact SSA variant or tau-leaping).
    pub fn method(mut self, method: StepperKind) -> Self {
        self.method = method;
        self
    }

    /// Sets the per-trajectory simulation options.
    pub fn simulation(mut self, simulation: SimulationOptions) -> Self {
        self.simulation = simulation;
        self
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// The number of trajectories assigned to one outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCount {
    /// The outcome label.
    pub outcome: Outcome,
    /// How many trajectories ended in this outcome.
    pub count: u64,
}

/// Aggregated results of an ensemble run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleReport {
    /// Total number of trajectories run.
    pub trials: u64,
    /// Outcome counts, sorted by outcome label.
    pub counts: Vec<OutcomeCount>,
    /// Number of trajectories the classifier could not assign.
    pub undecided: u64,
    /// Mean number of reaction events per trajectory.
    pub mean_events: f64,
    /// Mean simulated end time per trajectory.
    pub mean_final_time: f64,
}

impl EnsembleReport {
    /// Returns the number of trajectories that ended in `outcome`.
    pub fn count(&self, outcome: &str) -> u64 {
        self.counts
            .iter()
            .find(|c| c.outcome.as_str() == outcome)
            .map(|c| c.count)
            .unwrap_or(0)
    }

    /// Returns the empirical probability of `outcome`.
    pub fn probability(&self, outcome: &str) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.count(outcome) as f64 / self.trials as f64
    }

    /// Returns the empirical probability of `outcome` among *decided*
    /// trajectories only.
    pub fn conditional_probability(&self, outcome: &str) -> f64 {
        let decided = self.trials - self.undecided;
        if decided == 0 {
            return 0.0;
        }
        self.count(outcome) as f64 / decided as f64
    }

    /// Returns the fraction of undecided trajectories.
    pub fn undecided_fraction(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.undecided as f64 / self.trials as f64
    }
}

/// One worker's private accumulator: merged into the report in worker order
/// after every worker has finished.
struct WorkerPartial {
    counts: BTreeMap<Outcome, u64>,
    undecided: u64,
    total_events: u64,
    /// Final simulated time of each trial in the worker's range, in trial
    /// order. Kept per-trial (rather than pre-summed) so the global
    /// reduction happens in trial order: floating-point addition is not
    /// associative, and summing per-worker subtotals would make
    /// `mean_final_time` depend on the thread count.
    final_times: Vec<f64>,
}

/// A Monte-Carlo ensemble of one network, one initial state and one outcome
/// classifier.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gillespie::{Ensemble, EnsembleOptions, SpeciesThresholdClassifier};
///
/// // A coin flip: whichever of the two decay channels fires first wins.
/// let crn: crn::Crn = "x -> h @ 1\nx -> t @ 1".parse()?;
/// let initial = crn.state_from_counts([("x", 1)])?;
/// let classifier = SpeciesThresholdClassifier::new()
///     .rule_named(&crn, "h", 1, "heads")?
///     .rule_named(&crn, "t", 1, "tails")?;
/// let report = Ensemble::new(&crn, initial, classifier)
///     .options(EnsembleOptions::new().trials(2000).master_seed(1))
///     .run()?;
/// assert!((report.probability("heads") - 0.5).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Ensemble<'a, C> {
    crn: &'a Crn,
    initial: State,
    classifier: C,
    options: EnsembleOptions,
}

impl<'a, C> Ensemble<'a, C>
where
    C: OutcomeClassifier + Sync,
{
    /// Creates an ensemble over `crn` starting from `initial`.
    pub fn new(crn: &'a Crn, initial: State, classifier: C) -> Self {
        Ensemble {
            crn,
            initial,
            classifier,
            options: EnsembleOptions::default(),
        }
    }

    /// Replaces the ensemble options.
    pub fn options(mut self, options: EnsembleOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::InvalidEnsembleConfig`] for zero trials and
    /// propagates the first per-trajectory error encountered (for example an
    /// exceeded event limit).
    pub fn run(&self) -> Result<EnsembleReport, SimulationError> {
        if self.options.trials == 0 {
            return Err(SimulationError::InvalidEnsembleConfig {
                message: "trials must be positive".to_string(),
            });
        }
        if self.initial.species_len() != self.crn.species_len() {
            return Err(SimulationError::StateSizeMismatch {
                network: self.crn.species_len(),
                state: self.initial.species_len(),
            });
        }

        let threads = self.options.effective_threads();
        let trials = self.options.trials;

        let partials = run_chunked(threads, trials, |range, cancel| {
            let mut stepper = self.options.method.stepper();
            // One state buffer per worker, re-primed from the initial state
            // each trial; `run_trial` hands the allocation back through the
            // result's `final_state`.
            let mut scratch = self.initial.clone();
            let mut partial = WorkerPartial {
                counts: BTreeMap::new(),
                undecided: 0,
                total_events: 0,
                final_times: Vec::with_capacity(range.len() as usize),
            };
            for trial in range.trials() {
                if cancel.is_cancelled() {
                    // Another worker failed; this partial will be discarded.
                    break;
                }
                let mut rng = StdRng::seed_from_u64(self.options.master_seed.wrapping_add(trial));
                scratch.clone_from(&self.initial);
                let result = run_trial(
                    self.crn,
                    stepper.as_mut(),
                    &self.options.simulation,
                    scratch,
                    &mut rng,
                )?;
                partial.total_events += result.events;
                partial.final_times.push(result.final_time);
                match self.classifier.classify(&result) {
                    Some(outcome) => *partial.counts.entry(outcome).or_insert(0) += 1,
                    None => partial.undecided += 1,
                }
                scratch = result.final_state;
            }
            Ok::<_, SimulationError>(partial)
        })?;

        // Merge in worker order == trial order (ranges are contiguous and
        // ascending), so every statistic is thread-count independent.
        let mut counts: BTreeMap<Outcome, u64> = BTreeMap::new();
        let mut undecided = 0u64;
        let mut total_events = 0u64;
        let mut total_time = 0.0f64;
        for partial in partials {
            for (outcome, count) in partial.counts {
                *counts.entry(outcome).or_insert(0) += count;
            }
            undecided += partial.undecided;
            total_events += partial.total_events;
            for t in partial.final_times {
                total_time += t;
            }
        }
        for outcome in self.classifier.outcomes() {
            counts.entry(outcome).or_insert(0);
        }
        Ok(EnsembleReport {
            trials,
            counts: counts
                .into_iter()
                .map(|(outcome, count)| OutcomeCount { outcome, count })
                .collect(),
            undecided,
            mean_events: total_events as f64 / trials as f64,
            mean_final_time: total_time / trials as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::SpeciesThresholdClassifier;
    use crate::stop::StopCondition;

    fn coin_crn() -> Crn {
        "x -> h @ 3\nx -> t @ 1".parse().unwrap()
    }

    fn coin_classifier(crn: &Crn) -> SpeciesThresholdClassifier {
        SpeciesThresholdClassifier::new()
            .rule_named(crn, "h", 1, "heads")
            .unwrap()
            .rule_named(crn, "t", 1, "tails")
            .unwrap()
    }

    #[test]
    fn biased_coin_probabilities_converge() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let report = Ensemble::new(&crn, initial, coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(4_000).master_seed(17))
            .run()
            .unwrap();
        assert_eq!(report.trials, 4_000);
        assert_eq!(report.undecided, 0);
        assert!((report.probability("heads") - 0.75).abs() < 0.03);
        assert!((report.probability("tails") - 0.25).abs() < 0.03);
        assert_eq!(report.count("heads") + report.count("tails"), 4_000);
    }

    #[test]
    fn reports_are_independent_of_thread_count() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let run = |threads| {
            Ensemble::new(&crn, initial.clone(), coin_classifier(&crn))
                .options(
                    EnsembleOptions::new()
                        .trials(500)
                        .master_seed(42)
                        .threads(threads),
                )
                .run()
                .unwrap()
        };
        let single = run(1);
        let multi = run(4);
        // The whole report — including floating-point means — is identical.
        assert_eq!(single, multi);
    }

    #[test]
    fn undecided_trajectories_are_reported() {
        // The classifier wants a species that never appears above threshold.
        let crn: Crn = "x -> y @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let classifier = SpeciesThresholdClassifier::new()
            .rule_named(&crn, "y", 100, "many")
            .unwrap();
        let report = Ensemble::new(&crn, initial, classifier)
            .options(EnsembleOptions::new().trials(50).master_seed(3))
            .run()
            .unwrap();
        assert_eq!(report.undecided, 50);
        assert_eq!(report.count("many"), 0);
        assert_eq!(report.undecided_fraction(), 1.0);
        assert_eq!(report.conditional_probability("many"), 0.0);
    }

    #[test]
    fn zero_trials_is_an_error() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let err = Ensemble::new(&crn, initial, coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(0))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimulationError::InvalidEnsembleConfig { .. }));
    }

    #[test]
    fn per_trial_errors_propagate() {
        let crn: Crn = "0 -> a @ 1".parse().unwrap();
        let initial = crn.zero_state();
        let classifier = SpeciesThresholdClassifier::new()
            .rule_named(&crn, "a", 1_000_000, "huge")
            .unwrap();
        let err = Ensemble::new(&crn, initial, classifier)
            .options(
                EnsembleOptions::new()
                    .trials(4)
                    .simulation(SimulationOptions::new().max_events(10)),
            )
            .run()
            .unwrap_err();
        assert!(matches!(err, SimulationError::EventLimitExceeded { .. }));
    }

    #[test]
    fn all_methods_agree_on_the_coin() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        for method in StepperKind::ALL {
            let report = Ensemble::new(&crn, initial.clone(), coin_classifier(&crn))
                .options(
                    EnsembleOptions::new()
                        .trials(2_000)
                        .master_seed(7)
                        .method(method)
                        .simulation(SimulationOptions::new().stop(StopCondition::exhaustion())),
                )
                .run()
                .unwrap();
            assert!(
                (report.probability("heads") - 0.75).abs() < 0.05,
                "{method:?} disagrees: {}",
                report.probability("heads")
            );
        }
    }

    #[test]
    fn mean_statistics_are_populated() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let report = Ensemble::new(&crn, initial, coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(100).master_seed(5))
            .run()
            .unwrap();
        assert!((report.mean_events - 1.0).abs() < 1e-9);
        assert!(report.mean_final_time > 0.0);
    }
}
