//! Multi-trial Monte-Carlo ensembles.
//!
//! Every figure in the paper is a Monte-Carlo estimate: run many independent
//! trajectories of the same network, classify each one, and report the
//! empirical outcome distribution. [`Ensemble`] does exactly that on top of
//! the engine's [`run_chunked`](crate::engine::run_chunked) fan-out, keeping
//! results *bit-identical regardless of the thread count*:
//!
//! * trial `i` always seeds its RNG with `master_seed + i`;
//! * every worker owns a contiguous trial range and a private accumulator —
//!   no locks anywhere on the hot path;
//! * floating-point statistics accumulate in [`numerics::ExactSum`]
//!   superaccumulators, whose readout is a pure function of the *multiset*
//!   of accumulated values — so even `mean_final_time` is the same to the
//!   last bit for `threads = 1` and `threads = 64`, and for any sharding
//!   of the trial range across processes or machines.
//!
//! Each worker also recycles its stepper and state allocations across all of
//! its trials, so an `N`-trial ensemble performs `O(threads)` setup
//! allocations rather than `O(N)`.

use std::collections::BTreeMap;

use crn::{Crn, State};
use numerics::ExactSum;
use rand::rngs::StdRng;
use rand::SeedableRng as _;
use serde::{Deserialize, Serialize};

use crate::engine::{run_chunked_cancellable, CancelToken};
use crate::error::SimulationError;
use crate::outcome::{Outcome, OutcomeClassifier};
use crate::profile::SimProfile;
use crate::simulator::{run_trial_profiled, SimulationOptions, StepperKind};
use crate::stats::Moments;

/// Options controlling an ensemble run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleOptions {
    /// Number of independent trajectories.
    pub trials: u64,
    /// Master seed; trial `i` uses `master_seed + i`.
    pub master_seed: u64,
    /// Number of worker threads (`0` means "one per available CPU").
    pub threads: usize,
    /// Which stepper to use (exact SSA variants, tau-leaping, or
    /// [`StepperKind::Auto`] to let the portfolio classifier pick — the
    /// resolved concrete kind is recorded in [`EnsembleReport::method`]).
    pub method: StepperKind,
    /// Per-trajectory options (stop condition, recording, event limit). The
    /// per-trajectory seed is overridden by the ensemble.
    pub simulation: SimulationOptions,
}

impl Default for EnsembleOptions {
    fn default() -> Self {
        EnsembleOptions {
            trials: 1_000,
            master_seed: 0,
            threads: 0,
            method: StepperKind::Direct,
            simulation: SimulationOptions::default(),
        }
    }
}

impl EnsembleOptions {
    /// Creates default options (1000 trials, direct method, auto threads).
    pub fn new() -> Self {
        EnsembleOptions::default()
    }

    /// Sets the number of trials.
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the number of worker threads (0 = one per CPU).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the stepper (exact SSA variant or tau-leaping).
    pub fn method(mut self, method: StepperKind) -> Self {
        self.method = method;
        self
    }

    /// Sets the per-trajectory simulation options.
    pub fn simulation(mut self, simulation: SimulationOptions) -> Self {
        self.simulation = simulation;
        self
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// The number of trajectories assigned to one outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCount {
    /// The outcome label.
    pub outcome: Outcome,
    /// How many trajectories ended in this outcome.
    pub count: u64,
}

/// Aggregated results of an ensemble run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleReport {
    /// Total number of trajectories run.
    pub trials: u64,
    /// The master seed the ensemble was run with (trial `i` used
    /// `master_seed + i`). Carried in the report so serialised results are
    /// self-describing: a cached response and a fresh re-run of the same
    /// request are distinguishable only by transport metadata, never by the
    /// report body.
    pub master_seed: u64,
    /// The *concrete* stepper kind the trials ran with. When the ensemble
    /// was configured with [`StepperKind::Auto`] this is the kind the
    /// portfolio classifier resolved to — never `Auto` itself — so a report
    /// produced by `Auto` is indistinguishable from one that requested the
    /// resolved kind explicitly (they are bit-identical, which the
    /// determinism suite pins).
    pub method: StepperKind,
    /// Outcome counts, sorted by outcome label.
    pub counts: Vec<OutcomeCount>,
    /// Number of trajectories the classifier could not assign.
    pub undecided: u64,
    /// Mean number of reaction events per trajectory.
    pub mean_events: f64,
    /// Unbiased sample variance of the per-trajectory event count (0 below
    /// two trials). Computed from exact integer sums, so it is — like every
    /// field of the report — bit-identical across thread counts and
    /// shardings.
    pub events_variance: f64,
    /// Mean simulated end time per trajectory.
    pub mean_final_time: f64,
    /// Unbiased sample variance of the simulated end time (0 below two
    /// trials), computed from exact sums of `t` and `fl(t·t)`.
    pub final_time_variance: f64,
}

impl EnsembleReport {
    /// Returns the number of trajectories that ended in `outcome`.
    pub fn count(&self, outcome: &str) -> u64 {
        self.counts
            .iter()
            .find(|c| c.outcome.as_str() == outcome)
            .map(|c| c.count)
            .unwrap_or(0)
    }

    /// Returns the empirical probability of `outcome`.
    pub fn probability(&self, outcome: &str) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.count(outcome) as f64 / self.trials as f64
    }

    /// Returns the empirical probability of `outcome` among *decided*
    /// trajectories only.
    pub fn conditional_probability(&self, outcome: &str) -> f64 {
        let decided = self.trials - self.undecided;
        if decided == 0 {
            return 0.0;
        }
        self.count(outcome) as f64 / decided as f64
    }

    /// Returns the fraction of undecided trajectories.
    pub fn undecided_fraction(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.undecided as f64 / self.trials as f64
    }
}

/// The accumulated results of one contiguous block of ensemble trials.
///
/// Produced by [`Ensemble::run_range`] and merged back into an
/// [`EnsembleReport`] by [`Ensemble::merge`]. Splitting an ensemble into
/// ranges, running them on arbitrary threads (in any order, on any
/// machine) and merging the partials reproduces the single-threaded report
/// **bit for bit**, because trial `i` always seeds its RNG with
/// `master_seed + i` and the floating-point statistics accumulate in
/// [`numerics::ExactSum`] superaccumulators whose readout is independent
/// of summation order — and therefore of the partitioning. This is the
/// fan-out surface the `service` crate's work-stealing job scheduler and
/// its distributed fabric are built on.
///
/// A partial is `O(outcomes)` memory regardless of how many trials it
/// covers: per-trial data is folded into exact sums and a streaming
/// [`Moments`] accumulator as each trial finishes, never stored. That is
/// what bounds coordinator and worker memory on million-trial jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsemblePartial {
    /// First trial index of the assigned range (inclusive).
    start: u64,
    /// One past the last trial index of the assigned range.
    end: u64,
    /// Number of trials actually completed (equals `end - start` unless the
    /// run was cancelled part-way).
    done: u64,
    counts: BTreeMap<Outcome, u64>,
    undecided: u64,
    total_events: u64,
    /// Exact Σ events² over the range (u128: 2⁶⁴ trials of 2³² events each
    /// stay in range), feeding the report's event variance.
    events_squared: u128,
    /// Exact Σ final_time. The superaccumulator readout is a pure function
    /// of the multiset of accumulated values, which is what keeps
    /// `mean_final_time` bit-identical across partitionings.
    time_sum: ExactSum,
    /// Exact Σ fl(final_time²), feeding the report's time variance.
    time_squared_sum: ExactSum,
    /// Streaming Welford moments of the final times — the shard-level
    /// monitoring surface (not byte-pinned; the report's statistics come
    /// from the exact sums above).
    time_moments: Moments,
}

/// The flattened wire form of an [`EnsemblePartial`], for transports that
/// serialise partials between processes (the `service` crate's distributed
/// fabric). Outcomes travel as label strings and the exact sums as their
/// canonical hex encodings, so [`EnsemblePartial::from_parts`]
/// reconstructs a partial that merges bit-identically to the original.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsemblePartialParts {
    /// First trial index (inclusive).
    pub start: u64,
    /// One past the last trial index.
    pub end: u64,
    /// Trials actually completed.
    pub done: u64,
    /// `(outcome label, count)` pairs, sorted by label.
    pub counts: Vec<(String, u64)>,
    /// Undecided trajectories.
    pub undecided: u64,
    /// Σ events over the range.
    pub total_events: u64,
    /// Σ events², rendered as a decimal string (u128 exceeds u64 JSON).
    pub events_squared: String,
    /// Canonical hex encoding of the exact Σ final_time.
    pub time_sum: String,
    /// Canonical hex encoding of the exact Σ fl(final_time²).
    pub time_squared_sum: String,
    /// The streaming moments triple `(count, mean, m2)`.
    pub time_moments: (u64, f64, f64),
}

impl EnsemblePartial {
    /// Returns the assigned trial range `(start, end)`.
    pub fn range(&self) -> (u64, u64) {
        (self.start, self.end)
    }

    /// Returns the number of trials actually completed.
    pub fn completed(&self) -> u64 {
        self.done
    }

    /// Returns `true` when every trial of the assigned range was run (a
    /// cancelled range stops early and stays incomplete).
    pub fn is_complete(&self) -> bool {
        self.done == self.end - self.start
    }

    /// The streaming mean/variance moments of the final times seen so far
    /// — what distributed coordinators aggregate to expose running
    /// statistics of an in-flight job.
    pub fn time_moments(&self) -> &Moments {
        &self.time_moments
    }

    /// Flattens the partial into its wire form.
    pub fn to_parts(&self) -> EnsemblePartialParts {
        EnsemblePartialParts {
            start: self.start,
            end: self.end,
            done: self.done,
            counts: self
                .counts
                .iter()
                .map(|(outcome, &count)| (outcome.as_str().to_string(), count))
                .collect(),
            undecided: self.undecided,
            total_events: self.total_events,
            events_squared: self.events_squared.to_string(),
            time_sum: self.time_sum.encode(),
            time_squared_sum: self.time_squared_sum.encode(),
            time_moments: self.time_moments.parts(),
        }
    }

    /// Reconstructs a partial from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::InvalidEnsembleConfig`] for malformed
    /// encodings or an inconsistent range.
    pub fn from_parts(parts: EnsemblePartialParts) -> Result<EnsemblePartial, SimulationError> {
        let invalid = |message: String| SimulationError::InvalidEnsembleConfig { message };
        if parts.start >= parts.end || parts.done > parts.end - parts.start {
            return Err(invalid(format!(
                "inconsistent partial range [{}, {}) with {} trials done",
                parts.start, parts.end, parts.done
            )));
        }
        let events_squared = parts
            .events_squared
            .parse::<u128>()
            .map_err(|_| invalid(format!("bad events_squared `{}`", parts.events_squared)))?;
        let time_sum =
            ExactSum::decode(&parts.time_sum).map_err(|e| invalid(format!("bad time_sum: {e}")))?;
        let time_squared_sum = ExactSum::decode(&parts.time_squared_sum)
            .map_err(|e| invalid(format!("bad time_squared_sum: {e}")))?;
        let (count, mean, m2) = parts.time_moments;
        Ok(EnsemblePartial {
            start: parts.start,
            end: parts.end,
            done: parts.done,
            counts: parts
                .counts
                .into_iter()
                .map(|(label, count)| (Outcome::new(label), count))
                .collect(),
            undecided: parts.undecided,
            total_events: parts.total_events,
            events_squared,
            time_sum,
            time_squared_sum,
            time_moments: Moments::from_parts(count, mean, m2),
        })
    }
}

/// A Monte-Carlo ensemble of one network, one initial state and one outcome
/// classifier.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gillespie::{Ensemble, EnsembleOptions, SpeciesThresholdClassifier};
///
/// // A coin flip: whichever of the two decay channels fires first wins.
/// let crn: crn::Crn = "x -> h @ 1\nx -> t @ 1".parse()?;
/// let initial = crn.state_from_counts([("x", 1)])?;
/// let classifier = SpeciesThresholdClassifier::new()
///     .rule_named(&crn, "h", 1, "heads")?
///     .rule_named(&crn, "t", 1, "tails")?;
/// let report = Ensemble::new(&crn, initial, classifier)
///     .options(EnsembleOptions::new().trials(2000).master_seed(1))
///     .run()?;
/// assert!((report.probability("heads") - 0.5).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Ensemble<'a, C> {
    crn: &'a Crn,
    initial: State,
    classifier: C,
    options: EnsembleOptions,
}

impl<'a, C> Ensemble<'a, C>
where
    C: OutcomeClassifier + Sync,
{
    /// Creates an ensemble over `crn` starting from `initial`.
    pub fn new(crn: &'a Crn, initial: State, classifier: C) -> Self {
        Ensemble {
            crn,
            initial,
            classifier,
            options: EnsembleOptions::default(),
        }
    }

    /// Replaces the ensemble options.
    pub fn options(mut self, options: EnsembleOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::InvalidEnsembleConfig`] for zero trials and
    /// propagates the first per-trajectory error encountered (for example an
    /// exceeded event limit).
    pub fn run(&self) -> Result<EnsembleReport, SimulationError> {
        self.run_cancellable(&CancelToken::new())
    }

    /// Runs the ensemble under an externally owned [`CancelToken`].
    ///
    /// Raising the token from another thread makes every worker stop after
    /// its current trial; the run then returns
    /// [`SimulationError::Cancelled`] instead of a (necessarily incomplete)
    /// report. This is the hook job schedulers use to abort in-flight
    /// ensemble work without tearing threads down.
    ///
    /// # Errors
    ///
    /// Everything [`Ensemble::run`] returns, plus
    /// [`SimulationError::Cancelled`] when the token was raised before the
    /// run finished.
    pub fn run_cancellable(&self, cancel: &CancelToken) -> Result<EnsembleReport, SimulationError> {
        self.validate()?;
        // Resolve `Auto` once, before the fan-out, so every worker runs the
        // same concrete stepper and the pilot classification is not repeated
        // per range.
        let method = self.resolved_method();
        let threads = self.options.effective_threads();
        let trials = self.options.trials;
        let partials = run_chunked_cancellable(threads, trials, cancel, |range, token| {
            let mut profile = SimProfile::default();
            self.run_range_on(range.start, range.end, method, token, &mut profile)
        })?;
        if cancel.is_cancelled() {
            return Err(SimulationError::Cancelled);
        }
        self.merge_resolved(partials, method)
    }

    /// Runs the contiguous trial block `[start, end)` on the calling thread
    /// and returns its [`EnsemblePartial`].
    ///
    /// Trial `i` seeds its RNG with `master_seed + i` exactly as the full
    /// run does, so partials computed anywhere — other threads, other
    /// processes — merge back into the bit-identical single-threaded report
    /// via [`Ensemble::merge`]. The `cancel` token is polled between trials;
    /// a cancelled range returns early with
    /// [`EnsemblePartial::is_complete`]` == false`.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::InvalidEnsembleConfig`] for an empty or
    /// out-of-bounds range and propagates per-trajectory errors.
    pub fn run_range(
        &self,
        start: u64,
        end: u64,
        cancel: &CancelToken,
    ) -> Result<EnsemblePartial, SimulationError> {
        let mut profile = SimProfile::default();
        self.run_range_profiled(start, end, cancel, &mut profile)
    }

    /// [`Ensemble::run_range`] with work counters accumulated into
    /// `profile` (summed across the range's trials).
    ///
    /// The profile is an out-parameter rather than a field of
    /// [`EnsemblePartial`] deliberately: partials are a wire format whose
    /// bytes are pinned by the determinism tests, and profiling must never
    /// alter result bytes. The returned partial is bit-identical to the
    /// unprofiled path's.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Ensemble::run_range`].
    pub fn run_range_profiled(
        &self,
        start: u64,
        end: u64,
        cancel: &CancelToken,
        profile: &mut SimProfile,
    ) -> Result<EnsemblePartial, SimulationError> {
        self.validate()?;
        if start >= end || end > self.options.trials {
            return Err(SimulationError::InvalidEnsembleConfig {
                message: format!(
                    "trial range [{start}, {end}) is not within [0, {})",
                    self.options.trials
                ),
            });
        }
        self.run_range_on(start, end, self.resolved_method(), cancel, profile)
    }

    /// Merges range partials back into the full-ensemble report.
    ///
    /// The partials may arrive in any order; they are sorted by range start
    /// and reduced in trial order, which is what keeps the merged report
    /// bit-identical to a single-threaded [`Ensemble::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::InvalidEnsembleConfig`] unless the
    /// partials are all complete and cover `0..trials` exactly once.
    pub fn merge(&self, partials: Vec<EnsemblePartial>) -> Result<EnsembleReport, SimulationError> {
        self.merge_resolved(partials, self.resolved_method())
    }

    /// [`Ensemble::merge`] with the portfolio already resolved, so a full
    /// run classifies the network exactly once.
    fn merge_resolved(
        &self,
        mut partials: Vec<EnsemblePartial>,
        method: StepperKind,
    ) -> Result<EnsembleReport, SimulationError> {
        partials.sort_by_key(|p| p.start);
        let mut expected = 0u64;
        for partial in &partials {
            if partial.start != expected {
                return Err(SimulationError::InvalidEnsembleConfig {
                    message: format!(
                        "partials must tile the trial range: expected a range \
                         starting at {expected}, got [{}, {})",
                        partial.start, partial.end
                    ),
                });
            }
            if !partial.is_complete() {
                return Err(SimulationError::InvalidEnsembleConfig {
                    message: format!(
                        "partial [{}, {}) is incomplete ({} of {} trials run)",
                        partial.start,
                        partial.end,
                        partial.done,
                        partial.end - partial.start
                    ),
                });
            }
            expected = partial.end;
        }
        if expected != self.options.trials {
            return Err(SimulationError::InvalidEnsembleConfig {
                message: format!(
                    "partials cover only {expected} of {} trials",
                    self.options.trials
                ),
            });
        }

        let trials = self.options.trials;
        let mut counts: BTreeMap<Outcome, u64> = BTreeMap::new();
        let mut undecided = 0u64;
        let mut total_events = 0u64;
        let mut events_squared = 0u128;
        let mut time_sum = ExactSum::new();
        let mut time_squared_sum = ExactSum::new();
        for partial in partials {
            for (outcome, count) in partial.counts {
                *counts.entry(outcome).or_insert(0) += count;
            }
            undecided += partial.undecided;
            total_events += partial.total_events;
            events_squared += partial.events_squared;
            // Exact merges: the readouts below see the multiset of all
            // per-trial values, never per-shard subtotals, so the report
            // is bit-identical for every partitioning.
            time_sum.merge(&partial.time_sum);
            time_squared_sum.merge(&partial.time_squared_sum);
        }
        for outcome in self.classifier.outcomes() {
            counts.entry(outcome).or_insert(0);
        }
        let total_time = time_sum.value();
        let mean_events = total_events as f64 / trials as f64;
        let mean_final_time = total_time / trials as f64;
        Ok(EnsembleReport {
            trials,
            master_seed: self.options.master_seed,
            method,
            counts: counts
                .into_iter()
                .map(|(outcome, count)| OutcomeCount { outcome, count })
                .collect(),
            undecided,
            mean_events,
            events_variance: sample_variance(
                trials,
                events_squared as f64,
                total_events as f64,
                mean_events,
            ),
            mean_final_time,
            final_time_variance: sample_variance(
                trials,
                time_squared_sum.value(),
                total_time,
                mean_final_time,
            ),
        })
    }

    fn validate(&self) -> Result<(), SimulationError> {
        if self.options.trials == 0 {
            return Err(SimulationError::InvalidEnsembleConfig {
                message: "trials must be positive".to_string(),
            });
        }
        if self.initial.species_len() != self.crn.species_len() {
            return Err(SimulationError::StateSizeMismatch {
                network: self.crn.species_len(),
                state: self.initial.species_len(),
            });
        }
        Ok(())
    }

    /// The configured method with [`StepperKind::Auto`] resolved against
    /// this ensemble's network and initial state (a no-op for concrete
    /// kinds).
    fn resolved_method(&self) -> StepperKind {
        self.options.method.resolve(self.crn, &self.initial)
    }

    /// The shared per-range worker body; `start`/`end` are assumed valid and
    /// `method` is already resolved to a concrete kind.
    fn run_range_on(
        &self,
        start: u64,
        end: u64,
        method: StepperKind,
        cancel: &CancelToken,
        profile: &mut SimProfile,
    ) -> Result<EnsemblePartial, SimulationError> {
        let mut stepper = method.stepper();
        // One state buffer per range, re-primed from the initial state each
        // trial; `run_trial` hands the allocation back through the result's
        // `final_state`.
        let mut scratch = self.initial.clone();
        let mut partial = EnsemblePartial {
            start,
            end,
            done: 0,
            counts: BTreeMap::new(),
            undecided: 0,
            total_events: 0,
            events_squared: 0,
            time_sum: ExactSum::new(),
            time_squared_sum: ExactSum::new(),
            time_moments: Moments::new(),
        };
        for trial in start..end {
            if cancel.is_cancelled() {
                // Cancelled (or a sibling worker failed); the incomplete
                // partial is discarded by the caller.
                break;
            }
            let mut rng = StdRng::seed_from_u64(self.options.master_seed.wrapping_add(trial));
            scratch.clone_from(&self.initial);
            let result = run_trial_profiled(
                self.crn,
                stepper.as_mut(),
                &self.options.simulation,
                scratch,
                &mut rng,
                profile,
            )?;
            partial.total_events += result.events;
            partial.events_squared += u128::from(result.events) * u128::from(result.events);
            partial.time_sum.add(result.final_time);
            // Clamp the square at f64::MAX: the superaccumulator rejects
            // infinities, and the clamp is the same pure function of the
            // trial everywhere, so determinism is unaffected.
            partial
                .time_squared_sum
                .add((result.final_time * result.final_time).min(f64::MAX));
            partial.time_moments.push(result.final_time);
            match self.classifier.classify(&result) {
                Some(outcome) => *partial.counts.entry(outcome).or_insert(0) += 1,
                None => partial.undecided += 1,
            }
            partial.done += 1;
            scratch = result.final_state;
        }
        Ok(partial)
    }
}

/// Unbiased sample variance from exact totals, `(Σx² − Σx·x̄)/(n−1)`,
/// clamped at zero against rounding in the final subtraction. Every input
/// is a partition-independent exact readout and the formula is a fixed
/// sequence of f64 operations, so the result is bit-identical across
/// shardings.
fn sample_variance(n: u64, sum_squares: f64, total: f64, mean: f64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    ((sum_squares - total * mean) / (n - 1) as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::SpeciesThresholdClassifier;
    use crate::stop::StopCondition;

    fn coin_crn() -> Crn {
        "x -> h @ 3\nx -> t @ 1".parse().unwrap()
    }

    fn coin_classifier(crn: &Crn) -> SpeciesThresholdClassifier {
        SpeciesThresholdClassifier::new()
            .rule_named(crn, "h", 1, "heads")
            .unwrap()
            .rule_named(crn, "t", 1, "tails")
            .unwrap()
    }

    #[test]
    fn biased_coin_probabilities_converge() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let report = Ensemble::new(&crn, initial, coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(4_000).master_seed(17))
            .run()
            .unwrap();
        assert_eq!(report.trials, 4_000);
        assert_eq!(report.undecided, 0);
        assert!((report.probability("heads") - 0.75).abs() < 0.03);
        assert!((report.probability("tails") - 0.25).abs() < 0.03);
        assert_eq!(report.count("heads") + report.count("tails"), 4_000);
    }

    #[test]
    fn reports_are_independent_of_thread_count() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let run = |threads| {
            Ensemble::new(&crn, initial.clone(), coin_classifier(&crn))
                .options(
                    EnsembleOptions::new()
                        .trials(500)
                        .master_seed(42)
                        .threads(threads),
                )
                .run()
                .unwrap()
        };
        let single = run(1);
        let multi = run(4);
        // The whole report — including floating-point means — is identical.
        assert_eq!(single, multi);
    }

    #[test]
    fn undecided_trajectories_are_reported() {
        // The classifier wants a species that never appears above threshold.
        let crn: Crn = "x -> y @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let classifier = SpeciesThresholdClassifier::new()
            .rule_named(&crn, "y", 100, "many")
            .unwrap();
        let report = Ensemble::new(&crn, initial, classifier)
            .options(EnsembleOptions::new().trials(50).master_seed(3))
            .run()
            .unwrap();
        assert_eq!(report.undecided, 50);
        assert_eq!(report.count("many"), 0);
        assert_eq!(report.undecided_fraction(), 1.0);
        assert_eq!(report.conditional_probability("many"), 0.0);
    }

    #[test]
    fn range_partials_merge_to_the_single_threaded_report() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let ensemble = Ensemble::new(&crn, initial, coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(300).master_seed(9).threads(1));
        let reference = ensemble.run().unwrap();
        // Uneven ranges, produced out of order — as a work-stealing
        // scheduler would.
        let token = CancelToken::new();
        let partials = vec![
            ensemble.run_range(120, 300, &token).unwrap(),
            ensemble.run_range(0, 7, &token).unwrap(),
            ensemble.run_range(7, 120, &token).unwrap(),
        ];
        assert!(partials.iter().all(EnsemblePartial::is_complete));
        assert_eq!(partials[1].range(), (0, 7));
        assert_eq!(partials[1].completed(), 7);
        let merged = ensemble.merge(partials).unwrap();
        assert_eq!(merged, reference);
        assert_eq!(merged.master_seed, 9);
    }

    #[test]
    fn profiled_range_is_bit_identical_and_accumulates_work() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let ensemble = Ensemble::new(&crn, initial, coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(50).master_seed(23));
        let token = CancelToken::new();
        let plain = ensemble.run_range(0, 50, &token).unwrap();
        let mut profile = SimProfile::default();
        let profiled = ensemble
            .run_range_profiled(0, 50, &token, &mut profile)
            .unwrap();
        // Profiling is pure observation: the partial (the wire payload the
        // fabric ships around) is identical byte for byte.
        assert_eq!(profiled, plain);
        // The coin fires exactly one event per trial.
        assert_eq!(profile.steps, 50);
        assert!(
            profile.propensity_evals >= 50,
            "priming alone evaluates every channel each trial: {profile:?}"
        );
        assert_eq!(profile.leaps_accepted, 0);
    }

    #[test]
    fn merged_statistics_are_partition_independent_bitwise() {
        // The old contract was "merge reduces in trial order"; the exact
        // accumulators strengthen it: ANY tiling of the trial range gives
        // the bit-identical report, because readouts are pure functions of
        // the multiset of per-trial values.
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let ensemble = Ensemble::new(&crn, initial, coin_classifier(&crn)).options(
            EnsembleOptions::new()
                .trials(400)
                .master_seed(11)
                .threads(1),
        );
        let reference = ensemble.run().unwrap();
        let token = CancelToken::new();
        for boundaries in [
            vec![0, 400],
            vec![0, 1, 399, 400],
            vec![0, 97, 194, 291, 400],
        ] {
            let partials: Vec<EnsemblePartial> = boundaries
                .windows(2)
                .map(|w| ensemble.run_range(w[0], w[1], &token).unwrap())
                .collect();
            let merged = ensemble.merge(partials).unwrap();
            assert_eq!(merged, reference, "tiling {boundaries:?}");
            assert_eq!(
                merged.mean_final_time.to_bits(),
                reference.mean_final_time.to_bits()
            );
            assert_eq!(
                merged.final_time_variance.to_bits(),
                reference.final_time_variance.to_bits()
            );
            assert_eq!(
                merged.events_variance.to_bits(),
                reference.events_variance.to_bits()
            );
        }
        assert!(reference.final_time_variance > 0.0);
        assert!(reference.events_variance >= 0.0);
    }

    #[test]
    fn partials_round_trip_through_wire_parts_bitwise() {
        // Serialise every partial, reconstruct, merge: the report must be
        // bit-identical to merging the originals — the contract remote
        // workers rely on.
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let ensemble = Ensemble::new(&crn, initial, coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(250).master_seed(4).threads(1));
        let reference = ensemble.run().unwrap();
        let token = CancelToken::new();
        let partials = [
            ensemble.run_range(0, 100, &token).unwrap(),
            ensemble.run_range(100, 250, &token).unwrap(),
        ];
        let round_tripped: Vec<EnsemblePartial> = partials
            .iter()
            .map(|p| {
                let parts = p.to_parts();
                let rebuilt = EnsemblePartial::from_parts(parts).unwrap();
                assert_eq!(&rebuilt, p);
                rebuilt
            })
            .collect();
        assert_eq!(ensemble.merge(round_tripped).unwrap(), reference);
        // Malformed encodings are rejected, not misread.
        let mut bad = partials[0].to_parts();
        bad.time_sum = "not hex".to_string();
        assert!(matches!(
            EnsemblePartial::from_parts(bad).unwrap_err(),
            SimulationError::InvalidEnsembleConfig { .. }
        ));
        let mut bad = partials[0].to_parts();
        bad.done = bad.end - bad.start + 1;
        assert!(EnsemblePartial::from_parts(bad).is_err());
    }

    #[test]
    fn partial_memory_is_independent_of_trial_count() {
        // The streaming accumulators keep a partial O(outcomes) even for
        // huge ranges: the wire form of a 20k-trial partial is the same
        // shape as a 20-trial one (no per-trial vectors anywhere).
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let token = CancelToken::new();
        let small = Ensemble::new(&crn, initial.clone(), coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(20).master_seed(2))
            .run_range(0, 20, &token)
            .unwrap();
        let large = Ensemble::new(&crn, initial, coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(20_000).master_seed(2))
            .run_range(0, 20_000, &token)
            .unwrap();
        assert_eq!(large.to_parts().counts.len(), small.to_parts().counts.len());
        assert_eq!(large.time_moments().count(), 20_000);
        assert!(large.time_moments().variance() > 0.0);
    }

    #[test]
    fn merge_rejects_gaps_and_incomplete_partials() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let ensemble = Ensemble::new(&crn, initial, coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(100).master_seed(1));
        let token = CancelToken::new();
        let head = ensemble.run_range(0, 40, &token).unwrap();
        // A gap (missing [40, 60)) must be rejected…
        let tail = ensemble.run_range(60, 100, &token).unwrap();
        let err = ensemble.merge(vec![head.clone(), tail]).unwrap_err();
        assert!(matches!(err, SimulationError::InvalidEnsembleConfig { .. }));
        // …as must partial coverage.
        let err = ensemble.merge(vec![head]).unwrap_err();
        assert!(matches!(err, SimulationError::InvalidEnsembleConfig { .. }));
        // An empty range is invalid up front.
        let err = ensemble.run_range(10, 10, &token).unwrap_err();
        assert!(matches!(err, SimulationError::InvalidEnsembleConfig { .. }));
    }

    #[test]
    fn cancelled_runs_report_cancellation() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let ensemble = Ensemble::new(&crn, initial, coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(1_000).master_seed(3));
        let cancel = CancelToken::new();
        cancel.cancel();
        assert!(matches!(
            ensemble.run_cancellable(&cancel).unwrap_err(),
            SimulationError::Cancelled
        ));
        // A cancelled range comes back incomplete rather than erroring, so
        // schedulers can distinguish "stopped early" from "failed".
        let partial = ensemble.run_range(0, 100, &cancel).unwrap();
        assert!(!partial.is_complete());
        assert_eq!(partial.completed(), 0);
    }

    #[test]
    fn zero_trials_is_an_error() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let err = Ensemble::new(&crn, initial, coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(0))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimulationError::InvalidEnsembleConfig { .. }));
    }

    #[test]
    fn per_trial_errors_propagate() {
        let crn: Crn = "0 -> a @ 1".parse().unwrap();
        let initial = crn.zero_state();
        let classifier = SpeciesThresholdClassifier::new()
            .rule_named(&crn, "a", 1_000_000, "huge")
            .unwrap();
        let err = Ensemble::new(&crn, initial, classifier)
            .options(
                EnsembleOptions::new()
                    .trials(4)
                    .simulation(SimulationOptions::new().max_events(10)),
            )
            .run()
            .unwrap_err();
        assert!(matches!(err, SimulationError::EventLimitExceeded { .. }));
    }

    #[test]
    fn all_methods_agree_on_the_coin() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        for method in StepperKind::ALL {
            let report = Ensemble::new(&crn, initial.clone(), coin_classifier(&crn))
                .options(
                    EnsembleOptions::new()
                        .trials(2_000)
                        .master_seed(7)
                        .method(method)
                        .simulation(SimulationOptions::new().stop(StopCondition::exhaustion())),
                )
                .run()
                .unwrap();
            assert!(
                (report.probability("heads") - 0.75).abs() < 0.05,
                "{method:?} disagrees: {}",
                report.probability("heads")
            );
        }
    }

    #[test]
    fn mean_statistics_are_populated() {
        let crn = coin_crn();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let report = Ensemble::new(&crn, initial, coin_classifier(&crn))
            .options(EnsembleOptions::new().trials(100).master_seed(5))
            .run()
            .unwrap();
        assert!((report.mean_events - 1.0).abs() < 1e-9);
        assert!(report.mean_final_time > 0.0);
    }
}
