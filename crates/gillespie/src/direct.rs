//! Gillespie's direct method.

use crn::{Crn, State};
use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::ReactionDependencyGraph;
use crate::propensity::PropensitySet;
use crate::simulator::{select_by_weight, SsaStepper, StepOutcome};

/// Gillespie's direct method (Gillespie 1977), with incremental propensity
/// maintenance.
///
/// At each step the method draws the waiting time to the next reaction from
/// an exponential distribution with rate equal to the total propensity, and
/// then picks *which* reaction fires with probability proportional to each
/// reaction's propensity.
///
/// The classic formulation recomputes every propensity from the state on
/// every step, costing `O(R · terms)` per event. This implementation instead
/// keeps the propensity vector up to date through the engine's
/// [`ReactionDependencyGraph`]: after reaction `r` fires, only the
/// propensities of `dependents(r)` are re-evaluated, so the per-event cost
/// drops to `O(R)` cheap additions (for the total and the CDF scan) plus
/// `O(D)` propensity evaluations, where `D` is the dependency out-degree.
///
/// Because a propensity is a pure function of the state, the incrementally
/// maintained vector is *bitwise identical* to a full recompute, and the
/// total is summed in index order exactly as the full path does — so the
/// trajectory (every chosen reaction, every waiting time) is bit-for-bit the
/// same as the textbook implementation on the same seed. A regression test
/// in `tests/determinism.rs` pins this equivalence event-for-event.
///
/// This is the reference algorithm used by the paper's Monte-Carlo
/// experiments; see [`NextReactionMethod`](crate::NextReactionMethod) for a
/// variant that also avoids the `O(R)` scan.
#[derive(Debug, Default, Clone)]
pub struct DirectMethod {
    propensities: PropensitySet,
    deps: ReactionDependencyGraph,
}

impl DirectMethod {
    /// Creates a new direct-method stepper.
    pub fn new() -> Self {
        DirectMethod::default()
    }
}

impl SsaStepper for DirectMethod {
    fn initialize(&mut self, crn: &Crn, state: &State, _rng: &mut StdRng) {
        self.propensities.prime(crn, state);
        self.deps.rebuild(crn);
    }

    fn step(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        // Sum in index order: bitwise identical to the full-recompute path,
        // which accumulates the total while filling the vector.
        let total: f64 = self.propensities.values().iter().sum();
        if total <= 0.0 {
            return StepOutcome::Exhausted;
        }
        // Exponential waiting time with rate `total`.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        *time += -u.ln() / total;

        // Select the firing reaction by inverting the discrete CDF.
        let chosen = select_by_weight(self.propensities.values(), total, rng);
        state
            .apply(&crn.reactions()[chosen])
            .expect("selected reaction must be fireable: propensity was positive");
        // Refresh only the propensities the firing could have changed — a
        // single pass over the SoA layout's contiguous term arrays.
        for &dep in self.deps.dependents(chosen) {
            self.propensities.refresh(dep, state);
        }
        StepOutcome::Fired { reaction: chosen }
    }

    fn profile(&self) -> crate::SimProfile {
        crate::SimProfile {
            propensity_evals: self.propensities.evals(),
            ..crate::SimProfile::default()
        }
    }

    fn name(&self) -> &'static str {
        "direct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{Simulation, SimulationOptions};
    use crate::stop::StopCondition;

    #[test]
    fn conserves_mass_in_closed_network() {
        let crn: Crn = "a + b -> c @ 0.1\nc -> a + b @ 0.2".parse().unwrap();
        let initial = crn.state_from_counts([("a", 50), ("b", 40)]).unwrap();
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(
                SimulationOptions::new()
                    .seed(11)
                    .stop(StopCondition::events(5_000)),
            )
            .run(&initial)
            .unwrap();
        let a = crn.species_id("a").unwrap();
        let b = crn.species_id("b").unwrap();
        let c = crn.species_id("c").unwrap();
        let s = &result.final_state;
        assert_eq!(s.count(a) + s.count(c), 50);
        assert_eq!(s.count(b) + s.count(c), 40);
    }

    #[test]
    fn two_competing_reactions_fire_proportionally_to_rates() {
        // x -> y @ 3 and x -> z @ 1: roughly 75% of x should become y.
        let crn: Crn = "x -> y @ 3\nx -> z @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("x", 10_000)]).unwrap();
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(SimulationOptions::new().seed(7))
            .run(&initial)
            .unwrap();
        let y = result.final_state.count(crn.species_id("y").unwrap()) as f64;
        let frac = y / 10_000.0;
        assert!(
            (frac - 0.75).abs() < 0.02,
            "expected ~75% routed to y, got {frac}"
        );
    }

    #[test]
    fn exponential_waiting_times_have_correct_mean() {
        // Single reaction a -> b with 1 molecule and rate k: mean waiting
        // time is 1/k. Average over many one-step trajectories.
        let crn: Crn = "a -> b @ 4".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        let trials = 4000;
        let mut total_time = 0.0;
        for seed in 0..trials {
            let result = Simulation::new(&crn, DirectMethod::new())
                .options(SimulationOptions::new().seed(seed))
                .run(&initial)
                .unwrap();
            total_time += result.final_time;
        }
        let mean = total_time / trials as f64;
        assert!(
            (mean - 0.25).abs() < 0.02,
            "mean waiting time {mean}, expected 0.25"
        );
    }

    #[test]
    fn exhausts_when_no_reaction_possible() {
        let crn: Crn = "a + b -> c @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 3)]).unwrap();
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(SimulationOptions::new().seed(5))
            .run(&initial)
            .unwrap();
        assert_eq!(result.events, 0);
        assert_eq!(result.final_time, 0.0);
    }

    #[test]
    fn incremental_propensities_track_the_state() {
        // Drive a coupled network for many steps and verify the maintained
        // vector equals a fresh full recompute after every event.
        let crn: Crn = "a + b -> c @ 0.05\nc -> a + b @ 1\nb -> d @ 0.1\nd -> b @ 0.2"
            .parse()
            .unwrap();
        let initial = crn.state_from_counts([("a", 30), ("b", 25)]).unwrap();
        let mut rng = {
            use rand::SeedableRng;
            StdRng::seed_from_u64(99)
        };
        let mut method = DirectMethod::new();
        let mut state = initial.clone();
        let mut time = 0.0;
        method.initialize(&crn, &state, &mut rng);
        for event in 0..2_000 {
            match method.step(&crn, &mut state, &mut time, &mut rng) {
                StepOutcome::Fired { .. } => {
                    let mut fresh = Vec::new();
                    crate::propensity::propensities(&crn, &state, &mut fresh);
                    assert_eq!(
                        method.propensities.values(),
                        fresh.as_slice(),
                        "drift after event {event}"
                    );
                }
                StepOutcome::Leaped { .. } => unreachable!("the direct method never leaps"),
                StepOutcome::Exhausted => break,
            }
        }
    }
}
