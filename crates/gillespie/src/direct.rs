//! Gillespie's direct method.

use crn::{Crn, State};
use rand::rngs::StdRng;
use rand::Rng;

use crate::propensity::propensities;
use crate::simulator::{SsaStepper, StepOutcome};

/// Gillespie's direct method (Gillespie 1977).
///
/// At each step the method draws the waiting time to the next reaction from
/// an exponential distribution with rate equal to the total propensity, and
/// then picks *which* reaction fires with probability proportional to each
/// reaction's propensity. Both draws use a single pass over the propensity
/// vector, so each step costs `O(R)` in the number of reactions.
///
/// This is the reference algorithm used by the paper's Monte-Carlo
/// experiments; see [`NextReactionMethod`](crate::NextReactionMethod) for a
/// variant that scales better with network size.
#[derive(Debug, Default, Clone)]
pub struct DirectMethod {
    propensities: Vec<f64>,
}

impl DirectMethod {
    /// Creates a new direct-method stepper.
    pub fn new() -> Self {
        DirectMethod::default()
    }
}

impl SsaStepper for DirectMethod {
    fn initialize(&mut self, crn: &Crn, _state: &State, _rng: &mut StdRng) {
        self.propensities.clear();
        self.propensities.reserve(crn.reactions().len());
    }

    fn step(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        let total = propensities(crn, state, &mut self.propensities);
        if total <= 0.0 {
            return StepOutcome::Exhausted;
        }
        // Exponential waiting time with rate `total`.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        *time += -u.ln() / total;

        // Select the firing reaction by inverting the discrete CDF.
        let target: f64 = rng.gen::<f64>() * total;
        let mut acc = 0.0;
        let mut chosen = self.propensities.len() - 1;
        for (idx, &a) in self.propensities.iter().enumerate() {
            acc += a;
            if target < acc {
                chosen = idx;
                break;
            }
        }
        // Floating-point round-off can select a reaction with zero
        // propensity at the very end of the CDF; walk back to a fireable one.
        while self.propensities[chosen] <= 0.0 && chosen > 0 {
            chosen -= 1;
        }
        state
            .apply(&crn.reactions()[chosen])
            .expect("selected reaction must be fireable: propensity was positive");
        StepOutcome::Fired { reaction: chosen }
    }

    fn name(&self) -> &'static str {
        "direct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{Simulation, SimulationOptions};
    use crate::stop::StopCondition;

    #[test]
    fn conserves_mass_in_closed_network() {
        let crn: Crn = "a + b -> c @ 0.1\nc -> a + b @ 0.2".parse().unwrap();
        let initial = crn.state_from_counts([("a", 50), ("b", 40)]).unwrap();
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(SimulationOptions::new().seed(11).stop(StopCondition::events(5_000)))
            .run(&initial)
            .unwrap();
        let a = crn.species_id("a").unwrap();
        let b = crn.species_id("b").unwrap();
        let c = crn.species_id("c").unwrap();
        let s = &result.final_state;
        assert_eq!(s.count(a) + s.count(c), 50);
        assert_eq!(s.count(b) + s.count(c), 40);
    }

    #[test]
    fn two_competing_reactions_fire_proportionally_to_rates() {
        // x -> y @ 3 and x -> z @ 1: roughly 75% of x should become y.
        let crn: Crn = "x -> y @ 3\nx -> z @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("x", 10_000)]).unwrap();
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(SimulationOptions::new().seed(7))
            .run(&initial)
            .unwrap();
        let y = result.final_state.count(crn.species_id("y").unwrap()) as f64;
        let frac = y / 10_000.0;
        assert!(
            (frac - 0.75).abs() < 0.02,
            "expected ~75% routed to y, got {frac}"
        );
    }

    #[test]
    fn exponential_waiting_times_have_correct_mean() {
        // Single reaction a -> b with 1 molecule and rate k: mean waiting
        // time is 1/k. Average over many one-step trajectories.
        let crn: Crn = "a -> b @ 4".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        let trials = 4000;
        let mut total_time = 0.0;
        for seed in 0..trials {
            let result = Simulation::new(&crn, DirectMethod::new())
                .options(SimulationOptions::new().seed(seed))
                .run(&initial)
                .unwrap();
            total_time += result.final_time;
        }
        let mean = total_time / trials as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean waiting time {mean}, expected 0.25");
    }

    #[test]
    fn exhausts_when_no_reaction_possible() {
        let crn: Crn = "a + b -> c @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 3)]).unwrap();
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(SimulationOptions::new().seed(5))
            .run(&initial)
            .unwrap();
        assert_eq!(result.events, 0);
        assert_eq!(result.final_time, 0.0);
    }
}
