//! Lightweight per-trajectory work counters.
//!
//! A [`SimProfile`] accumulates how much work a trajectory (or a whole
//! trial range) actually did: driver-level steps, propensity evaluations,
//! tau-leap accept/reject decisions and RK45 accept/reject decisions from
//! the hybrid stepper's mean-field segments. The counters feed the
//! service's metrics and trace spans; they are **observational only** —
//! nothing reads them back into the simulation, so profiled and unprofiled
//! runs produce bit-identical results.
//!
//! Counting conventions:
//!
//! * `steps` is incremented by the driver, once per
//!   [`SsaStepper::step`](crate::SsaStepper::step) call that advanced the
//!   trajectory (a fired reaction or a leap — exhaustion is not a step).
//! * The remaining counters come from [`SsaStepper::profile`]
//!   (crate::SsaStepper::profile), which reports totals since the last
//!   `initialize`; steppers without instrumentation report zeros.

/// Work counters for one trajectory or an accumulated range of trials;
/// see the [module docs](self).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// Stepper calls that advanced the trajectory (events or leaps).
    pub steps: u64,
    /// Individual propensity evaluations (initial priming included).
    pub propensity_evals: u64,
    /// Committed tau-leaps (including the hybrid stepper's fast segments).
    pub leaps_accepted: u64,
    /// Tau-leaps rejected by the negative-population guard and retried.
    pub leaps_rejected: u64,
    /// Accepted RK45 steps in the hybrid stepper's mean-field segments.
    pub rk45_accepted: u64,
    /// Error-rejected RK45 steps in the hybrid stepper's segments.
    pub rk45_rejected: u64,
}

impl SimProfile {
    /// An all-zero profile.
    pub fn new() -> SimProfile {
        SimProfile::default()
    }

    /// Folds `other` into `self` (field-wise saturating adds), so per-trial
    /// profiles accumulate into per-range and per-job totals.
    pub fn merge(&mut self, other: &SimProfile) {
        self.steps = self.steps.saturating_add(other.steps);
        self.propensity_evals = self.propensity_evals.saturating_add(other.propensity_evals);
        self.leaps_accepted = self.leaps_accepted.saturating_add(other.leaps_accepted);
        self.leaps_rejected = self.leaps_rejected.saturating_add(other.leaps_rejected);
        self.rk45_accepted = self.rk45_accepted.saturating_add(other.rk45_accepted);
        self.rk45_rejected = self.rk45_rejected.saturating_add(other.rk45_rejected);
    }

    /// Whether every counter is zero (nothing was profiled).
    pub fn is_empty(&self) -> bool {
        *self == SimProfile::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise_and_saturates() {
        let mut total = SimProfile {
            steps: 10,
            propensity_evals: 100,
            ..SimProfile::default()
        };
        total.merge(&SimProfile {
            steps: 5,
            propensity_evals: 50,
            leaps_accepted: 3,
            leaps_rejected: 1,
            rk45_accepted: 7,
            rk45_rejected: 2,
        });
        assert_eq!(total.steps, 15);
        assert_eq!(total.propensity_evals, 150);
        assert_eq!(total.leaps_accepted, 3);
        assert_eq!(total.leaps_rejected, 1);
        assert_eq!(total.rk45_accepted, 7);
        assert_eq!(total.rk45_rejected, 2);
        assert!(!total.is_empty());
        assert!(SimProfile::new().is_empty());

        let mut near_max = SimProfile {
            steps: u64::MAX - 1,
            ..SimProfile::default()
        };
        near_max.merge(&SimProfile {
            steps: 5,
            ..SimProfile::default()
        });
        assert_eq!(near_max.steps, u64::MAX);
    }
}
