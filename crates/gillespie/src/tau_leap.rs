//! Explicit Poisson tau-leaping with Cao–Gillespie adaptive step selection.

use crn::{Crn, SpeciesId, State};
use rand::distributions::{Distribution, Poisson};
use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::ReactionDependencyGraph;
use crate::propensity::{propensities, propensity};
use crate::simulator::{select_by_weight, SsaStepper, StepOutcome};

/// How many times a leap is halved after a negative-population rejection
/// before the stepper gives up and resolves the region exactly.
const MAX_LEAP_REJECTS: u32 = 16;

/// Explicit Poisson tau-leaping (Gillespie 2001) with the Cao–Gillespie
/// adaptive step-size selection and critical-reaction partitioning
/// (Cao, Gillespie & Petzold 2006).
///
/// Instead of simulating every reaction event individually, the stepper
/// advances time by a leap `τ` chosen so that no propensity changes by more
/// than a fraction `ε` of the total, and fires each channel a
/// Poisson-distributed number of times. For high-population networks this
/// replaces thousands of exact events with a single leap; the price is a
/// controlled `O(ε)` bias in the sampled distributions, which the
/// conformance harness in `tests/statistical_validation.rs` pins against
/// the exact SSA.
///
/// The implementation keeps the exact stack's guarantees and machinery:
///
/// * **Critical-reaction partitioning** — any channel within
///   [`critical_threshold`](Self::with_critical_threshold) firings of
///   exhausting one of its reactants is excluded from leaping and fired
///   one at a time from an exponential clock, so near-empty species are
///   handled exactly.
/// * **Negative-population guarding with leap rejection** — sampled firings
///   are first accumulated into a per-species delta and committed only if
///   every count stays non-negative; a violating leap is rejected and `τ`
///   halved (the Poisson draws are redrawn), never applied partially.
/// * **Exact fallback** — when the selected `τ` would cover fewer than a
///   handful of exact events (`τ·a₀` below a small multiple), the stepper
///   runs a burst of [`DirectMethod`](crate::DirectMethod)-style exact
///   steps instead; low-population networks therefore degrade gracefully
///   to the exact SSA rather than leaping badly.
/// * **Engine reuse** — propensities are refreshed through the engine's
///   [`ReactionDependencyGraph`] (only channels a fired reaction can have
///   invalidated are recomputed), and the stepper plugs into
///   [`Simulation`](crate::Simulation) and the lock-free
///   [`Ensemble`](crate::Ensemble) unchanged, preserving the
///   bit-identical-for-any-thread-count merging contract.
/// * **Time-stop clamping** — when the driver announces a time stop via
///   [`SsaStepper::set_time_limit`], leaps are clamped to land exactly on
///   it, so terminal-state distributions are sampled at the same instant
///   as the exact methods'.
///
/// Granularity caveat: one step is one leap, so
/// [`RecordingMode::EveryEvent`](crate::RecordingMode::EveryEvent) records
/// per *leap* (while [`SimulationResult::events`](crate::SimulationResult)
/// still counts individual firings). Per-event analyses should use an exact
/// stepper.
///
/// # Example
///
/// ```
/// use gillespie::{Simulation, SimulationOptions, StopCondition, TauLeaping};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let crn: crn::Crn = "a -> b @ 1\nb -> a @ 1".parse()?;
/// let initial = crn.state_from_counts([("a", 10_000)])?;
/// let result = Simulation::new(&crn, TauLeaping::new())
///     .options(SimulationOptions::new().seed(7).stop(StopCondition::time(5.0)))
///     .run(&initial)?;
/// // Thousands of firings in a handful of leaps; total mass is conserved.
/// assert_eq!(result.final_state.total(), 10_000);
/// assert_eq!(result.final_time, 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TauLeaping {
    epsilon: f64,
    critical_threshold: u64,
    ssa_factor: f64,
    ssa_burst: u32,
    // --- per-trajectory state ---
    time_limit: f64,
    exact_steps_left: u32,
    // --- profiling counters (observational only; reset per trajectory) ---
    leaps_accepted: u64,
    leaps_rejected: u64,
    prop_evals: u64,
    propensities: Vec<f64>,
    deps: ReactionDependencyGraph,
    /// Per species: highest order of any reaction consuming it, and the
    /// species' largest stoichiometric coefficient among those reactions —
    /// the inputs of Cao's `g_i` factor.
    hor: Vec<u32>,
    hor_coeff: Vec<u32>,
    // --- scratch buffers, reused across steps ---
    mu: Vec<f64>,
    var: Vec<f64>,
    critical: Vec<bool>,
    delta: Vec<i64>,
    firings: Vec<u64>,
    dirty: Vec<bool>,
}

impl Default for TauLeaping {
    fn default() -> Self {
        TauLeaping {
            epsilon: 0.03,
            critical_threshold: 10,
            ssa_factor: 10.0,
            ssa_burst: 20,
            time_limit: f64::INFINITY,
            exact_steps_left: 0,
            leaps_accepted: 0,
            leaps_rejected: 0,
            prop_evals: 0,
            propensities: Vec::new(),
            deps: ReactionDependencyGraph::new(),
            hor: Vec::new(),
            hor_coeff: Vec::new(),
            mu: Vec::new(),
            var: Vec::new(),
            critical: Vec::new(),
            delta: Vec::new(),
            firings: Vec::new(),
            dirty: Vec::new(),
        }
    }
}

impl TauLeaping {
    /// Creates a tau-leaping stepper with the standard tuning: `ε = 0.03`,
    /// critical threshold 10, exact fallback when a leap would cover fewer
    /// than 10 expected events.
    pub fn new() -> Self {
        TauLeaping::default()
    }

    /// Sets the error-control parameter `ε`: no propensity is allowed to
    /// change by more than (roughly) a fraction `ε` over one leap. Smaller
    /// values mean shorter, more accurate leaps.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "tau-leaping epsilon must lie in (0, 1), got {epsilon}"
        );
        self.epsilon = epsilon;
        self
    }

    /// Sets the critical-reaction threshold `n_c`: a channel within `n_c`
    /// firings of exhausting one of its reactants is fired exactly instead
    /// of leaped. `0` disables the partitioning (not recommended).
    pub fn with_critical_threshold(mut self, n_c: u64) -> Self {
        self.critical_threshold = n_c;
        self
    }

    /// Returns the error-control parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Computes the Cao–Gillespie leap candidate `τ` for `state` — the
    /// largest step satisfying the `ε` error bound over the non-critical
    /// channels — without advancing anything.
    ///
    /// Returns `None` when the network is exhausted or every fireable
    /// channel is critical (no leap is possible and the stepper would fall
    /// back to exact steps). This is a diagnostic entry point used by the
    /// property-test suite; it reinitialises the stepper's caches, so call
    /// it on a fresh stepper rather than mid-trajectory.
    pub fn candidate_tau(&mut self, crn: &Crn, state: &State) -> Option<f64> {
        self.prepare(crn, state);
        let (a0, _a0_crit) = self.classify_critical(crn, state);
        if a0 <= 0.0 {
            return None;
        }
        let tau = self.leap_candidate(crn, state);
        tau.is_finite().then_some(tau)
    }

    /// Rebuilds every per-trajectory cache for `crn`/`state`.
    fn prepare(&mut self, crn: &Crn, state: &State) {
        propensities(crn, state, &mut self.propensities);
        self.leaps_accepted = 0;
        self.leaps_rejected = 0;
        self.prop_evals = self.propensities.len() as u64;
        self.deps.rebuild(crn);
        let species_len = crn.species_len();
        let reactions_len = crn.reactions().len();

        self.hor.clear();
        self.hor.resize(species_len, 0);
        self.hor_coeff.clear();
        self.hor_coeff.resize(species_len, 0);
        for r in crn.reactions() {
            let order = r.order();
            for term in r.reactants() {
                let i = term.species.index();
                if order > self.hor[i] {
                    self.hor[i] = order;
                    self.hor_coeff[i] = term.coefficient;
                } else if order == self.hor[i] {
                    self.hor_coeff[i] = self.hor_coeff[i].max(term.coefficient);
                }
            }
        }

        self.mu.clear();
        self.mu.resize(species_len, 0.0);
        self.var.clear();
        self.var.resize(species_len, 0.0);
        self.delta.clear();
        self.delta.resize(species_len, 0);
        self.critical.clear();
        self.critical.resize(reactions_len, false);
        self.firings.clear();
        self.firings.resize(reactions_len, 0);
        self.dirty.clear();
        self.dirty.resize(reactions_len, false);

        self.exact_steps_left = 0;
        self.time_limit = f64::INFINITY;
    }

    /// Flags every fireable channel within `critical_threshold` firings of
    /// exhausting a reactant; returns `(a0, a0_critical)`.
    fn classify_critical(&mut self, crn: &Crn, state: &State) -> (f64, f64) {
        let mut a0 = 0.0;
        let mut a0_crit = 0.0;
        for (j, reaction) in crn.reactions().iter().enumerate() {
            let a = self.propensities[j];
            self.critical[j] = false;
            if a <= 0.0 {
                continue;
            }
            a0 += a;
            let headroom = reaction
                .reactants()
                .iter()
                .map(|t| state.count(t.species) / u64::from(t.coefficient))
                .min()
                .unwrap_or(u64::MAX);
            if headroom < self.critical_threshold {
                self.critical[j] = true;
                a0_crit += a;
            }
        }
        (a0, a0_crit)
    }

    /// The Cao–Gillespie `τ` bound over the non-critical channels:
    /// `τ = min_i { max(εxᵢ/gᵢ, 1)/|μᵢ|, max(εxᵢ/gᵢ, 1)²/σᵢ² }` where `μᵢ`
    /// and `σᵢ²` are the mean and variance rates of change of species `i`
    /// over the non-critical channels and `gᵢ` normalises for the highest
    /// reaction order consuming `i`.
    ///
    /// The minimum runs over every species that is a *reactant of any
    /// reaction* (`hor > 0`), not just reactants of the currently leapable
    /// channels: a species fed by a leaped channel but consumed only by
    /// critical (or momentarily unfireable) ones still drives propensities,
    /// so its drift must bound `τ`. Restricting to leapable-channel
    /// reactants let a birth process starting near zero leap across its
    /// whole relaxation in one step — a distributional bias invisible to
    /// stationary tests and caught by the CME transient oracle in
    /// `tests/cme_oracle.rs`. Species no reaction consumes (pure products)
    /// affect no propensity and stay exempt; returns `∞` when nothing
    /// bounds the leap.
    fn leap_candidate(&mut self, crn: &Crn, state: &State) -> f64 {
        self.mu.fill(0.0);
        self.var.fill(0.0);
        for (j, reaction) in crn.reactions().iter().enumerate() {
            let a = self.propensities[j];
            if a <= 0.0 || self.critical[j] {
                continue;
            }
            for term in reaction.reactants() {
                let v = reaction.net_change(term.species) as f64;
                if v != 0.0 {
                    self.mu[term.species.index()] += v * a;
                    self.var[term.species.index()] += v * v * a;
                }
            }
            for term in reaction.products() {
                // Species also present among the reactants were accumulated
                // above via their (already net) change.
                if reaction.reactant_coefficient(term.species) == 0 {
                    let v = f64::from(term.coefficient);
                    self.mu[term.species.index()] += v * a;
                    self.var[term.species.index()] += v * v * a;
                }
            }
        }

        let mut tau = f64::INFINITY;
        for i in 0..crn.species_len() {
            if self.hor[i] == 0 {
                continue; // consumed by no reaction: drives no propensity
            }
            let x = state.count(SpeciesId::from_index(i));
            let g = g_value(self.hor[i], self.hor_coeff[i], x);
            let bound = (self.epsilon * x as f64 / g).max(1.0);
            if self.mu[i] != 0.0 {
                tau = tau.min(bound / self.mu[i].abs());
            }
            if self.var[i] > 0.0 {
                tau = tau.min(bound * bound / self.var[i]);
            }
        }
        tau
    }

    /// One exact SSA step over the maintained propensity vector — identical
    /// in distribution (and RNG consumption) to
    /// [`DirectMethod`](crate::DirectMethod).
    fn exact_step(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        let total: f64 = self.propensities.iter().sum();
        if total <= 0.0 {
            return StepOutcome::Exhausted;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        *time += -u.ln() / total;
        let chosen = select_by_weight(&self.propensities, total, rng);
        state
            .apply(&crn.reactions()[chosen])
            .expect("selected reaction must be fireable: propensity was positive");
        for &dep in self.deps.dependents(chosen) {
            self.prop_evals += 1;
            self.propensities[dep] = propensity(&crn.reactions()[dep], state);
        }
        StepOutcome::Fired { reaction: chosen }
    }

    /// Accumulates `count` firings of reaction `j` into the per-species
    /// delta buffer.
    fn accumulate_delta(&mut self, crn: &Crn, j: usize, count: u64) {
        let reaction = &crn.reactions()[j];
        let count = count as i64;
        for term in reaction.reactants() {
            self.delta[term.species.index()] -= count * i64::from(term.coefficient);
        }
        for term in reaction.products() {
            self.delta[term.species.index()] += count * i64::from(term.coefficient);
        }
    }
}

/// Cao's `g_i` factor: normalises the relative-change bound `εxᵢ/gᵢ` for
/// the highest order `hor` of any reaction consuming species `i`, with
/// `coeff` the species' largest stoichiometry among those reactions. The
/// small-`x` guards avoid division blow-ups; such species are critical and
/// handled exactly anyway.
pub(crate) fn g_value(hor: u32, coeff: u32, x: u64) -> f64 {
    let xf = x as f64;
    match (hor, coeff) {
        (0, _) | (1, _) => 1.0,
        (2, c) if c >= 2 && x >= 2 => 2.0 + 1.0 / (xf - 1.0),
        (2, _) => 2.0,
        (3, 2) if x >= 2 => 1.5 * (2.0 + 1.0 / (xf - 1.0)),
        (3, c) if c >= 3 && x >= 3 => 3.0 + 1.0 / (xf - 1.0) + 2.0 / (xf - 2.0),
        (3, _) => 3.0,
        (n, _) => f64::from(n),
    }
}

impl SsaStepper for TauLeaping {
    fn initialize(&mut self, crn: &Crn, state: &State, _rng: &mut StdRng) {
        self.prepare(crn, state);
    }

    fn set_time_limit(&mut self, t_stop: f64) {
        self.time_limit = t_stop;
    }

    fn step(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        // Inside a fallback burst: keep stepping exactly, skipping the leap
        // machinery until the burst drains.
        if self.exact_steps_left > 0 {
            self.exact_steps_left -= 1;
            return self.exact_step(crn, state, time, rng);
        }

        let (a0, a0_crit) = self.classify_critical(crn, state);
        if a0 <= 0.0 {
            return StepOutcome::Exhausted;
        }

        let mut tau1 = self.leap_candidate(crn, state);
        // A leap that covers fewer than `ssa_factor` expected events is not
        // worth its overhead (and its ε bound is doing no work): resolve the
        // region with a burst of exact steps instead.
        let fallback_threshold = self.ssa_factor / a0;
        if tau1 <= fallback_threshold {
            self.exact_steps_left = self.ssa_burst.saturating_sub(1);
            return self.exact_step(crn, state, time, rng);
        }

        // The critical channels fire one at a time from their own
        // exponential clock.
        let mut tau2 = if a0_crit > 0.0 {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            -u.ln() / a0_crit
        } else {
            f64::INFINITY
        };

        let remaining = self.time_limit - *time;
        for _ in 0..MAX_LEAP_REJECTS {
            let mut fire_critical = tau2 <= tau1;
            let mut tau = if fire_critical { tau2 } else { tau1 };
            let mut clamped = false;
            if remaining > 0.0 && remaining.is_finite() && tau > remaining {
                // Land exactly on the driver's time stop; any critical event
                // beyond it no longer happens within this trajectory.
                tau = remaining;
                fire_critical = false;
                clamped = true;
            }
            if !tau.is_finite() {
                // Degenerate network (no net state change anywhere): treat
                // exactly rather than leaping an infinite span.
                return self.exact_step(crn, state, time, rng);
            }

            // Draw the batch of firings and accumulate the species deltas.
            self.delta.fill(0);
            self.firings.fill(0);
            let mut total_firings = 0u64;
            for j in 0..crn.reactions().len() {
                let a = self.propensities[j];
                if a <= 0.0 || self.critical[j] {
                    continue;
                }
                let k = Poisson::new(a * tau).sample(rng);
                if k > 0 {
                    self.firings[j] = k;
                    total_firings += k;
                    self.accumulate_delta(crn, j, k);
                }
            }
            if fire_critical {
                // Choose which critical channel fires, proportionally to the
                // critical propensities.
                let mut target: f64 = rng.gen::<f64>() * a0_crit;
                let mut chosen = None;
                for (j, &is_critical) in self.critical.iter().enumerate() {
                    if !is_critical {
                        continue;
                    }
                    target -= self.propensities[j];
                    chosen = Some(j);
                    if target < 0.0 {
                        break;
                    }
                }
                if let Some(j) = chosen {
                    self.firings[j] += 1;
                    total_firings += 1;
                    self.accumulate_delta(crn, j, 1);
                }
            }

            // Negative-population guard: commit all-or-nothing.
            let violation = self
                .delta
                .iter()
                .enumerate()
                .any(|(i, &d)| d < 0 && state.count(SpeciesId::from_index(i)) as i64 + d < 0);
            if violation {
                // Reject the whole leap and retry with half the step. The
                // critical clock is redrawn on the next step call, which the
                // exponential's memorylessness makes harmless.
                self.leaps_rejected += 1;
                tau1 = tau * 0.5;
                tau2 = f64::INFINITY;
                if tau1 <= fallback_threshold {
                    self.exact_steps_left = self.ssa_burst.saturating_sub(1);
                    return self.exact_step(crn, state, time, rng);
                }
                continue;
            }

            for (i, &d) in self.delta.iter().enumerate() {
                if d != 0 {
                    let id = SpeciesId::from_index(i);
                    state.set(id, (state.count(id) as i64 + d) as u64);
                }
            }
            // A clamped leap lands bit-exactly on the stop time; `t + (T−t)`
            // would round past or short of it.
            *time = if clamped {
                self.time_limit
            } else {
                *time + tau
            };

            // Refresh exactly the propensities the fired channels can have
            // invalidated, via the shared dependency graph.
            if total_firings > 0 {
                self.dirty.fill(false);
                for (j, &k) in self.firings.iter().enumerate() {
                    if k > 0 {
                        for &dep in self.deps.dependents(j) {
                            self.dirty[dep] = true;
                        }
                    }
                }
                for (r, &dirty) in self.dirty.iter().enumerate() {
                    if dirty {
                        self.prop_evals += 1;
                        self.propensities[r] = propensity(&crn.reactions()[r], state);
                    }
                }
            }
            self.leaps_accepted += 1;
            return StepOutcome::Leaped {
                firings: total_firings,
            };
        }

        // Persistent rejection: the state sits so close to a boundary that
        // leaping keeps failing — resolve exactly.
        self.exact_steps_left = self.ssa_burst.saturating_sub(1);
        self.exact_step(crn, state, time, rng)
    }

    fn profile(&self) -> crate::SimProfile {
        crate::SimProfile {
            propensity_evals: self.prop_evals,
            leaps_accepted: self.leaps_accepted,
            leaps_rejected: self.leaps_rejected,
            ..crate::SimProfile::default()
        }
    }

    fn name(&self) -> &'static str {
        "tau-leaping"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{Simulation, SimulationOptions};
    use crate::stop::StopCondition;

    #[test]
    fn conserves_mass_on_a_closed_network() {
        let crn: Crn = "a -> b @ 2\nb -> a @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 50_000)]).unwrap();
        let result = Simulation::new(&crn, TauLeaping::new())
            .options(
                SimulationOptions::new()
                    .seed(1)
                    .stop(StopCondition::time(3.0)),
            )
            .run(&initial)
            .unwrap();
        assert_eq!(result.final_state.total(), 50_000);
        assert_eq!(result.final_time, 3.0, "leaps must land on the time stop");
        assert!(result.events > 100_000, "high-population run must leap");
    }

    #[test]
    fn leaps_fire_many_events_per_step() {
        // Start at equilibrium: the τ bound is then governed by the
        // fluctuation term and every step is a genuine leap. (From a
        // lopsided start the stepper correctly spends the early transient
        // in fine steps while the small side grows — see
        // `tests/cme_oracle.rs` for the distributional pin.)
        let crn: Crn = "a -> b @ 1\nb -> a @ 1".parse().unwrap();
        let initial = crn
            .state_from_counts([("a", 10_000), ("b", 10_000)])
            .unwrap();
        let result = Simulation::new(&crn, TauLeaping::new())
            .options(
                SimulationOptions::new()
                    .seed(5)
                    .stop(StopCondition::time(1.0))
                    .recording(crate::trajectory::RecordingMode::EveryEvent),
            )
            .run(&initial)
            .unwrap();
        let steps = result.trajectory.len() as u64 - 1;
        assert!(
            result.events > steps * 50,
            "{} firings over {steps} steps is not leaping",
            result.events
        );
    }

    #[test]
    fn small_populations_fall_back_to_exact_behaviour() {
        // A single molecule can never be leaped: every channel is critical
        // and tau would cover less than one event.
        let crn: Crn = "x -> h @ 3\nx -> t @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("x", 1)]).unwrap();
        let h = crn.species_id("h").unwrap();
        let t = crn.species_id("t").unwrap();
        let mut heads = 0u64;
        for seed in 0..2_000 {
            let result = Simulation::new(&crn, TauLeaping::new())
                .options(SimulationOptions::new().seed(seed))
                .run(&initial)
                .unwrap();
            assert_eq!(result.events, 1);
            assert_eq!(result.final_state.count(h) + result.final_state.count(t), 1);
            heads += result.final_state.count(h);
        }
        let p = heads as f64 / 2_000.0;
        assert!((p - 0.75).abs() < 0.03, "heads probability {p}");
    }

    #[test]
    fn populations_never_go_negative_near_extinction() {
        // Pure death from a modest count: the guard plus critical handling
        // must walk the population to exactly zero.
        let crn: Crn = "a -> 0 @ 10".parse().unwrap();
        let initial = crn.state_from_counts([("a", 5_000)]).unwrap();
        for seed in 0..20 {
            let result = Simulation::new(&crn, TauLeaping::new())
                .options(SimulationOptions::new().seed(seed))
                .run(&initial)
                .unwrap();
            assert_eq!(result.events, 5_000, "every molecule dies exactly once");
            assert_eq!(result.final_state.total(), 0);
        }
    }

    #[test]
    fn candidate_tau_scales_with_epsilon() {
        let crn: Crn = "a -> b @ 1\nb -> a @ 1".parse().unwrap();
        let state = crn
            .state_from_counts([("a", 10_000), ("b", 10_000)])
            .unwrap();
        let tau_at = |eps: f64| {
            TauLeaping::new()
                .with_epsilon(eps)
                .candidate_tau(&crn, &state)
                .expect("leap possible")
        };
        let coarse = tau_at(0.1);
        let fine = tau_at(0.01);
        assert!(fine < coarse, "fine {fine} should be below coarse {coarse}");
        assert!(fine > 0.0);
    }

    #[test]
    fn candidate_tau_is_none_when_exhausted_or_fully_critical() {
        let crn: Crn = "a -> b @ 1".parse().unwrap();
        let exhausted = crn.state_from_counts([("b", 10)]).unwrap();
        assert_eq!(TauLeaping::new().candidate_tau(&crn, &exhausted), None);
        // Fireable but with only 3 molecules: critical, so no leap.
        let critical = crn.state_from_counts([("a", 3)]).unwrap();
        assert_eq!(TauLeaping::new().candidate_tau(&crn, &critical), None);
    }

    #[test]
    fn second_order_g_values_guard_small_counts() {
        assert_eq!(g_value(1, 1, 100), 1.0);
        assert_eq!(g_value(2, 1, 100), 2.0);
        assert!((g_value(2, 2, 5) - 2.25).abs() < 1e-12);
        assert_eq!(g_value(2, 2, 1), 2.0);
        assert!((g_value(3, 3, 6) - (3.0 + 0.2 + 0.5)).abs() < 1e-12);
        assert_eq!(g_value(4, 1, 10), 4.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in (0, 1)")]
    fn rejects_invalid_epsilon() {
        let _ = TauLeaping::new().with_epsilon(1.5);
    }
}
