//! Hybrid multiscale stepper: fast channels leaped (or integrated as an
//! ODE mean field), slow channels fired exactly from their integrated
//! hazard.

use crn::{Crn, Reaction, SpeciesId, State};
use numerics::ode::Rk45;
use rand::distributions::{Distribution, Poisson};
use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::ReactionDependencyGraph;
use crate::propensity::{propensities, propensity};
use crate::simulator::{select_by_weight, SsaStepper, StepOutcome};
use crate::tau_leap::g_value;

/// How many times a leap is halved after a negative-population rejection
/// before the stepper gives up and resolves the region exactly.
const MAX_LEAP_REJECTS: u32 = 16;

/// Default rate threshold of the fast partition: a channel firing fewer
/// than this many times per unit time is treated as a discrete stochastic
/// event source, not as part of the continuum. Deliberately above every
/// propensity in the low-copy oracle networks (which must run exactly) and
/// well below the 10³–10⁵ per-channel rates of the multiscale regimes the
/// stepper exists for.
pub(crate) const DEFAULT_FAST_PROPENSITY_MIN: f64 = 250.0;

/// Default population threshold shared with tau-leaping's critical rule: a
/// channel within this many firings of exhausting a reactant stays in the
/// slow (exact) partition regardless of its rate.
const DEFAULT_CRITICAL_THRESHOLD: u64 = 10;

/// When one slow-event waiting time would cover at least this many tau
/// leaps, the fast partition is advanced as a deterministic RK45 mean field
/// instead — the regime where the Cao bound is strangled by a stiff
/// low-population cycle (e.g. enzyme turnover) and explicit leaping
/// degenerates into thousands of tiny steps.
pub(crate) const DEFAULT_ODE_MIN_LEAPS: f64 = 100.0;

/// An ODE segment integrates at most this many expected slow-event waiting
/// times before handing control back (the budget is then decremented by
/// the hazard actually accumulated and the partition re-examined).
const ODE_HORIZON_BUDGETS: f64 = 4.0;

/// Decides whether a channel belongs to the fast partition in `state`:
/// its propensity must clear `fast_min` *and* it must be at least `n_c`
/// firings away from exhausting any species it **net-consumes** (the
/// tau-leaping critical rule), so near-exhausted species always stay
/// discrete. Catalytic reactants (net change ≥ 0, e.g. a promoter in
/// `gOn -> gOn + s`) impose no headroom: the channel cannot deplete them.
pub(crate) fn channel_is_fast(
    reaction: &Reaction,
    a: f64,
    state: &State,
    fast_min: f64,
    n_c: u64,
) -> bool {
    if a < fast_min {
        return false;
    }
    let headroom = reaction
        .reactants()
        .iter()
        .filter_map(|t| {
            let net = reaction.net_change(t.species);
            (net < 0).then(|| state.count(t.species) / net.unsigned_abs())
        })
        .min()
        .unwrap_or(u64::MAX);
    headroom >= n_c
}

/// Splits the total propensity of `state` into the fast and slow partition
/// masses `(a0_fast, a0_slow)` under the default hybrid partition rule —
/// the feature the [`classify`](crate::classify) portfolio probes to detect
/// timescale separation. Channels with zero propensity contribute to
/// neither mass.
pub(crate) fn partition_masses(crn: &Crn, state: &State, propensities: &[f64]) -> (f64, f64) {
    let mut fast = 0.0;
    let mut slow = 0.0;
    for (j, reaction) in crn.reactions().iter().enumerate() {
        let a = propensities[j];
        if a <= 0.0 {
            continue;
        }
        if channel_is_fast(
            reaction,
            a,
            state,
            DEFAULT_FAST_PROPENSITY_MIN,
            DEFAULT_CRITICAL_THRESHOLD,
        ) {
            fast += a;
        } else {
            slow += a;
        }
    }
    (fast, slow)
}

/// The mass-action propensity extended to a continuous (real-valued) state:
/// `k · Π_s x_s(x_s−1)…(x_s−ν+1)/ν!` with each factor clamped at zero, so
/// the mean field cannot push a rate negative.
fn continuous_propensity(reaction: &Reaction, y: &[f64]) -> f64 {
    let mut combinations = 1.0f64;
    for term in reaction.reactants() {
        let x = y[term.species.index()];
        for l in 0..term.coefficient {
            combinations *= (x - f64::from(l)).max(0.0);
        }
        for d in 2..=term.coefficient {
            combinations /= f64::from(d);
        }
    }
    reaction.rate() * combinations
}

/// Work counters a [`Hybrid`] trajectory accumulates, for diagnostics and
/// tests — which regimes the stepper actually ran in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridDiagnostics {
    /// Exact SSA steps taken (slow-partition-only states, fallback bursts).
    pub exact_steps: u64,
    /// Stochastic tau-leap segments over the fast partition.
    pub tau_segments: u64,
    /// Deterministic RK45 mean-field segments over the fast partition.
    pub ode_segments: u64,
    /// Accepted RK45 steps across all ODE segments.
    pub ode_steps: u64,
    /// Error-rejected RK45 steps across all ODE segments.
    pub ode_rejected: u64,
    /// Slow-channel firings triggered by the integrated-hazard budget.
    pub slow_firings: u64,
}

/// Hybrid multiscale stepper (Haseltine & Rawlings 2002): dynamically
/// partitions the reaction channels into a **fast** set — high-propensity
/// channels with population headroom — and a **slow** remainder, then
/// advances them by different machinery within one trajectory:
///
/// * the fast partition is advanced by Poisson tau-leaping with the
///   Cao–Gillespie step bound, or — when a stiff low-population cycle
///   forces the bound so far down that reaching the next slow event would
///   take [`ODE_MIN_LEAPS`](DEFAULT_ODE_MIN_LEAPS)+ leaps — as a
///   deterministic mean field integrated by the Dormand–Prince RK45 solver
///   in [`numerics::ode`];
/// * slow channels fire **exactly**, by time-rescaling: an `Exp(1)` budget
///   `R` is drawn once, each fast segment subtracts the slow hazard
///   `∫ a₀_slow dt` accumulated along the (leaped or integrated) fast
///   trajectory, and when the budget crosses zero the segment stops at the
///   crossing — located by bisection inside the RK45 step in ODE mode —
///   and one slow channel fires, selected proportionally to the slow
///   propensities at the firing state. The exponential's memorylessness
///   makes the budget persistent across repartitions.
///
/// The partition is re-examined **every segment** against both thresholds
/// (propensity ≥ [`fast_propensity_min`](Self::with_fast_propensity_min),
/// reactant headroom ≥ the critical threshold), so population crossings
/// migrate channels between partitions as the trajectory moves; when no
/// channel qualifies as fast the stepper degrades to bursts of exact SSA
/// steps that consume the RNG stream *identically* to
/// [`DirectMethod`](crate::DirectMethod) — low-copy networks (the paper's
/// synthesis circuits, the CME-oracle systems) run bit-for-bit as exact
/// trajectories. All state commits are whole reaction firings (ODE
/// segments round their channel integrals to integers with persistent
/// carries), so conservation laws hold exactly in every mode, and leaps
/// are all-or-nothing negativity-guarded with step halving and exact
/// fallback, exactly like [`TauLeaping`](crate::TauLeaping).
///
/// Like every stepper in this crate it is driven per-trial with a
/// per-trial RNG, so [`Ensemble`](crate::Ensemble) reports stay
/// bit-identical across any thread count.
///
/// # Example
///
/// ```
/// use gillespie::{Hybrid, Simulation, SimulationOptions, StopCondition};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A fast high-copy pool driving a slow conversion.
/// let crn: crn::Crn = "0 -> x @ 2000\nx -> 0 @ 0.2\nx -> x + p @ 0.0002".parse()?;
/// let result = Simulation::new(&crn, Hybrid::new())
///     .options(SimulationOptions::new().seed(7).stop(StopCondition::time(0.5)))
///     .run(&crn.zero_state())?;
/// assert_eq!(result.final_time, 0.5);
/// assert!(result.events > 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Hybrid {
    epsilon: f64,
    fast_propensity_min: f64,
    critical_threshold: u64,
    ssa_factor: f64,
    ssa_burst: u32,
    ode_min_leaps: f64,
    // --- per-trajectory state ---
    time_limit: f64,
    exact_steps_left: u32,
    /// Remaining `Exp(1)` hazard budget of the slow partition; `None` until
    /// first needed and after every slow firing.
    slow_budget: Option<f64>,
    diagnostics: HybridDiagnostics,
    propensities: Vec<f64>,
    deps: ReactionDependencyGraph,
    /// Per species: highest consuming reaction order and its largest
    /// stoichiometric coefficient (inputs of Cao's `g_i`).
    hor: Vec<u32>,
    hor_coeff: Vec<u32>,
    /// Per reaction: fractional ODE firing carry, persistent across
    /// segments so rounding never drifts.
    carry: Vec<f64>,
    ode: Rk45,
    // --- scratch buffers, reused across steps ---
    fast: Vec<bool>,
    fast_idx: Vec<usize>,
    mu: Vec<f64>,
    var: Vec<f64>,
    delta: Vec<i64>,
    firings: Vec<u64>,
    dirty: Vec<bool>,
    y: Vec<f64>,
    carry_next: Vec<f64>,
}

impl Default for Hybrid {
    fn default() -> Self {
        Hybrid {
            epsilon: 0.03,
            fast_propensity_min: DEFAULT_FAST_PROPENSITY_MIN,
            critical_threshold: DEFAULT_CRITICAL_THRESHOLD,
            ssa_factor: 10.0,
            ssa_burst: 20,
            ode_min_leaps: DEFAULT_ODE_MIN_LEAPS,
            time_limit: f64::INFINITY,
            exact_steps_left: 0,
            slow_budget: None,
            diagnostics: HybridDiagnostics::default(),
            propensities: Vec::new(),
            deps: ReactionDependencyGraph::new(),
            hor: Vec::new(),
            hor_coeff: Vec::new(),
            carry: Vec::new(),
            // Committed firings are floored to integers with persistent
            // carries, so the mean field only has to be accurate to the
            // O(1) discreteness noise it is overlaid on — the RK45 default
            // (1e-6 relative) buys nothing but steps here. The CME-oracle
            // harness pins the resulting distributional accuracy.
            ode: Rk45::with_tolerances(1e-4, 1e-6),
            fast: Vec::new(),
            fast_idx: Vec::new(),
            mu: Vec::new(),
            var: Vec::new(),
            delta: Vec::new(),
            firings: Vec::new(),
            dirty: Vec::new(),
            y: Vec::new(),
            carry_next: Vec::new(),
        }
    }
}

impl Hybrid {
    /// Creates a hybrid stepper with the standard tuning: `ε = 0.03`, fast
    /// partition at propensity ≥ 250 with ≥ 10 firings of headroom, exact
    /// fallback bursts of 20 steps, ODE escalation at 100 leaps per slow
    /// event.
    pub fn new() -> Self {
        Hybrid::default()
    }

    /// Sets the tau-leap error-control parameter `ε` for the fast
    /// partition.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "hybrid epsilon must lie in (0, 1), got {epsilon}"
        );
        self.epsilon = epsilon;
        self
    }

    /// Sets the propensity threshold of the fast partition: channels firing
    /// fewer than `rate` times per unit time are handled exactly.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is finite and positive.
    pub fn with_fast_propensity_min(mut self, rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "fast propensity threshold must be finite and positive, got {rate}"
        );
        self.fast_propensity_min = rate;
        self
    }

    /// Sets the leaps-per-slow-event threshold above which a fast segment
    /// is integrated as a deterministic RK45 mean field instead of leaped.
    /// `f64::INFINITY` disables the ODE mode entirely.
    ///
    /// # Panics
    ///
    /// Panics unless `leaps >= 1`.
    pub fn with_ode_min_leaps(mut self, leaps: f64) -> Self {
        assert!(
            leaps >= 1.0,
            "ODE escalation threshold must be ≥ 1, got {leaps}"
        );
        self.ode_min_leaps = leaps;
        self
    }

    /// The tau-leap error-control parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The fast-partition propensity threshold.
    pub fn fast_propensity_min(&self) -> f64 {
        self.fast_propensity_min
    }

    /// Work counters of the current (or last completed) trajectory; reset
    /// by [`SsaStepper::initialize`].
    pub fn diagnostics(&self) -> HybridDiagnostics {
        self.diagnostics
    }

    /// Computes the fast/slow partition of `crn` in `state` without
    /// advancing anything: `true` marks a fast channel. A diagnostic entry
    /// point for the property-test suite; it reinitialises the stepper's
    /// caches, so call it on a fresh stepper rather than mid-trajectory.
    pub fn partition(&mut self, crn: &Crn, state: &State) -> Vec<bool> {
        self.prepare(crn, state);
        self.classify(crn, state);
        self.fast.clone()
    }

    /// Rebuilds every per-trajectory cache for `crn`/`state`.
    fn prepare(&mut self, crn: &Crn, state: &State) {
        propensities(crn, state, &mut self.propensities);
        self.deps.rebuild(crn);
        let species_len = crn.species_len();
        let reactions_len = crn.reactions().len();

        self.hor.clear();
        self.hor.resize(species_len, 0);
        self.hor_coeff.clear();
        self.hor_coeff.resize(species_len, 0);
        for r in crn.reactions() {
            let order = r.order();
            for term in r.reactants() {
                let i = term.species.index();
                if order > self.hor[i] {
                    self.hor[i] = order;
                    self.hor_coeff[i] = term.coefficient;
                } else if order == self.hor[i] {
                    self.hor_coeff[i] = self.hor_coeff[i].max(term.coefficient);
                }
            }
        }

        self.mu.clear();
        self.mu.resize(species_len, 0.0);
        self.var.clear();
        self.var.resize(species_len, 0.0);
        self.delta.clear();
        self.delta.resize(species_len, 0);
        self.fast.clear();
        self.fast.resize(reactions_len, false);
        self.firings.clear();
        self.firings.resize(reactions_len, 0);
        self.dirty.clear();
        self.dirty.resize(reactions_len, false);
        self.carry.clear();
        self.carry.resize(reactions_len, 0.0);

        self.exact_steps_left = 0;
        self.slow_budget = None;
        self.time_limit = f64::INFINITY;
        self.diagnostics = HybridDiagnostics::default();
    }

    /// Re-examines the partition in `state`; returns
    /// `(a0, a0_fast, a0_slow)`.
    fn classify(&mut self, crn: &Crn, state: &State) -> (f64, f64, f64) {
        let mut a0 = 0.0;
        let mut a0_fast = 0.0;
        let mut a0_slow = 0.0;
        for (j, reaction) in crn.reactions().iter().enumerate() {
            let a = self.propensities[j];
            self.fast[j] = false;
            if a <= 0.0 {
                continue;
            }
            a0 += a;
            if channel_is_fast(
                reaction,
                a,
                state,
                self.fast_propensity_min,
                self.critical_threshold,
            ) {
                self.fast[j] = true;
                a0_fast += a;
            } else {
                a0_slow += a;
            }
        }
        (a0, a0_fast, a0_slow)
    }

    /// The Cao–Gillespie `τ` bound over the fast partition — identical in
    /// structure to tau-leaping's, with "leapable" meaning "fast". The
    /// minimum runs over every species any reaction consumes (`hor > 0`),
    /// the lesson of the transient-bias fix pinned by `tests/cme_oracle.rs`.
    fn leap_candidate(&mut self, crn: &Crn, state: &State) -> f64 {
        self.mu.fill(0.0);
        self.var.fill(0.0);
        for (j, reaction) in crn.reactions().iter().enumerate() {
            if !self.fast[j] {
                continue;
            }
            let a = self.propensities[j];
            for term in reaction.reactants() {
                let v = reaction.net_change(term.species) as f64;
                if v != 0.0 {
                    self.mu[term.species.index()] += v * a;
                    self.var[term.species.index()] += v * v * a;
                }
            }
            for term in reaction.products() {
                if reaction.reactant_coefficient(term.species) == 0 {
                    let v = f64::from(term.coefficient);
                    self.mu[term.species.index()] += v * a;
                    self.var[term.species.index()] += v * v * a;
                }
            }
        }

        let mut tau = f64::INFINITY;
        for i in 0..crn.species_len() {
            if self.hor[i] == 0 {
                continue;
            }
            let x = state.count(SpeciesId::from_index(i));
            let g = g_value(self.hor[i], self.hor_coeff[i], x);
            let bound = (self.epsilon * x as f64 / g).max(1.0);
            if self.mu[i] != 0.0 {
                tau = tau.min(bound / self.mu[i].abs());
            }
            if self.var[i] > 0.0 {
                tau = tau.min(bound * bound / self.var[i]);
            }
        }
        tau
    }

    /// One exact SSA step over the maintained propensity vector — identical
    /// in distribution *and RNG consumption* to
    /// [`DirectMethod`](crate::DirectMethod), which is what makes all-slow
    /// trajectories bit-reproducible against the exact stack.
    fn exact_step(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        let total: f64 = self.propensities.iter().sum();
        if total <= 0.0 {
            return StepOutcome::Exhausted;
        }
        self.diagnostics.exact_steps += 1;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        *time += -u.ln() / total;
        let chosen = select_by_weight(&self.propensities, total, rng);
        state
            .apply(&crn.reactions()[chosen])
            .expect("selected reaction must be fireable: propensity was positive");
        for &dep in self.deps.dependents(chosen) {
            self.propensities[dep] = propensity(&crn.reactions()[dep], state);
        }
        StepOutcome::Fired { reaction: chosen }
    }

    /// Starts a burst of exact steps and takes the first one.
    fn exact_burst(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        self.exact_steps_left = self.ssa_burst.saturating_sub(1);
        self.exact_step(crn, state, time, rng)
    }

    /// Accumulates `count` firings of reaction `j` into the per-species
    /// delta buffer.
    fn accumulate_delta(&mut self, crn: &Crn, j: usize, count: u64) {
        let reaction = &crn.reactions()[j];
        let count = count as i64;
        for term in reaction.reactants() {
            self.delta[term.species.index()] -= count * i64::from(term.coefficient);
        }
        for term in reaction.products() {
            self.delta[term.species.index()] += count * i64::from(term.coefficient);
        }
    }

    /// `true` when committing the accumulated deltas would drive a species
    /// negative.
    fn delta_violates(&self, state: &State) -> bool {
        self.delta
            .iter()
            .enumerate()
            .any(|(i, &d)| d < 0 && state.count(SpeciesId::from_index(i)) as i64 + d < 0)
    }

    /// Commits the accumulated deltas to the state.
    fn commit_delta(&self, state: &mut State) {
        for (i, &d) in self.delta.iter().enumerate() {
            if d != 0 {
                let id = SpeciesId::from_index(i);
                state.set(id, (state.count(id) as i64 + d) as u64);
            }
        }
    }

    /// Refreshes exactly the propensities the fired channels can have
    /// invalidated, via the shared dependency graph.
    fn refresh_fired(&mut self, crn: &Crn, state: &State) {
        self.dirty.fill(false);
        for (j, &k) in self.firings.iter().enumerate() {
            if k > 0 {
                for &dep in self.deps.dependents(j) {
                    self.dirty[dep] = true;
                }
            }
        }
        for (r, &dirty) in self.dirty.iter().enumerate() {
            if dirty {
                self.propensities[r] = propensity(&crn.reactions()[r], state);
            }
        }
    }

    /// Selects a slow channel proportionally to the current slow
    /// propensities (total `a0_slow`), or `None` when no slow channel is
    /// fireable.
    fn select_slow(&self, a0_slow: f64, rng: &mut StdRng) -> Option<usize> {
        if a0_slow <= 0.0 {
            return None;
        }
        let mut target: f64 = rng.gen::<f64>() * a0_slow;
        let mut chosen = None;
        for (j, &is_fast) in self.fast.iter().enumerate() {
            if is_fast || self.propensities[j] <= 0.0 {
                continue;
            }
            target -= self.propensities[j];
            chosen = Some(j);
            if target < 0.0 {
                break;
            }
        }
        chosen
    }

    /// Advances one deterministic RK45 mean-field segment over the fast
    /// partition, accumulating per-channel firing integrals and the slow
    /// hazard; commits integer firings (with persistent carries) and fires
    /// a slow channel if the hazard budget was crossed. Returns `None` when
    /// the segment cannot be taken (integration failure, negativity) — the
    /// caller falls back to exact steps; nothing has been committed.
    #[allow(clippy::too_many_arguments)]
    fn ode_segment(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
        budget: f64,
        slow_wait: f64,
        remaining: f64,
    ) -> Option<StepOutcome> {
        let n = crn.species_len();
        self.fast_idx.clear();
        for (j, &is_fast) in self.fast.iter().enumerate() {
            if is_fast {
                self.fast_idx.push(j);
            }
        }
        let m = self.fast_idx.len();

        let mut t_span = slow_wait * ODE_HORIZON_BUDGETS;
        let mut capped_by_limit = false;
        if remaining.is_finite() && remaining > 0.0 && t_span >= remaining {
            t_span = remaining;
            capped_by_limit = true;
        }
        if !t_span.is_finite() || t_span <= 0.0 {
            return None;
        }

        // Augmented state: [species…, F_j per fast channel…, S].
        let mut y = std::mem::take(&mut self.y);
        y.clear();
        y.reserve(n + m + 1);
        for i in 0..n {
            y.push(state.count(SpeciesId::from_index(i)) as f64);
        }
        y.extend(std::iter::repeat_n(0.0, m + 1));

        let mut ode = std::mem::take(&mut self.ode);
        let fast = &self.fast;
        let fast_idx = &self.fast_idx;
        let outcome = ode.integrate_until(
            |_t, y: &[f64], dy: &mut [f64]| {
                dy.fill(0.0);
                for (fi, &j) in fast_idx.iter().enumerate() {
                    let reaction = &crn.reactions()[j];
                    let a = continuous_propensity(reaction, &y[..n]);
                    dy[n + fi] = a;
                    if a > 0.0 {
                        for term in reaction.reactants() {
                            dy[term.species.index()] -= a * f64::from(term.coefficient);
                        }
                        for term in reaction.products() {
                            dy[term.species.index()] += a * f64::from(term.coefficient);
                        }
                    }
                }
                let mut slow = 0.0;
                for (j, reaction) in crn.reactions().iter().enumerate() {
                    if !fast[j] {
                        slow += continuous_propensity(reaction, &y[..n]);
                    }
                }
                dy[n + m] = slow;
            },
            |_t, y: &[f64]| y[n + m] - budget,
            0.0,
            t_span,
            &mut y,
        );
        self.ode = ode;

        let outcome = match outcome {
            Ok(o) => o,
            Err(_) => {
                self.y = y;
                return None;
            }
        };

        // Round the channel integrals to whole firings with persistent
        // carries, and guard the commit all-or-nothing.
        self.delta.fill(0);
        self.firings.fill(0);
        self.carry_next.clear();
        self.carry_next.resize(m, 0.0);
        let mut total_firings = 0u64;
        let mut sound = true;
        for (fi, &j) in self.fast_idx.iter().enumerate() {
            let integral = y[n + fi] + self.carry[j];
            let whole = integral.floor();
            if !(0.0..9.0e15).contains(&whole) {
                sound = false;
                break;
            }
            self.carry_next[fi] = integral - whole;
            let k = whole as u64;
            if k > 0 {
                self.firings[j] = k;
                total_firings += k;
            }
        }
        if sound {
            for j in 0..crn.reactions().len() {
                let k = self.firings[j];
                if k > 0 {
                    self.accumulate_delta(crn, j, k);
                }
            }
        }
        if !sound || self.delta_violates(state) {
            self.y = y;
            return None;
        }

        self.commit_delta(state);
        for (fi, &j) in self.fast_idx.iter().enumerate() {
            self.carry[j] = self.carry_next[fi];
        }
        let hazard_spent = y[n + m];
        self.y = y;
        self.diagnostics.ode_segments += 1;
        self.diagnostics.ode_steps += outcome.steps;
        self.diagnostics.ode_rejected += outcome.rejected;

        *time = if outcome.event {
            *time + outcome.t
        } else if capped_by_limit {
            // Landing bit-exactly on the stop time keeps terminal
            // distributions sampled at the same instant as every stepper.
            self.time_limit
        } else {
            *time + t_span
        };

        self.refresh_fired(crn, state);
        if outcome.event {
            // The budget was exhausted mid-segment: one slow channel fires
            // now, chosen from the slow propensities at the committed state.
            let a0_slow_now: f64 = self
                .fast
                .iter()
                .zip(&self.propensities)
                .filter(|(&is_fast, _)| !is_fast)
                .map(|(_, &a)| a.max(0.0))
                .sum();
            if let Some(j) = self.select_slow(a0_slow_now, rng) {
                state
                    .apply(&crn.reactions()[j])
                    .expect("selected reaction must be fireable: propensity was positive");
                total_firings += 1;
                self.diagnostics.slow_firings += 1;
                for &dep in self.deps.dependents(j) {
                    self.propensities[dep] = propensity(&crn.reactions()[dep], state);
                }
            }
            self.slow_budget = None;
        } else {
            self.slow_budget = Some((budget - hazard_spent).max(0.0));
        }
        Some(StepOutcome::Leaped {
            firings: total_firings,
        })
    }
}

impl SsaStepper for Hybrid {
    fn initialize(&mut self, crn: &Crn, state: &State, _rng: &mut StdRng) {
        self.prepare(crn, state);
    }

    fn set_time_limit(&mut self, t_stop: f64) {
        self.time_limit = t_stop;
    }

    fn step(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        // Inside a fallback burst: keep stepping exactly until it drains.
        if self.exact_steps_left > 0 {
            self.exact_steps_left -= 1;
            return self.exact_step(crn, state, time, rng);
        }

        let (a0, a0_fast, a0_slow) = self.classify(crn, state);
        if a0 <= 0.0 {
            return StepOutcome::Exhausted;
        }
        // No channel qualifies as fast: the whole state is slow and the
        // hybrid *is* the exact SSA here. (The budget is untouched — the
        // exponential's memorylessness makes it indifferent to exact
        // detours.)
        if a0_fast <= 0.0 {
            return self.exact_burst(crn, state, time, rng);
        }

        let mut tau1 = self.leap_candidate(crn, state);
        let fallback_threshold = self.ssa_factor / a0;

        // The slow partition fires by time-rescaling: draw (or resume) the
        // Exp(1) hazard budget and convert it to a waiting time at the
        // current slow mass.
        let budget = if a0_slow > 0.0 {
            let r = *self.slow_budget.get_or_insert_with(|| {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln()
            });
            Some(r)
        } else {
            None
        };
        let slow_wait = budget.map_or(f64::INFINITY, |r| r / a0_slow);
        let remaining = self.time_limit - *time;

        // ODE escalation: when reaching the next slow event would take an
        // unreasonable number of leaps, the fast partition is advanced as a
        // deterministic mean field instead. Checked *before* the exact
        // fallback: a stiff fast cycle (near-cancelling flows strangling
        // the Cao bound below the SSA threshold) is precisely the regime
        // the ODE mode exists for.
        if let Some(r) = budget {
            let horizon = if remaining.is_finite() && remaining > 0.0 {
                slow_wait.min(remaining)
            } else {
                slow_wait
            };
            if tau1 > 0.0 && horizon / tau1 >= self.ode_min_leaps {
                if let Some(out) = self.ode_segment(crn, state, time, rng, r, slow_wait, remaining)
                {
                    return out;
                }
                return self.exact_burst(crn, state, time, rng);
            }
        }

        if tau1 <= fallback_threshold {
            return self.exact_burst(crn, state, time, rng);
        }

        // Stochastic tau-leap segment over the fast partition.
        for _ in 0..MAX_LEAP_REJECTS {
            let mut fire_slow = slow_wait <= tau1;
            let mut tau = tau1.min(slow_wait);
            let mut clamped = false;
            if remaining > 0.0 && remaining.is_finite() && tau > remaining {
                // Land exactly on the driver's time stop; a slow event
                // beyond it no longer happens within this trajectory.
                tau = remaining;
                fire_slow = false;
                clamped = true;
            }
            if !tau.is_finite() {
                // Degenerate network (no net state change anywhere).
                return self.exact_step(crn, state, time, rng);
            }

            self.delta.fill(0);
            self.firings.fill(0);
            let mut total_firings = 0u64;
            for j in 0..crn.reactions().len() {
                if !self.fast[j] {
                    continue;
                }
                let a = self.propensities[j];
                let k = Poisson::new(a * tau).sample(rng);
                if k > 0 {
                    self.firings[j] = k;
                    total_firings += k;
                    self.accumulate_delta(crn, j, k);
                }
            }
            if fire_slow {
                if let Some(j) = self.select_slow(a0_slow, rng) {
                    self.firings[j] += 1;
                    total_firings += 1;
                    self.accumulate_delta(crn, j, 1);
                }
            }

            if self.delta_violates(state) {
                // Reject the whole leap and retry with half the step;
                // nothing was committed, so the budget is untouched.
                tau1 = tau * 0.5;
                if tau1 <= fallback_threshold {
                    return self.exact_burst(crn, state, time, rng);
                }
                continue;
            }

            self.commit_delta(state);
            *time = if clamped {
                self.time_limit
            } else {
                *time + tau
            };
            if let Some(r) = budget {
                if fire_slow {
                    self.slow_budget = None;
                    self.diagnostics.slow_firings += 1;
                } else {
                    self.slow_budget = Some((r - a0_slow * tau).max(0.0));
                }
            }
            if total_firings > 0 {
                self.refresh_fired(crn, state);
            }
            self.diagnostics.tau_segments += 1;
            return StepOutcome::Leaped {
                firings: total_firings,
            };
        }

        // Persistent rejection: resolve the boundary region exactly.
        self.exact_burst(crn, state, time, rng)
    }

    fn profile(&self) -> crate::SimProfile {
        // Mapping: fast-partition tau segments are committed leaps, and the
        // RK45 mean-field counters translate directly. The hybrid guard
        // rejects whole segments rather than individual leaps, so
        // `leaps_rejected` stays zero here.
        crate::SimProfile {
            leaps_accepted: self.diagnostics.tau_segments,
            rk45_accepted: self.diagnostics.ode_steps,
            rk45_rejected: self.diagnostics.ode_rejected,
            ..crate::SimProfile::default()
        }
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectMethod;
    use crate::simulator::{Simulation, SimulationOptions};
    use crate::stop::StopCondition;
    use rand::SeedableRng as _;

    #[test]
    fn low_copy_networks_run_bit_identical_to_direct() {
        // Every propensity sits far below the fast threshold, so the hybrid
        // is a chain of exact bursts consuming the RNG stream exactly like
        // the direct method.
        let crn: Crn = "a + b -> c @ 0.05\nc -> a + b @ 1\nb -> d @ 0.1\nd -> b @ 0.2"
            .parse()
            .unwrap();
        let initial = crn.state_from_counts([("a", 30), ("b", 25)]).unwrap();
        for seed in [1u64, 7, 42] {
            let opts = SimulationOptions::new()
                .seed(seed)
                .stop(StopCondition::events(500));
            let exact = Simulation::new(&crn, DirectMethod::new())
                .options(opts.clone())
                .run(&initial)
                .unwrap();
            let hybrid = Simulation::new(&crn, Hybrid::new())
                .options(opts)
                .run(&initial)
                .unwrap();
            assert_eq!(exact.final_state, hybrid.final_state, "seed {seed}");
            assert_eq!(exact.final_time, hybrid.final_time, "seed {seed}");
            assert_eq!(exact.events, hybrid.events);
        }
    }

    #[test]
    fn conserves_mass_on_a_closed_network() {
        let crn: Crn = "a -> b @ 2\nb -> a @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 50_000)]).unwrap();
        let result = Simulation::new(&crn, Hybrid::new())
            .options(
                SimulationOptions::new()
                    .seed(1)
                    .stop(StopCondition::time(3.0)),
            )
            .run(&initial)
            .unwrap();
        assert_eq!(result.final_state.total(), 50_000);
        assert_eq!(result.final_time, 3.0, "segments must land on the stop");
        assert!(result.events > 100_000, "high-population run must leap");
    }

    #[test]
    fn fast_pool_with_slow_drain_partitions_and_leaps() {
        // Birth at 2000/s is fast; death at 0.2·x stays below the fast
        // threshold for x < 1250, so it fires through the slow budget.
        let crn: Crn = "0 -> x @ 2000\nx -> 0 @ 0.2".parse().unwrap();
        let x = crn.species_id("x").unwrap();
        let mut stepper = Hybrid::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut state = crn.zero_state();
        let mut time = 0.0;
        stepper.initialize(&crn, &state, &mut rng);
        stepper.set_time_limit(0.5);
        while time < 0.5 {
            if stepper.step(&crn, &mut state, &mut time, &mut rng) == StepOutcome::Exhausted {
                break;
            }
        }
        let d = stepper.diagnostics();
        assert!(d.tau_segments > 10, "expected leaping: {d:?}");
        assert!(d.slow_firings > 10, "expected slow deaths: {d:?}");
        // Mean at t=0.5 is 10000·(1 − e^{−0.1}) ≈ 952.
        let count = state.count(x) as f64;
        assert!(
            (800.0..1120.0).contains(&count),
            "final count {count} far from transient mean ≈ 952"
        );
    }

    #[test]
    fn partition_respects_both_thresholds() {
        let crn: Crn = "0 -> x @ 2000\nx -> 0 @ 0.2\na -> b @ 100".parse().unwrap();
        let state = crn.state_from_counts([("x", 100), ("a", 50)]).unwrap();
        let partition = Hybrid::new().partition(&crn, &state);
        // Birth: a = 2000 ≥ 250, no reactants → fast.
        assert!(partition[0]);
        // Death: a = 20 < 250 → slow.
        assert!(!partition[1]);
        // a → b: a = 5000 ≥ 250 and headroom 50 ≥ 10 → fast.
        let crn2: Crn = "a -> b @ 100".parse().unwrap();
        let s2 = crn2.state_from_counts([("a", 50)]).unwrap();
        assert!(Hybrid::new().partition(&crn2, &s2)[0]);
        // …but with only 5 molecules the headroom rule keeps it slow.
        let s3 = crn2.state_from_counts([("a", 5)]).unwrap();
        assert!(!Hybrid::new().partition(&crn2, &s3)[0]);
    }

    #[test]
    fn ode_mode_engages_on_stiff_fast_cycles_and_conserves() {
        // A stiff enzyme cycle (propensities ~10⁴–10⁵) under a slow
        // promoter switch: the Cao bound collapses to ~10⁻⁴ of the slow
        // waiting time, which escalates segments to the RK45 mean field.
        let system = crn::generators::multiscale_switch(4, 0.5, 20_000.0, 2_000, 60);
        let mut stepper = Hybrid::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut state = system.initial.clone();
        let mut time = 0.0;
        stepper.initialize(&system.crn, &state, &mut rng);
        stepper.set_time_limit(0.05);
        let mut steps = 0u64;
        while time < 0.05 && steps < 200_000 {
            match stepper.step(&system.crn, &mut state, &mut time, &mut rng) {
                StepOutcome::Exhausted => break,
                _ => steps += 1,
            }
        }
        let d = stepper.diagnostics();
        assert!(d.ode_segments > 0, "expected ODE segments: {d:?}");
        // Conservation laws hold exactly in every mode: per module the
        // promoter copies sum to 1 and the enzyme copies to 60.
        for module in 0..4 {
            let sp = |name: String| state.count(system.crn.species_id(&name).unwrap());
            assert_eq!(
                sp(format!("gOff_{module}")) + sp(format!("gOn_{module}")),
                1,
                "promoter conservation in module {module}"
            );
            assert_eq!(
                sp(format!("e_{module}")) + sp(format!("es_{module}")),
                60,
                "enzyme conservation in module {module}"
            );
        }
    }

    #[test]
    fn populations_never_go_negative_near_extinction() {
        let crn: Crn = "a -> 0 @ 10".parse().unwrap();
        let initial = crn.state_from_counts([("a", 5_000)]).unwrap();
        for seed in 0..20 {
            let result = Simulation::new(&crn, Hybrid::new())
                .options(SimulationOptions::new().seed(seed))
                .run(&initial)
                .unwrap();
            assert_eq!(result.events, 5_000, "every molecule dies exactly once");
            assert_eq!(result.final_state.total(), 0);
        }
    }

    #[test]
    fn continuous_propensity_matches_discrete_on_integers() {
        let crn: Crn = "2 a -> b @ 3\na + b -> c @ 0.5".parse().unwrap();
        let state = crn.state_from_counts([("a", 7), ("b", 4)]).unwrap();
        let y: Vec<f64> = (0..crn.species_len())
            .map(|i| state.count(SpeciesId::from_index(i)) as f64)
            .collect();
        for reaction in crn.reactions() {
            assert_eq!(
                continuous_propensity(reaction, &y),
                propensity(reaction, &state),
                "continuous extension must agree on lattice points"
            );
        }
        // And clamp below zero rather than going negative.
        let tiny = vec![0.5, 1.0, 0.0];
        assert!(continuous_propensity(&crn.reactions()[0], &tiny) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in (0, 1)")]
    fn rejects_invalid_epsilon() {
        let _ = Hybrid::new().with_epsilon(1.0);
    }

    #[test]
    #[should_panic(expected = "fast propensity threshold")]
    fn rejects_invalid_fast_threshold() {
        let _ = Hybrid::new().with_fast_propensity_min(f64::NAN);
    }
}
