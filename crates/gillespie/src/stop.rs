//! Stop conditions for simulations.

use crn::{Crn, SpeciesId, State};
use serde::{Deserialize, Serialize};

/// When to terminate a stochastic trajectory.
///
/// Stop conditions are checked after every reaction event (and before the
/// first). Independently of any condition, a trajectory always stops when no
/// reaction can fire (the total propensity is zero); [`StopCondition::exhaustion`]
/// requests *only* that behaviour.
///
/// Conditions compose with [`StopCondition::any_of`] and
/// [`StopCondition::all_of`].
///
/// # Example
///
/// ```
/// use gillespie::StopCondition;
/// use crn::SpeciesId;
///
/// // Stop when either output crosses its threshold, or at t = 1000.
/// let stop = StopCondition::any_of(vec![
///     StopCondition::species_at_least(SpeciesId::from_index(3), 55),
///     StopCondition::species_at_least(SpeciesId::from_index(4), 145),
///     StopCondition::time(1000.0),
/// ]);
/// assert!(format!("{stop:?}").contains("AnyOf"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum StopCondition {
    /// Stop only when no reaction can fire any more.
    #[default]
    Exhaustion,
    /// Stop once simulated time reaches the given value.
    Time(f64),
    /// Stop once the given number of reaction events has fired.
    Events(u64),
    /// Stop once the count of a species reaches at least the given value.
    SpeciesAtLeast {
        /// The species to watch.
        species: SpeciesId,
        /// The threshold count (inclusive).
        count: u64,
    },
    /// Stop once the count of a species drops to at most the given value.
    SpeciesAtMost {
        /// The species to watch.
        species: SpeciesId,
        /// The threshold count (inclusive).
        count: u64,
    },
    /// Stop when any of the nested conditions holds.
    AnyOf(Vec<StopCondition>),
    /// Stop when all of the nested conditions hold.
    AllOf(Vec<StopCondition>),
}

impl StopCondition {
    /// Runs until no reaction can fire.
    pub fn exhaustion() -> Self {
        StopCondition::Exhaustion
    }

    /// Stops at the given simulated time.
    pub fn time(t: f64) -> Self {
        StopCondition::Time(t)
    }

    /// Stops after the given number of reaction events.
    pub fn events(n: u64) -> Self {
        StopCondition::Events(n)
    }

    /// Stops once `species` reaches at least `count` molecules.
    pub fn species_at_least(species: SpeciesId, count: u64) -> Self {
        StopCondition::SpeciesAtLeast { species, count }
    }

    /// Stops once `species` drops to at most `count` molecules.
    pub fn species_at_most(species: SpeciesId, count: u64) -> Self {
        StopCondition::SpeciesAtMost { species, count }
    }

    /// Stops when any of `conditions` holds.
    pub fn any_of(conditions: Vec<StopCondition>) -> Self {
        StopCondition::AnyOf(conditions)
    }

    /// Stops when all of `conditions` hold.
    pub fn all_of(conditions: Vec<StopCondition>) -> Self {
        StopCondition::AllOf(conditions)
    }

    /// Convenience constructor looking a species up by name.
    ///
    /// # Errors
    ///
    /// Returns [`crn::CrnError::UnknownSpecies`] if the name is not present.
    pub fn named_species_at_least(
        crn: &Crn,
        name: &str,
        count: u64,
    ) -> Result<Self, crn::CrnError> {
        Ok(StopCondition::SpeciesAtLeast {
            species: crn.require_species(name)?,
            count,
        })
    }

    /// Returns a simulated time by which the condition is *guaranteed* to be
    /// met, if one can be derived from its structure: `Time(t)` gives `t`,
    /// `AnyOf` the smallest bound of any member, `AllOf` the largest bound
    /// provided *every* member has one. Event- and species-based conditions
    /// yield `None`.
    ///
    /// Leaping steppers use this to clamp their step size so trajectories
    /// land exactly on a time stop instead of overshooting it; the bound is
    /// a hint, never a substitute for [`StopCondition::is_met`].
    pub fn time_bound(&self) -> Option<f64> {
        match self {
            StopCondition::Time(t) => Some(*t),
            StopCondition::AnyOf(conditions) => conditions
                .iter()
                .filter_map(StopCondition::time_bound)
                .min_by(f64::total_cmp),
            StopCondition::AllOf(conditions) => {
                let bounds: Vec<f64> = conditions
                    .iter()
                    .map(StopCondition::time_bound)
                    .collect::<Option<_>>()?;
                bounds.into_iter().max_by(f64::total_cmp)
            }
            _ => None,
        }
    }

    /// Evaluates the condition.
    pub fn is_met(&self, time: f64, events: u64, state: &State) -> bool {
        match self {
            StopCondition::Exhaustion => false,
            StopCondition::Time(t) => time >= *t,
            StopCondition::Events(n) => events >= *n,
            StopCondition::SpeciesAtLeast { species, count } => {
                state.try_count(*species).is_some_and(|c| c >= *count)
            }
            StopCondition::SpeciesAtMost { species, count } => {
                state.try_count(*species).is_some_and(|c| c <= *count)
            }
            StopCondition::AnyOf(conditions) => {
                conditions.iter().any(|c| c.is_met(time, events, state))
            }
            StopCondition::AllOf(conditions) => {
                !conditions.is_empty() && conditions.iter().all(|c| c.is_met(time, events, state))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> SpeciesId {
        SpeciesId::from_index(i)
    }

    #[test]
    fn exhaustion_never_triggers_explicitly() {
        let state = State::zero(1);
        assert!(!StopCondition::exhaustion().is_met(1e9, u64::MAX, &state));
    }

    #[test]
    fn time_and_event_conditions() {
        let state = State::zero(1);
        assert!(StopCondition::time(10.0).is_met(10.0, 0, &state));
        assert!(!StopCondition::time(10.0).is_met(9.99, 0, &state));
        assert!(StopCondition::events(5).is_met(0.0, 5, &state));
        assert!(!StopCondition::events(5).is_met(0.0, 4, &state));
    }

    #[test]
    fn species_thresholds() {
        let state = State::from_counts(vec![3, 7]);
        assert!(StopCondition::species_at_least(s(1), 7).is_met(0.0, 0, &state));
        assert!(!StopCondition::species_at_least(s(1), 8).is_met(0.0, 0, &state));
        assert!(StopCondition::species_at_most(s(0), 3).is_met(0.0, 0, &state));
        assert!(!StopCondition::species_at_most(s(0), 2).is_met(0.0, 0, &state));
        // Out-of-range species is simply "not met" rather than a panic.
        assert!(!StopCondition::species_at_least(s(9), 1).is_met(0.0, 0, &state));
    }

    #[test]
    fn any_and_all_compose() {
        let state = State::from_counts(vec![10]);
        let a = StopCondition::species_at_least(s(0), 5);
        let b = StopCondition::time(100.0);
        assert!(StopCondition::any_of(vec![a.clone(), b.clone()]).is_met(0.0, 0, &state));
        assert!(!StopCondition::all_of(vec![a.clone(), b.clone()]).is_met(0.0, 0, &state));
        assert!(StopCondition::all_of(vec![a, b]).is_met(100.0, 0, &state));
        // Empty AllOf never triggers (avoids accidental immediate stop).
        assert!(!StopCondition::all_of(vec![]).is_met(100.0, 100, &state));
    }

    #[test]
    fn time_bounds_are_derived_structurally() {
        assert_eq!(StopCondition::time(5.0).time_bound(), Some(5.0));
        assert_eq!(StopCondition::events(10).time_bound(), None);
        assert_eq!(StopCondition::exhaustion().time_bound(), None);
        // AnyOf: met as soon as the earliest time member triggers.
        let any = StopCondition::any_of(vec![
            StopCondition::events(10),
            StopCondition::time(7.0),
            StopCondition::time(3.0),
        ]);
        assert_eq!(any.time_bound(), Some(3.0));
        // AllOf: guaranteed only when every member is time-bounded.
        let all = StopCondition::all_of(vec![StopCondition::time(7.0), StopCondition::time(3.0)]);
        assert_eq!(all.time_bound(), Some(7.0));
        let mixed = StopCondition::all_of(vec![StopCondition::time(7.0), StopCondition::events(1)]);
        assert_eq!(mixed.time_bound(), None);
        assert_eq!(StopCondition::all_of(vec![]).time_bound(), None);
    }

    #[test]
    fn named_species_lookup() {
        let crn: Crn = "cro2 -> 0 @ 1".parse().unwrap();
        let cond = StopCondition::named_species_at_least(&crn, "cro2", 55).unwrap();
        let state = crn.state_from_counts([("cro2", 60)]).unwrap();
        assert!(cond.is_met(0.0, 0, &state));
        assert!(StopCondition::named_species_at_least(&crn, "nope", 1).is_err());
    }
}
