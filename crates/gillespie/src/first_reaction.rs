//! Gillespie's first-reaction method.

use crn::{Crn, State};
use rand::rngs::StdRng;
use rand::Rng;

use crate::propensity::propensities;
use crate::simulator::{SsaStepper, StepOutcome};

/// Gillespie's first-reaction method.
///
/// At each step the method draws an independent putative firing time for
/// *every* reaction (exponential with that reaction's propensity) and fires
/// the earliest one. It is statistically identical to the
/// [`DirectMethod`](crate::DirectMethod) but draws `R` random numbers per
/// step instead of two, so it is mainly of historical and testing interest —
/// it provides an independent implementation against which the other methods
/// are cross-validated.
#[derive(Debug, Default, Clone)]
pub struct FirstReactionMethod {
    propensities: Vec<f64>,
    evals: u64,
}

impl FirstReactionMethod {
    /// Creates a new first-reaction stepper.
    pub fn new() -> Self {
        FirstReactionMethod::default()
    }
}

impl SsaStepper for FirstReactionMethod {
    fn initialize(&mut self, crn: &Crn, _state: &State, _rng: &mut StdRng) {
        self.propensities.clear();
        self.propensities.reserve(crn.reactions().len());
        self.evals = 0;
    }

    fn step(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        let total = propensities(crn, state, &mut self.propensities);
        self.evals += self.propensities.len() as u64;
        if total <= 0.0 {
            return StepOutcome::Exhausted;
        }
        let mut best: Option<(usize, f64)> = None;
        for (idx, &a) in self.propensities.iter().enumerate() {
            if a <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let tau = -u.ln() / a;
            if best.is_none_or(|(_, t)| tau < t) {
                best = Some((idx, tau));
            }
        }
        let (chosen, tau) = best.expect("total propensity positive implies a candidate exists");
        *time += tau;
        state
            .apply(&crn.reactions()[chosen])
            .expect("selected reaction must be fireable: propensity was positive");
        StepOutcome::Fired { reaction: chosen }
    }

    fn profile(&self) -> crate::SimProfile {
        crate::SimProfile {
            propensity_evals: self.evals,
            ..crate::SimProfile::default()
        }
    }

    fn name(&self) -> &'static str {
        "first-reaction"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{Simulation, SimulationOptions};

    #[test]
    fn agrees_with_direct_method_on_branching_probabilities() {
        let crn: Crn = "x -> y @ 2\nx -> z @ 8".parse().unwrap();
        let initial = crn.state_from_counts([("x", 20_000)]).unwrap();
        let result = Simulation::new(&crn, FirstReactionMethod::new())
            .options(SimulationOptions::new().seed(123))
            .run(&initial)
            .unwrap();
        let z = result.final_state.count(crn.species_id("z").unwrap()) as f64;
        let frac = z / 20_000.0;
        assert!(
            (frac - 0.8).abs() < 0.02,
            "expected ~80% routed to z, got {frac}"
        );
    }

    #[test]
    fn waiting_time_matches_total_propensity() {
        // Two unit-rate decay channels on a single molecule behave like one
        // channel at rate 2: the mean completion time of the single firing
        // is 1/2.
        let crn: Crn = "a -> b @ 1\na -> c @ 1".parse().unwrap();
        let initial = crn.state_from_counts([("a", 1)]).unwrap();
        let trials = 4000;
        let mut total = 0.0;
        for seed in 0..trials {
            let r = Simulation::new(&crn, FirstReactionMethod::new())
                .options(SimulationOptions::new().seed(seed))
                .run(&initial)
                .unwrap();
            total += r.final_time;
        }
        let mean = total / trials as f64;
        assert!(
            (mean - 0.5).abs() < 0.03,
            "mean completion {mean}, expected 0.5"
        );
    }

    #[test]
    fn exhausts_cleanly() {
        let crn: Crn = "a -> b @ 1".parse().unwrap();
        let initial = crn.zero_state();
        let r = Simulation::new(&crn, FirstReactionMethod::new())
            .options(SimulationOptions::new().seed(1))
            .run(&initial)
            .unwrap();
        assert_eq!(r.events, 0);
    }
}
