//! Statistical validation of the exact simulators against closed-form
//! results from stochastic chemical kinetics. These tests are the ground
//! truth behind every Monte-Carlo figure in the reproduction: if the SSA
//! kernels are biased, every downstream probability estimate is wrong.

use crn::Crn;
use gillespie::{
    DirectMethod, Ensemble, EnsembleOptions, FirstReactionMethod, NextReactionMethod, Simulation,
    SimulationOptions, SpeciesThresholdClassifier, SsaMethod, StopCondition, TrajectorySummary,
};

/// Immigration–death process `∅ -> a` (rate λ), `a -> ∅` (rate μ per
/// molecule): the stationary distribution is Poisson(λ/μ), so the long-run
/// mean count is λ/μ.
#[test]
fn immigration_death_process_reaches_poisson_mean() {
    let lambda = 20.0;
    let mu = 2.0;
    let crn: Crn = format!("0 -> a @ {lambda}\na -> 0 @ {mu}")
        .parse()
        .expect("network");
    let a = crn.species_id("a").expect("species");

    let mut summary = TrajectorySummary::for_crn(&crn);
    let trajectories = 300;
    for seed in 0..trajectories {
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(
                SimulationOptions::new()
                    .seed(seed)
                    .stop(StopCondition::time(20.0))
                    .max_events(1_000_000),
            )
            .run(&crn.zero_state())
            .expect("trajectory");
        summary.push(&result);
    }
    let mean = summary.species(a).mean();
    let expected = lambda / mu;
    assert!(
        (mean - expected).abs() < 0.6,
        "stationary mean {mean} should be close to {expected}"
    );
    // Poisson: variance equals the mean.
    let variance = summary.species(a).variance();
    assert!(
        (variance - expected).abs() < 3.0,
        "stationary variance {variance} should be close to {expected}"
    );
}

/// Reversible isomerisation `a <-> b` with rates k₁, k₂ starting from N
/// molecules of `a`: at equilibrium each molecule is independently in state
/// `b` with probability k₁/(k₁+k₂).
#[test]
fn reversible_isomerisation_reaches_binomial_equilibrium() {
    let k1 = 3.0;
    let k2 = 1.0;
    let n = 600u64;
    let crn: Crn = format!("a -> b @ {k1}\nb -> a @ {k2}")
        .parse()
        .expect("network");
    let b = crn.species_id("b").expect("species");
    let initial = crn.state_from_counts([("a", n)]).expect("state");

    for method in SsaMethod::ALL {
        let mut summary = TrajectorySummary::for_crn(&crn);
        for seed in 0..60u64 {
            // Drive the chain long enough to forget the initial condition.
            let result = match method {
                SsaMethod::Direct => Simulation::new(&crn, DirectMethod::new())
                    .options(equilibration_options(seed))
                    .run(&initial),
                SsaMethod::FirstReaction => Simulation::new(&crn, FirstReactionMethod::new())
                    .options(equilibration_options(seed))
                    .run(&initial),
                SsaMethod::NextReaction => Simulation::new(&crn, NextReactionMethod::new())
                    .options(equilibration_options(seed))
                    .run(&initial),
            }
            .expect("trajectory");
            summary.push(&result);
        }
        let mean = summary.species(b).mean();
        let expected = n as f64 * k1 / (k1 + k2);
        assert!(
            (mean - expected).abs() < 12.0,
            "{method:?}: equilibrium mean {mean} should be close to {expected}"
        );
    }
}

fn equilibration_options(seed: u64) -> SimulationOptions {
    SimulationOptions::new()
        .seed(seed)
        .stop(StopCondition::time(5.0))
        .max_events(1_000_000)
}

/// A pure death process starting from N molecules: the completion time has
/// mean `Σ_{i=1..N} 1/(i·k)` (a coupon-collector-like sum).
#[test]
fn pure_death_completion_time_matches_theory() {
    let k = 0.5;
    let n = 40u64;
    let crn: Crn = format!("a -> 0 @ {k}").parse().expect("network");
    let initial = crn.state_from_counts([("a", n)]).expect("state");

    let trials = 800u64;
    let mut total_time = 0.0;
    for seed in 0..trials {
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(SimulationOptions::new().seed(seed))
            .run(&initial)
            .expect("trajectory");
        assert_eq!(result.events, n);
        total_time += result.final_time;
    }
    let measured = total_time / trials as f64;
    let expected: f64 = (1..=n).map(|i| 1.0 / (i as f64 * k)).sum();
    assert!(
        (measured - expected).abs() / expected < 0.05,
        "mean extinction time {measured} should be within 5% of {expected}"
    );
}

/// Competing exponential clocks: with propensities a and b for two
/// irreversible channels from a shared single molecule, the first channel
/// wins with probability a/(a+b). Checked through the full ensemble +
/// classifier stack at several rate ratios.
#[test]
fn competing_channels_split_by_propensity_ratio() {
    for &(ka, kb) in &[(1.0f64, 1.0f64), (2.0, 6.0), (9.0, 1.0)] {
        let crn: Crn = format!("x -> a @ {ka}\nx -> b @ {kb}")
            .parse()
            .expect("network");
        let classifier = SpeciesThresholdClassifier::new()
            .rule_named(&crn, "a", 1, "first")
            .expect("rule")
            .rule_named(&crn, "b", 1, "second")
            .expect("rule");
        let initial = crn.state_from_counts([("x", 1)]).expect("state");
        let report = Ensemble::new(&crn, initial, classifier)
            .options(EnsembleOptions::new().trials(3_000).master_seed(7))
            .run()
            .expect("ensemble");
        let expected = ka / (ka + kb);
        let measured = report.probability("first");
        assert!(
            (measured - expected).abs() < 0.03,
            "ka={ka}, kb={kb}: measured {measured}, expected {expected}"
        );
    }
}
