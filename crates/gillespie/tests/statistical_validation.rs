//! Statistical validation of the simulators against **exact CME ground
//! truth**. These tests are the oracle behind every Monte-Carlo figure in
//! the reproduction: if the SSA kernels are biased, every downstream
//! probability estimate is wrong.
//!
//! The expected distribution of every goodness-of-fit assertion is computed
//! by the `cme` crate — uniformization of the chemical master equation at
//! the exact simulated horizon — so the oracle captures the *transient*
//! law, not just a stationary approximation. The closed-form laws the
//! earlier test generations trusted (Poisson stationary distribution,
//! detailed balance) are kept as cross-checks **of the CME itself**: the
//! CME transient must agree with the analytic law to within the known
//! relaxation residual, and the simulators must conform to the CME.
//!
//! The distribution-level assertions run through the `numerics` conformance
//! harness (chi-square goodness-of-fit, two-sample chi-square/KS between
//! methods) with *seeded tolerance bands*: fixed seeds make each test
//! deterministic, and the significance level `ALPHA` is small enough that
//! only a systematic distributional error — not Monte-Carlo noise — can
//! fail it. Tau-leaping, the one approximate stepper, must pass the same
//! bands as the exact methods.

use cme::{PopulationBounds, StateSpace};
use crn::Crn;
use gillespie::{
    DirectMethod, Simulation, SimulationOptions, StepperKind, StopCondition, TrajectorySummary,
};
use numerics::{
    chi_square_goodness_of_fit, histogram_chi_square, histogram_ks, poisson_pmf, Histogram,
};

mod common;
use common::{final_count_histogram, total_variation, windowed};

/// Significance level of the seeded tolerance bands. Under the null (solver
/// is faithful) a fixed-seed run sits comfortably above this; a systematic
/// bias pushes the p-value to ~0 and fails loudly.
const ALPHA: f64 = 1e-3;

/// Immigration–death process `∅ -> a` (rate λ), `a -> ∅` (rate μ per
/// molecule): the expected distribution at the simulated horizon is the
/// exact CME transient (the stationary Poisson law plus the residual of the
/// deterministic initial condition). Every stepper — the four exact ones
/// *and* tau-leaping — must reproduce it bin for bin, and the approximate
/// stepper must be two-sample indistinguishable from the exact reference.
#[test]
fn birth_death_distribution_conforms_to_cme_for_every_method() {
    let lambda = 400.0;
    let mu = 2.0;
    let mean = lambda / mu; // 200
    let t_end = 3.0;
    let crn: Crn = format!("0 -> a @ {lambda}\na -> 0 @ {mu}")
        .parse()
        .expect("network");
    let a = crn.species_id("a").expect("species");
    // Start at the stationary mean so t_end only needs to erase the
    // (deterministic) initial condition, not build the population.
    let initial = crn.state_from_counts([("a", mean as u64)]).expect("state");
    let (lo, hi) = (140u64, 260u64); // ±4.3 standard deviations around 200

    // Exact CME transient at the simulated horizon. The birth process is
    // unbounded, so the space is truncated at ±little beyond the window;
    // the leak bound certifies the truncation is irrelevant.
    let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::truncating(420))
        .expect("state space");
    let solution = space.transient(t_end, 1e-10).expect("transient");
    assert!(
        solution.leaked + solution.truncation_error < 1e-8,
        "truncation must be negligible: leak {:.3e}, tail {:.3e}",
        solution.leaked,
        solution.truncation_error
    );
    let expected = windowed(&space.marginal(&solution.probabilities, a), (lo, hi));

    // Cross-check the oracle itself against the analytic stationary law:
    // at t = 3 the initial condition has relaxed to within e^{-μt} ≈ 0.25%.
    let stationary = windowed(
        &(0..=420).map(|k| poisson_pmf(mean, k)).collect::<Vec<_>>(),
        (lo, hi),
    );
    let tv = total_variation(&expected, &stationary);
    assert!(
        tv < 0.02,
        "CME transient vs stationary Poisson: total variation {tv:.4}"
    );

    let trials = 1_500u64;
    let mut reference: Option<Histogram> = None;
    for method in StepperKind::ALL {
        let hist = final_count_histogram(
            &crn,
            &initial,
            method,
            a,
            9_000..9_000 + trials,
            t_end,
            (lo, hi),
        );
        let gof = chi_square_goodness_of_fit(hist.counts(), &expected).expect("test");
        assert!(
            gof.passes(ALPHA),
            "{}: CME-transient goodness-of-fit failed: chi2 = {:.1}, dof = {}, p = {:.2e}",
            method.name(),
            gof.statistic,
            gof.dof,
            gof.p_value
        );
        match &reference {
            None => reference = Some(hist),
            Some(exact) => {
                let chi = histogram_chi_square(exact, &hist).expect("test");
                let ks = histogram_ks(exact, &hist).expect("test");
                assert!(
                    chi.passes(ALPHA) && ks.passes(ALPHA),
                    "{} vs direct: chi2 p = {:.2e}, KS p = {:.2e}",
                    method.name(),
                    chi.p_value,
                    ks.p_value
                );
            }
        }
    }
}

/// Reversible dimerisation `2a <-> b` is a one-dimensional birth–death
/// chain in the dimer count. The oracle is the exact CME transient at the
/// simulated horizon (a *closed* system — strict bounds, zero truncation);
/// the detailed-balance product form of the stationary law cross-checks the
/// CME. All five steppers must conform — this exercises second-order
/// propensities and the `g_i = 2 + 1/(x−1)` branch of tau-leaping's step
/// selection.
#[test]
fn dimerisation_distribution_conforms_to_cme_for_every_method() {
    let k1 = 2e-4; // 2a -> b ; propensity k1·a(a−1)/2
    let k2 = 1.0; // b -> 2a ; propensity k2·b
    let n = 2_000u64; // conserved monomer total a + 2b
    let t_end = 4.0;
    let crn: Crn = format!("2 a -> b @ {k1}\nb -> 2 a @ {k2}")
        .parse()
        .expect("network");
    let b = crn.species_id("b").expect("species");
    let initial = crn.state_from_counts([("a", n)]).expect("state");

    // Exact CME transient over the full (finite) chain b = 0..=n/2.
    let space =
        StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(n)).expect("state space");
    assert_eq!(
        space.len() as u64,
        n / 2 + 1,
        "1-D chain in the dimer count"
    );
    let solution = space.transient(t_end, 1e-10).expect("transient");
    let marginal = space.marginal(&solution.probabilities, b);

    // Detailed balance on the chain in b: π(b+1)/π(b) = fwd(b)/back(b+1),
    // computed in log space and normalised — the cross-check of the CME.
    let fwd = |b_count: u64| {
        let a = (n - 2 * b_count) as f64;
        k1 * a * (a - 1.0) / 2.0
    };
    let mut log_pi = vec![0.0f64];
    for b_count in 0..n / 2 {
        let ratio = fwd(b_count) / (k2 * (b_count + 1) as f64);
        if ratio <= 0.0 {
            break;
        }
        log_pi.push(log_pi.last().unwrap() + ratio.ln());
    }
    let max = log_pi.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let pi: Vec<f64> = log_pi.iter().map(|&l| (l - max).exp()).collect();
    let total: f64 = pi.iter().sum();
    let pi: Vec<f64> = pi.iter().map(|&p| p / total).collect();
    // Restrict to the region carrying essentially all the stationary mass.
    let lo = pi.iter().position(|&p| p > 1e-9).unwrap() as u64;
    let hi = (pi.len() - 1 - pi.iter().rev().position(|&p| p > 1e-9).unwrap()) as u64;
    let expected = windowed(&marginal, (lo, hi));
    let stationary = windowed(&pi, (lo, hi));
    let tv = total_variation(&expected, &stationary);
    assert!(
        tv < 0.02,
        "CME transient vs detailed-balance stationary law: total variation {tv:.4}"
    );

    let trials = 1_200u64;
    let mut reference: Option<Histogram> = None;
    for method in StepperKind::ALL {
        let hist = final_count_histogram(
            &crn,
            &initial,
            method,
            b,
            70_000..70_000 + trials,
            t_end,
            (lo, hi),
        );
        let gof = chi_square_goodness_of_fit(hist.counts(), &expected).expect("test");
        assert!(
            gof.passes(ALPHA),
            "{}: CME-transient goodness-of-fit failed: chi2 = {:.1}, dof = {}, p = {:.2e}",
            method.name(),
            gof.statistic,
            gof.dof,
            gof.p_value
        );
        match &reference {
            None => reference = Some(hist),
            Some(exact) => {
                let chi = histogram_chi_square(exact, &hist).expect("test");
                let ks = histogram_ks(exact, &hist).expect("test");
                assert!(
                    chi.passes(ALPHA) && ks.passes(ALPHA),
                    "{} vs direct: chi2 p = {:.2e}, KS p = {:.2e}",
                    method.name(),
                    chi.p_value,
                    ks.p_value
                );
            }
        }
    }
}

/// Reversible isomerisation `a <-> b` with rates k₁, k₂ starting from N
/// molecules of `a`: at equilibrium each molecule is independently in state
/// `b` with probability k₁/(k₁+k₂). Mean-level sanity check for every
/// stepper, including the approximate one.
#[test]
fn reversible_isomerisation_reaches_binomial_equilibrium() {
    let k1 = 3.0;
    let k2 = 1.0;
    let n = 600u64;
    let crn: Crn = format!("a -> b @ {k1}\nb -> a @ {k2}")
        .parse()
        .expect("network");
    let b = crn.species_id("b").expect("species");
    let initial = crn.state_from_counts([("a", n)]).expect("state");

    for method in StepperKind::ALL {
        let mut summary = TrajectorySummary::for_crn(&crn);
        for seed in 0..60u64 {
            // Drive the chain long enough to forget the initial condition.
            let result = Simulation::new(&crn, method.stepper())
                .options(
                    SimulationOptions::new()
                        .seed(seed)
                        .stop(StopCondition::time(5.0))
                        .max_events(1_000_000),
                )
                .run(&initial)
                .expect("trajectory");
            summary.push(&result);
        }
        let mean = summary.species(b).mean();
        let expected = n as f64 * k1 / (k1 + k2);
        assert!(
            (mean - expected).abs() < 12.0,
            "{method:?}: equilibrium mean {mean} should be close to {expected}"
        );
    }
}

/// A pure death process starting from N molecules: the completion time has
/// mean `Σ_{i=1..N} 1/(i·k)` (a coupon-collector-like sum).
#[test]
fn pure_death_completion_time_matches_theory() {
    let k = 0.5;
    let n = 40u64;
    let crn: Crn = format!("a -> 0 @ {k}").parse().expect("network");
    let initial = crn.state_from_counts([("a", n)]).expect("state");

    let trials = 800u64;
    let mut total_time = 0.0;
    for seed in 0..trials {
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(SimulationOptions::new().seed(seed))
            .run(&initial)
            .expect("trajectory");
        assert_eq!(result.events, n);
        total_time += result.final_time;
    }
    let measured = total_time / trials as f64;
    let expected: f64 = (1..=n).map(|i| 1.0 / (i as f64 * k)).sum();
    assert!(
        (measured - expected).abs() / expected < 0.05,
        "mean extinction time {measured} should be within 5% of {expected}"
    );
}

/// Competing exponential clocks: with propensities a and b for two
/// irreversible channels from a shared single molecule, the first channel
/// wins with probability a/(a+b). Checked through the full ensemble +
/// classifier stack at several rate ratios.
#[test]
fn competing_channels_split_by_propensity_ratio() {
    use gillespie::{Ensemble, EnsembleOptions, SpeciesThresholdClassifier};
    for &(ka, kb) in &[(1.0f64, 1.0f64), (2.0, 6.0), (9.0, 1.0)] {
        let crn: Crn = format!("x -> a @ {ka}\nx -> b @ {kb}")
            .parse()
            .expect("network");
        let classifier = SpeciesThresholdClassifier::new()
            .rule_named(&crn, "a", 1, "first")
            .expect("rule")
            .rule_named(&crn, "b", 1, "second")
            .expect("rule");
        let initial = crn.state_from_counts([("x", 1)]).expect("state");
        let report = Ensemble::new(&crn, initial, classifier)
            .options(EnsembleOptions::new().trials(3_000).master_seed(7))
            .run()
            .expect("ensemble");
        let expected = ka / (ka + kb);
        let measured = report.probability("first");
        assert!(
            (measured - expected).abs() < 0.03,
            "ka={ka}, kb={kb}: measured {measured}, expected {expected}"
        );
    }
}
