//! Determinism contracts of the parallel execution engine.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Thread-count independence** — an [`Ensemble`] run with a fixed
//!    master seed produces a bit-identical [`EnsembleReport`] (outcome
//!    counts *and* floating-point means) for `threads ∈ {1, 2, 8}`.
//! 2. **Incremental ≡ full recompute** — the dependency-graph-driven
//!    [`DirectMethod`] reproduces the classic full-recompute direct method
//!    event for event: same reaction sequence, bitwise-same times and
//!    states, on the same seed.

use crn::{Crn, State};
use gillespie::{
    propensities, DirectMethod, Ensemble, EnsembleOptions, EnsembleReport, RecordingMode,
    Simulation, SimulationOptions, SpeciesThresholdClassifier, SsaMethod, SsaStepper, StepOutcome,
    StopCondition,
};
use rand::rngs::StdRng;
use rand::Rng;

/// The textbook direct method, recomputing every propensity from scratch on
/// every step. This is the seed repository's original implementation, kept
/// here as the reference the incremental `DirectMethod` must match bit for
/// bit. It must consume the RNG stream identically (two draws per event).
#[derive(Debug, Default)]
struct FullRecomputeDirect {
    propensities: Vec<f64>,
}

impl SsaStepper for FullRecomputeDirect {
    fn initialize(&mut self, crn: &Crn, _state: &State, _rng: &mut StdRng) {
        self.propensities.clear();
        self.propensities.reserve(crn.reactions().len());
    }

    fn step(
        &mut self,
        crn: &Crn,
        state: &mut State,
        time: &mut f64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        let total = propensities(crn, state, &mut self.propensities);
        if total <= 0.0 {
            return StepOutcome::Exhausted;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        *time += -u.ln() / total;
        let target: f64 = rng.gen::<f64>() * total;
        let mut acc = 0.0;
        let mut chosen = self.propensities.len() - 1;
        for (idx, &a) in self.propensities.iter().enumerate() {
            acc += a;
            if target < acc {
                chosen = idx;
                break;
            }
        }
        while self.propensities[chosen] <= 0.0 && chosen > 0 {
            chosen -= 1;
        }
        state
            .apply(&crn.reactions()[chosen])
            .expect("selected reaction must be fireable");
        StepOutcome::Fired { reaction: chosen }
    }

    fn name(&self) -> &'static str {
        "direct-full-recompute"
    }
}

/// A moderately coupled network exercising competing channels, catalysis and
/// a reversible dimerisation — enough structure for the dependency graph to
/// be non-trivial.
fn coupled_network() -> Crn {
    "a + b -> c @ 0.05\n\
     c -> a + b @ 1\n\
     b -> d @ 0.3\n\
     d -> b @ 0.7\n\
     cat + a -> cat + d @ 0.02\n\
     2 d -> e @ 0.01"
        .parse()
        .unwrap()
}

#[test]
fn incremental_direct_matches_full_recompute_event_for_event() {
    let crn = coupled_network();
    let initial = crn
        .state_from_counts([("a", 40), ("b", 35), ("cat", 3)])
        .unwrap();
    for seed in [0u64, 1, 7, 42, 1234, 99999] {
        let options = SimulationOptions::new()
            .seed(seed)
            .stop(StopCondition::events(3_000))
            .recording(RecordingMode::EveryEvent);
        let incremental = Simulation::new(&crn, DirectMethod::new())
            .options(options.clone())
            .run(&initial)
            .unwrap();
        let reference = Simulation::new(&crn, FullRecomputeDirect::default())
            .options(options)
            .run(&initial)
            .unwrap();
        assert_eq!(incremental.events, reference.events, "seed {seed}");
        assert_eq!(
            incremental.stop_reason, reference.stop_reason,
            "seed {seed}"
        );
        assert_eq!(
            incremental.final_state, reference.final_state,
            "seed {seed}"
        );
        // Bitwise: no tolerance. The incremental path must produce the very
        // same floating-point trajectory, not a statistically equivalent one.
        assert_eq!(
            incremental.final_time.to_bits(),
            reference.final_time.to_bits(),
            "seed {seed}"
        );
        let inc_points = incremental.trajectory.points();
        let ref_points = reference.trajectory.points();
        assert_eq!(inc_points.len(), ref_points.len(), "seed {seed}");
        for (event, (i, r)) in inc_points.iter().zip(ref_points).enumerate() {
            assert_eq!(
                i.time.to_bits(),
                r.time.to_bits(),
                "seed {seed}: time diverged at event {event}"
            );
            assert_eq!(
                i.state, r.state,
                "seed {seed}: state diverged at event {event}"
            );
        }
    }
}

fn run_coin_ensemble(threads: usize) -> EnsembleReport {
    let crn: Crn = "x -> h @ 3\nx -> t @ 1".parse().unwrap();
    let initial = crn.state_from_counts([("x", 1)]).unwrap();
    let classifier = SpeciesThresholdClassifier::new()
        .rule_named(&crn, "h", 1, "heads")
        .unwrap()
        .rule_named(&crn, "t", 1, "tails")
        .unwrap();
    Ensemble::new(&crn, initial, classifier)
        .options(
            EnsembleOptions::new()
                .trials(2_003) // deliberately not a multiple of any thread count
                .master_seed(20_260_728)
                .threads(threads),
        )
        .run()
        .unwrap()
}

#[test]
fn ensemble_reports_are_bit_identical_across_thread_counts() {
    let single = run_coin_ensemble(1);
    for threads in [2usize, 8] {
        let multi = run_coin_ensemble(threads);
        assert_eq!(
            single.counts, multi.counts,
            "{threads} threads: counts differ"
        );
        assert_eq!(single.undecided, multi.undecided, "{threads} threads");
        // Floating-point statistics must match to the last bit: the engine
        // reduces per-trial values in trial order regardless of chunking.
        assert_eq!(
            single.mean_events.to_bits(),
            multi.mean_events.to_bits(),
            "{threads} threads: mean_events differs"
        );
        assert_eq!(
            single.mean_final_time.to_bits(),
            multi.mean_final_time.to_bits(),
            "{threads} threads: mean_final_time differs"
        );
    }
}

#[test]
fn ensemble_determinism_holds_for_every_ssa_method() {
    let crn = coupled_network();
    let initial = crn
        .state_from_counts([("a", 20), ("b", 20), ("cat", 2)])
        .unwrap();
    for method in SsaMethod::ALL {
        let run = |threads: usize| {
            let classifier = SpeciesThresholdClassifier::new()
                .rule_named(&crn, "e", 1, "dimerised")
                .unwrap();
            Ensemble::new(&crn, initial.clone(), classifier)
                .options(
                    EnsembleOptions::new()
                        .trials(301)
                        .master_seed(9)
                        .threads(threads)
                        .method(method)
                        .simulation(SimulationOptions::new().stop(StopCondition::events(500))),
                )
                .run()
                .unwrap()
        };
        let single = run(1);
        let multi = run(8);
        assert_eq!(single, multi, "{method:?} is not thread-count independent");
    }
}

#[test]
fn master_seed_alone_reproduces_a_report() {
    let first = run_coin_ensemble(3);
    let second = run_coin_ensemble(5);
    assert_eq!(first, second);
}

/// Composition–rejection runs under the same engine contract as the other
/// steppers: trial `i` seeds its RNG with `master_seed + i` and partials
/// merge in trial order, so the full ensemble report — group walks,
/// rejection retries, floating-point means and all — is bit-identical
/// across 1/2/4/8 worker threads. The workload is a `crn::generators`
/// gene-regulatory tree (40 nodes, 158 reactions, propensities spread over
/// many binades), so the group bookkeeping genuinely churns: genes switch
/// on and off and proteins rise from zero, moving channels between bins and
/// in and out of the active set all trajectory long.
#[test]
fn composition_rejection_reports_are_bit_identical_across_thread_counts() {
    let system = crn::generators::gene_regulatory_tree(3, 3, 0.2, 0.5, 8.0, 1.0);
    let crn = &system.crn;
    let run = |threads: usize| {
        let classifier = SpeciesThresholdClassifier::new()
            .rule_named(crn, "p1", 6, "left-branch-expressed")
            .unwrap();
        Ensemble::new(crn, system.initial.clone(), classifier)
            .options(
                EnsembleOptions::new()
                    .trials(97) // deliberately not a multiple of any thread count
                    .master_seed(20_260_728)
                    .threads(threads)
                    .method(SsaMethod::CompositionRejection)
                    .simulation(SimulationOptions::new().stop(StopCondition::time(6.0))),
            )
            .run()
            .unwrap()
    };
    let single = run(1);
    assert!(
        single.mean_events > 500.0,
        "mean events {} — the tree is not being exercised",
        single.mean_events
    );
    for threads in [2usize, 4, 8] {
        let multi = run(threads);
        assert_eq!(single, multi, "{threads} threads: reports differ");
        assert_eq!(
            single.mean_events.to_bits(),
            multi.mean_events.to_bits(),
            "{threads} threads: mean_events differs in the last bit"
        );
        assert_eq!(
            single.mean_final_time.to_bits(),
            multi.mean_final_time.to_bits(),
            "{threads} threads: mean_final_time differs in the last bit"
        );
    }
}

/// Tau-leaping runs under the same engine contract as the exact methods:
/// trial `i` seeds its RNG with `master_seed + i` and partials merge in
/// trial order, so the full ensemble report — Poisson leap draws, rejection
/// retries, floating-point means and all — is bit-identical across 1/2/4/8
/// worker threads. The network is high-population so the trajectories
/// genuinely leap rather than falling back to exact stepping.
#[test]
fn tau_leaping_reports_are_bit_identical_across_thread_counts() {
    let crn: Crn = "a -> b @ 1\n\
                    b -> a @ 1\n\
                    2 b -> c @ 0.00001\n\
                    c -> 2 b @ 0.1"
        .parse()
        .unwrap();
    let initial = crn.state_from_counts([("a", 3_000), ("b", 3_000)]).unwrap();
    let run = |threads: usize| {
        let classifier = SpeciesThresholdClassifier::new()
            .rule_named(&crn, "c", 1, "dimerised")
            .unwrap();
        Ensemble::new(&crn, initial.clone(), classifier)
            .options(
                EnsembleOptions::new()
                    .trials(97) // deliberately not a multiple of any thread count
                    .master_seed(20_260_728)
                    .threads(threads)
                    .method(SsaMethod::TauLeaping)
                    .simulation(SimulationOptions::new().stop(StopCondition::time(0.5))),
            )
            .run()
            .unwrap()
    };
    let single = run(1);
    // The workload must actually leap: 97 trials of a ~6000-molecule network
    // over t=0.5 fire far more events than any exact stepper could in the
    // same budget of steps.
    assert!(
        single.mean_events > 1_000.0,
        "mean events {} — the network is not leaping",
        single.mean_events
    );
    for threads in [2usize, 4, 8] {
        let multi = run(threads);
        assert_eq!(single, multi, "{threads} threads: reports differ");
        assert_eq!(
            single.mean_events.to_bits(),
            multi.mean_events.to_bits(),
            "{threads} threads: mean_events differs in the last bit"
        );
        assert_eq!(
            single.mean_final_time.to_bits(),
            multi.mean_final_time.to_bits(),
            "{threads} threads: mean_final_time differs in the last bit"
        );
    }
}

/// The hybrid multiscale stepper honours the same contract: Poisson leap
/// draws over the fast partition, Exp(1) slow-hazard budgets, ODE segments
/// and exact fallback bursts are all consumed from the per-trial RNG, so
/// the report is bit-identical across 1/2/4/8 worker threads. The network
/// is a fast birth–death pool with a genuinely slow production channel, so
/// trajectories partition (leap + slow firings) rather than degrade to
/// pure exact stepping.
#[test]
fn hybrid_reports_are_bit_identical_across_thread_counts() {
    let crn: Crn = "0 -> x @ 2000\n\
                    x -> 0 @ 0.2\n\
                    x -> x + p @ 0.0002\n\
                    p -> 0 @ 0.5"
        .parse()
        .unwrap();
    let initial = crn.zero_state();
    let run = |threads: usize| {
        let classifier = SpeciesThresholdClassifier::new()
            .rule_named(&crn, "p", 1, "produced")
            .unwrap();
        Ensemble::new(&crn, initial.clone(), classifier)
            .options(
                EnsembleOptions::new()
                    .trials(97) // deliberately not a multiple of any thread count
                    .master_seed(20_260_808)
                    .threads(threads)
                    .method(SsaMethod::Hybrid)
                    .simulation(SimulationOptions::new().stop(StopCondition::time(0.5))),
            )
            .run()
            .unwrap()
    };
    let single = run(1);
    // The workload must actually partition: ~1000 birth firings per trial
    // are batched into leaps while the slow channels fire discretely.
    assert!(
        single.mean_events > 1_000.0,
        "mean events {} — the network is not leaping",
        single.mean_events
    );
    for threads in [2usize, 4, 8] {
        let multi = run(threads);
        assert_eq!(single, multi, "{threads} threads: reports differ");
        assert_eq!(
            single.mean_events.to_bits(),
            multi.mean_events.to_bits(),
            "{threads} threads: mean_events differs in the last bit"
        );
        assert_eq!(
            single.mean_final_time.to_bits(),
            multi.mean_final_time.to_bits(),
            "{threads} threads: mean_final_time differs in the last bit"
        );
    }
}

/// The multi-node contract: a report assembled from range partials that
/// were serialised to their wire parts, shuffled across "nodes", rebuilt
/// and merged — exactly what the service fabric does over HTTP — is
/// bit-identical to the single-process run, for every cluster shape. The
/// exact accumulators make the merged statistics a pure function of the
/// trial multiset, so shard boundaries, shard order and retried shards
/// cannot perturb a single bit.
#[test]
fn sharded_reports_survive_the_wire_bit_identically() {
    use gillespie::engine::CancelToken;
    use gillespie::EnsemblePartial;

    let crn: Crn = "x -> h @ 3\nx -> t @ 1".parse().unwrap();
    let initial = crn.state_from_counts([("x", 1)]).unwrap();
    let build = || {
        let classifier = SpeciesThresholdClassifier::new()
            .rule_named(&crn, "h", 1, "heads")
            .unwrap()
            .rule_named(&crn, "t", 1, "tails")
            .unwrap();
        Ensemble::new(&crn, initial.clone(), classifier).options(
            EnsembleOptions::new()
                .trials(503)
                .master_seed(77)
                .threads(2),
        )
    };
    let reference = build().run().unwrap();
    let token = CancelToken::new();
    // Cluster shapes: 1, 2 and 4 "nodes", uneven shard sizes, shards
    // delivered out of order (as racing workers would deliver them).
    for boundaries in [
        vec![0u64, 503],
        vec![0, 251, 503],
        vec![0, 100, 251, 377, 503],
    ] {
        let ensemble = build();
        let mut shards: Vec<EnsemblePartial> = boundaries
            .windows(2)
            .map(|w| {
                let parts = ensemble.run_range(w[0], w[1], &token).unwrap().to_parts();
                EnsemblePartial::from_parts(parts).unwrap()
            })
            .collect();
        shards.reverse();
        let merged = build().merge(shards).unwrap();
        assert_eq!(merged, reference, "cluster shape {boundaries:?}");
        for (ours, single) in [
            (merged.mean_events, reference.mean_events),
            (merged.events_variance, reference.events_variance),
            (merged.mean_final_time, reference.mean_final_time),
            (merged.final_time_variance, reference.final_time_variance),
        ] {
            assert_eq!(ours.to_bits(), single.to_bits(), "shape {boundaries:?}");
        }
    }
}

/// The adaptive portfolio is a pure *selection* layer: an ensemble
/// configured with `StepperKind::Auto` must produce a report bit-identical
/// to one that explicitly requests the kind the classifier resolved to —
/// same trajectories, same floating-point means, and a `method` field that
/// records the concrete kind (never `Auto`). This is the contract that lets
/// the service fold the resolved kind into its cache key and replay cached
/// `auto` responses byte-for-byte.
#[test]
fn auto_ensembles_are_bit_identical_to_the_resolved_kind() {
    use gillespie::classify;

    // Three networks spanning the classifier's regimes: a small net
    // (direct), a mid-size cascade (next-reaction), and a dense-population
    // switch ensemble (tau-leaping).
    let systems = vec![
        crn::generators::reversible_chain(10, 1.0, 0.5, 200),
        crn::generators::linear_cascade(100, 50.0, 1.0, 200),
        crn::generators::lambda_switch_ensemble(20, 1.0, 0.1, 0.001, 30),
    ];
    let mut resolved_kinds = std::collections::BTreeSet::new();
    for system in &systems {
        let resolved = SsaMethod::Auto.resolve(&system.crn, &system.initial);
        assert_ne!(resolved, SsaMethod::Auto, "resolution must be concrete");
        assert_eq!(resolved, classify(&system.crn, &system.initial).resolved);
        resolved_kinds.insert(resolved.name());

        let run = |method: SsaMethod, threads: usize| {
            let classifier = SpeciesThresholdClassifier::new();
            Ensemble::new(&system.crn, system.initial.clone(), classifier)
                .options(
                    EnsembleOptions::new()
                        .trials(37)
                        .master_seed(20_260_808)
                        .threads(threads)
                        .method(method)
                        .simulation(SimulationOptions::new().stop(StopCondition::events(200))),
                )
                .run()
                .unwrap()
        };
        let auto = run(SsaMethod::Auto, 1);
        let explicit = run(resolved, 1);
        assert_eq!(auto, explicit, "auto != explicit {}", resolved.name());
        assert_eq!(
            auto.method, resolved,
            "report must record the resolved kind"
        );
        // And the thread-count invariance contract holds through the
        // portfolio layer too.
        assert_eq!(auto, run(SsaMethod::Auto, 4), "auto differs across threads");
    }
    assert!(
        resolved_kinds.len() >= 2,
        "test networks should exercise more than one regime, got {resolved_kinds:?}"
    );
}
