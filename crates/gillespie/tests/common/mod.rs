//! Helpers shared by the distribution-oracle test binaries
//! (`statistical_validation.rs` and `cme_oracle.rs`): ensemble histograms
//! and the windowing that maps exact CME marginals onto them. Keeping the
//! binning/clamping convention in one place means the two suites cannot
//! silently diverge on what a histogram bin means.

// Each test binary compiles its own copy and uses a subset of the helpers.
#![allow(dead_code)]

use crn::Crn;
use gillespie::{Simulation, SimulationOptions, StepperKind, StopCondition};
use numerics::Histogram;

/// Runs one trajectory per seed in `seeds` of `crn` to time `t_end` with
/// the given stepper and histograms the final count of `species` over the
/// integer range `lo..=hi` (one bin per integer; out-of-range finals clamp
/// to the edge bins, as the conformance harness expects).
pub fn final_count_histogram(
    crn: &Crn,
    initial: &crn::State,
    method: StepperKind,
    species: crn::SpeciesId,
    seeds: std::ops::Range<u64>,
    t_end: f64,
    (lo, hi): (u64, u64),
) -> Histogram {
    let mut hist = Histogram::new(lo as f64 - 0.5, hi as f64 + 0.5, (hi - lo + 1) as usize);
    for seed in seeds {
        let result = Simulation::new(crn, method.stepper())
            .options(
                SimulationOptions::new()
                    .seed(seed)
                    .stop(StopCondition::time(t_end))
                    .max_events(10_000_000),
            )
            .run(initial)
            .expect("trajectory");
        hist.add(result.final_state.count(species) as f64);
    }
    hist
}

/// Projects an exact CME marginal onto the `lo..=hi` histogram window,
/// lumping the tails into the edge bins exactly as
/// [`final_count_histogram`] clamps out-of-range finals.
pub fn windowed(marginal: &[f64], (lo, hi): (u64, u64)) -> Vec<f64> {
    let mut expected = vec![0.0f64; (hi - lo + 1) as usize];
    for (k, &p) in marginal.iter().enumerate() {
        let bin = (k as u64).clamp(lo, hi) - lo;
        expected[bin as usize] += p;
    }
    expected
}

/// Total-variation distance between two windowed probability vectors.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0
}
