//! CME oracle tests: every stepper against exact transient ground truth,
//! **mid-relaxation**.
//!
//! The stationary-law conformance suite (`statistical_validation.rs`) can
//! only catch biases that survive equilibration; a stepper with wrong
//! *dynamics* but the right fixed point would slip through. Here the
//! ensembles are stopped halfway through relaxation, where the distribution
//! is still far from stationary, and compared bin-for-bin against the exact
//! uniformized CME solution at that very horizon. The `cme` crate's
//! propensity convention is also pinned against `gillespie`'s, so the two
//! codebases cannot silently diverge on the meaning of a rate.

use cme::{GeneratorMatrix, PopulationBounds, StateSpace};
use crn::Crn;
use gillespie::StepperKind;
use numerics::chi_square_goodness_of_fit;

mod common;
use common::{final_count_histogram, windowed};

/// Significance level of the seeded tolerance bands.
const ALPHA: f64 = 1e-3;

/// An immigration–death process caught **mid-relaxation**: starting from
/// zero molecules, at `t = 0.75/μ` the exact law (mean ≈ 31.7) is far from
/// the stationary Poisson(60) — any stepper with biased dynamics fails even
/// if its fixed point is right. All five steppers must conform to the CME
/// transient.
#[test]
fn birth_death_mid_relaxation_conforms_to_cme_for_every_method() {
    let lambda = 60.0;
    let mu = 1.0;
    let t_end = 0.75; // mean = 60·(1 − e^{−0.75}) ≈ 31.7, stationary is 60
    let crn: Crn = format!("0 -> a @ {lambda}\na -> 0 @ {mu}")
        .parse()
        .expect("network");
    let a = crn.species_id("a").expect("species");
    let initial = crn.zero_state();

    let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::truncating(140))
        .expect("state space");
    let solution = space.transient(t_end, 1e-10).expect("transient");
    assert!(
        solution.leaked + solution.truncation_error < 1e-9,
        "truncation must be negligible"
    );
    // The exact mean at t is λ/μ·(1 − e^{−μt}); the CME must agree to the
    // truncation error — this pins the oracle before it judges anyone else.
    let exact_mean = lambda / mu * (1.0 - (-mu * t_end).exp());
    let cme_mean = space.expectation(&solution.probabilities, a);
    assert!(
        (cme_mean - exact_mean).abs() < 1e-6,
        "CME mean {cme_mean} vs closed form {exact_mean}"
    );

    let (lo, hi) = (8u64, 60u64); // ±~4.2σ around the transient mean
    let expected = windowed(&space.marginal(&solution.probabilities, a), (lo, hi));
    for method in StepperKind::ALL {
        let hist =
            final_count_histogram(&crn, &initial, method, a, 40_000..41_200, t_end, (lo, hi));
        let gof = chi_square_goodness_of_fit(hist.counts(), &expected).expect("test");
        assert!(
            gof.passes(ALPHA),
            "{}: mid-relaxation goodness-of-fit failed: chi2 = {:.1}, dof = {}, p = {:.2e}",
            method.name(),
            gof.statistic,
            gof.dof,
            gof.p_value
        );
    }
}

/// Reversible isomerisation caught mid-relaxation: the binomial parameter
/// is still rising towards k₁/(k₁+k₂) when the ensembles stop. The CME
/// transient is the oracle for all five steppers.
#[test]
fn isomerisation_mid_relaxation_conforms_to_cme_for_every_method() {
    let k1 = 3.0;
    let k2 = 1.0;
    let n = 200u64;
    let t_end = 0.25; // p(t) = 0.75·(1 − e^{−4t}) ≈ 0.474, stationary 0.75
    let crn: Crn = format!("a -> b @ {k1}\nb -> a @ {k2}")
        .parse()
        .expect("network");
    let b = crn.species_id("b").expect("species");
    let initial = crn.state_from_counts([("a", n)]).expect("state");

    let space =
        StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(n)).expect("state space");
    assert_eq!(space.len() as u64, n + 1, "closed 1-D chain");
    let solution = space.transient(t_end, 1e-10).expect("transient");
    let marginal = space.marginal(&solution.probabilities, b);

    // Cross-check: each molecule is independently in `b` with probability
    // p(t) = k₁/(k₁+k₂)·(1 − e^{−(k₁+k₂)t}), so the law is Binomial(n, p).
    let p = k1 / (k1 + k2) * (1.0 - (-(k1 + k2) * t_end).exp());
    let mean = space.expectation(&solution.probabilities, b);
    assert!(
        (mean - n as f64 * p).abs() < 1e-6,
        "CME mean {mean} vs binomial mean {}",
        n as f64 * p
    );

    let sigma = (n as f64 * p * (1.0 - p)).sqrt();
    let lo = (n as f64 * p - 4.5 * sigma) as u64;
    let hi = (n as f64 * p + 4.5 * sigma) as u64;
    let expected = windowed(&marginal, (lo, hi));
    for method in StepperKind::ALL {
        let hist =
            final_count_histogram(&crn, &initial, method, b, 50_000..51_200, t_end, (lo, hi));
        let gof = chi_square_goodness_of_fit(hist.counts(), &expected).expect("test");
        assert!(
            gof.passes(ALPHA),
            "{}: mid-relaxation goodness-of-fit failed: chi2 = {:.1}, dof = {}, p = {:.2e}",
            method.name(),
            gof.statistic,
            gof.dof,
            gof.p_value
        );
    }
}

/// A **high-population** immigration–death process caught mid-relaxation —
/// the regime where the hybrid stepper actually partitions: the birth
/// channel (propensity 2000) runs fast while the death channel (≈ 190 at
/// the transient mean) stays below the fast threshold and fires through
/// the integrated-hazard budget. The low-copy tests above exercise
/// hybrid's exact-burst degradation; this one exercises its fast/slow
/// machinery against the exact CME transient. Tau-leaping rides along as
/// the approximate control.
#[test]
fn high_population_birth_death_conforms_to_cme_for_partitioned_steppers() {
    let lambda = 2000.0;
    let mu = 0.2;
    let t_end = 0.5; // mean = 10000·(1 − e^{−0.1}) ≈ 951.6, stationary 10000
    let crn: Crn = format!("0 -> a @ {lambda}\na -> 0 @ {mu}")
        .parse()
        .expect("network");
    let a = crn.species_id("a").expect("species");
    let initial = crn.zero_state();

    let space = StateSpace::enumerate(&crn, &initial, &PopulationBounds::truncating(1_400))
        .expect("state space");
    let solution = space.transient(t_end, 1e-10).expect("transient");
    assert!(
        solution.leaked + solution.truncation_error < 1e-9,
        "truncation must be negligible"
    );
    let exact_mean = lambda / mu * (1.0 - (-mu * t_end).exp());
    let cme_mean = space.expectation(&solution.probabilities, a);
    assert!(
        (cme_mean - exact_mean).abs() < 1e-6,
        "CME mean {cme_mean} vs closed form {exact_mean}"
    );

    // Poisson transient: σ = √mean ≈ 30.8; window ±~3.5σ.
    let (lo, hi) = (845u64, 1_060u64);
    let expected = windowed(&space.marginal(&solution.probabilities, a), (lo, hi));
    for method in [StepperKind::Hybrid, StepperKind::TauLeaping] {
        let hist =
            final_count_histogram(&crn, &initial, method, a, 60_000..63_000, t_end, (lo, hi));
        let gof = chi_square_goodness_of_fit(hist.counts(), &expected).expect("test");
        assert!(
            gof.passes(ALPHA),
            "{}: high-population goodness-of-fit failed: chi2 = {:.1}, dof = {}, p = {:.2e}",
            method.name(),
            gof.statistic,
            gof.dof,
            gof.p_value
        );
    }
}

/// The CME layer and the simulators must agree on what a propensity *is*:
/// for every enumerated state of a second-order network, the state-space
/// total outflow must equal `gillespie::total_propensity` bitwise.
#[test]
fn cme_outflows_match_gillespie_propensities_bitwise() {
    let crn: Crn = "2 a -> b @ 0.003\nb -> 2 a @ 1.5\na + b -> c @ 0.2\nc -> a + b @ 2"
        .parse()
        .expect("network");
    let initial = crn.state_from_counts([("a", 20), ("b", 5)]).expect("state");
    let space =
        StateSpace::enumerate(&crn, &initial, &PopulationBounds::strict(40)).expect("state space");
    assert!(
        space.len() > 50,
        "non-trivial space: {} states",
        space.len()
    );
    for i in 0..space.len() {
        let state = space.state(i);
        let expected = gillespie::total_propensity(&crn, state);
        assert_eq!(
            space.total_outflow(i),
            expected,
            "state {state}: outflow disagrees with gillespie"
        );
    }
    // The generator diagonal must be the negated outflow, exactly.
    let generator = GeneratorMatrix::from_space(&space);
    for i in 0..space.len() {
        let diagonal = generator
            .row(i)
            .find(|&(j, _)| j == i)
            .map(|(_, v)| v)
            .expect("diagonal entry");
        assert_eq!(diagonal, -space.total_outflow(i));
    }
}
