//! Property-based tests of the stochastic simulators.

use crn::Crn;
use gillespie::{
    propensities, propensity, CompositionRejection, DirectMethod, FirstReactionMethod,
    NextReactionMethod, RecordingMode, Simulation, SimulationOptions, SsaStepper, StepOutcome,
    StopCondition, TauLeaping,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// Strategy: a reversible conversion network `a <-> b <-> c` with arbitrary
/// positive rates — closed, so the total molecule count is conserved.
fn conversion_network() -> impl Strategy<Value = Crn> {
    prop::collection::vec(0.01f64..100.0, 4).prop_map(|rates| {
        format!(
            "a -> b @ {}\nb -> a @ {}\nb -> c @ {}\nc -> b @ {}",
            rates[0], rates[1], rates[2], rates[3]
        )
        .parse()
        .expect("valid network")
    })
}

proptest! {
    /// First-order propensities are exactly `rate · count`.
    #[test]
    fn first_order_propensity_is_linear(rate in 0.001f64..1e4, count in 0u64..10_000) {
        let crn: Crn = format!("a -> b @ {rate}").parse().expect("network");
        let state = crn.state_from_counts([("a", count)]).expect("state");
        let expected = rate * count as f64;
        let actual = propensity(&crn.reactions()[0], &state);
        prop_assert!((actual - expected).abs() <= expected.abs() * 1e-12);
    }

    /// Homodimerisation propensities use the combinatorial count
    /// `rate · n(n−1)/2` and are never negative.
    #[test]
    fn dimerisation_propensity_uses_combinations(rate in 0.001f64..100.0, count in 0u64..2_000) {
        let crn: Crn = format!("2 a -> b @ {rate}").parse().expect("network");
        let state = crn.state_from_counts([("a", count)]).expect("state");
        let expected = if count >= 2 {
            rate * (count * (count - 1)) as f64 / 2.0
        } else {
            0.0
        };
        let actual = propensity(&crn.reactions()[0], &state);
        prop_assert!(actual >= 0.0);
        prop_assert!((actual - expected).abs() <= expected.abs() * 1e-12 + 1e-12);
    }

    /// Total molecule count is conserved along every trajectory of a closed
    /// conversion network, for every SSA variant.
    #[test]
    fn closed_networks_conserve_mass(
        crn in conversion_network(),
        a0 in 1u64..200,
        b0 in 0u64..200,
        seed in 0u64..1_000,
    ) {
        let initial = crn.state_from_counts([("a", a0), ("b", b0)]).expect("state");
        let total = a0 + b0;
        let options = SimulationOptions::new()
            .seed(seed)
            .stop(StopCondition::events(500));
        // Boxed steppers implement `SsaStepper` directly, so the runtime
        // choice can drive `Simulation` without an adapter.
        let run = |stepper: Box<dyn SsaStepper + Send>| {
            Simulation::new(&crn, stepper)
                .options(options.clone())
                .run(&initial)
                .expect("trajectory")
        };
        for result in [
            run(Box::new(DirectMethod::new())),
            run(Box::new(FirstReactionMethod::new())),
            run(Box::new(NextReactionMethod::new())),
            run(Box::new(CompositionRejection::new())),
        ] {
            prop_assert_eq!(result.final_state.total(), total);
            prop_assert!(result.final_time >= 0.0);
        }
    }

    /// The same seed always reproduces the same trajectory.
    #[test]
    fn trajectories_are_deterministic_given_a_seed(
        crn in conversion_network(),
        seed in 0u64..10_000,
    ) {
        let initial = crn.state_from_counts([("a", 50)]).expect("state");
        let options = SimulationOptions::new().seed(seed).stop(StopCondition::events(200));
        let first = Simulation::new(&crn, DirectMethod::new())
            .options(options.clone())
            .run(&initial)
            .expect("trajectory");
        let second = Simulation::new(&crn, DirectMethod::new())
            .options(options)
            .run(&initial)
            .expect("trajectory");
        prop_assert_eq!(first.final_state, second.final_state);
        prop_assert!((first.final_time - second.final_time).abs() < 1e-12);
        prop_assert_eq!(first.events, second.events);
    }

    /// Simulated time never decreases and the event count never exceeds the
    /// configured stop bound.
    #[test]
    fn event_counts_respect_stop_conditions(
        crn in conversion_network(),
        limit in 1u64..400,
        seed in 0u64..1_000,
    ) {
        let initial = crn.state_from_counts([("a", 100)]).expect("state");
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(
                SimulationOptions::new()
                    .seed(seed)
                    .stop(StopCondition::events(limit)),
            )
            .run(&initial)
            .expect("trajectory");
        prop_assert!(result.events <= limit);
        prop_assert!(result.final_time >= 0.0);
    }

    /// Tau-leaping never drives a population negative: on a closed
    /// conversion network every recorded step (leaps included) conserves
    /// the total molecule count exactly. A partial or negative leap would
    /// break conservation — `State` counts are unsigned, so an unguarded
    /// negative delta would wrap to an enormous total.
    #[test]
    fn tau_leaping_never_drives_populations_negative(
        crn in conversion_network(),
        a0 in 1u64..20_000,
        b0 in 0u64..20_000,
        seed in 0u64..1_000,
    ) {
        let initial = crn.state_from_counts([("a", a0), ("b", b0)]).expect("state");
        let total = a0 + b0;
        let result = Simulation::new(&crn, TauLeaping::new())
            .options(
                SimulationOptions::new()
                    .seed(seed)
                    .stop(StopCondition::time(0.5))
                    .recording(RecordingMode::EveryEvent)
                    .max_events(5_000_000),
            )
            .run(&initial)
            .expect("trajectory");
        for point in result.trajectory.points() {
            prop_assert_eq!(point.state.total(), total);
        }
        prop_assert_eq!(result.final_state.total(), total);
    }

    /// The same guard on a second-order network: one firing of `2a -> b`
    /// consumes two molecules at once, so the linear invariant `a + 2b`
    /// catches any over-consuming leap.
    #[test]
    fn tau_leaping_preserves_dimerisation_invariant(
        k1 in 1e-5f64..1e-2,
        k2 in 0.05f64..5.0,
        a0 in 2u64..10_000,
        seed in 0u64..1_000,
    ) {
        let crn: Crn = format!("2 a -> b @ {k1}\nb -> 2 a @ {k2}")
            .parse()
            .expect("network");
        let a = crn.species_id("a").expect("species");
        let b = crn.species_id("b").expect("species");
        let initial = crn.state_from_counts([("a", a0)]).expect("state");
        let result = Simulation::new(&crn, TauLeaping::new())
            .options(
                SimulationOptions::new()
                    .seed(seed)
                    .stop(StopCondition::time(0.5))
                    .recording(RecordingMode::EveryEvent)
                    .max_events(5_000_000),
            )
            .run(&initial)
            .expect("trajectory");
        for point in result.trajectory.points() {
            prop_assert_eq!(point.state.count(a) + 2 * point.state.count(b), a0);
        }
    }

    /// The Cao–Gillespie leap candidate shrinks monotonically as the
    /// error-control ε shrinks: a tighter tolerance can only ask for a
    /// shorter (or equal, once the `max(εx/g, 1)` floor binds) leap.
    #[test]
    fn tau_candidate_shrinks_monotonically_with_epsilon(
        crn in conversion_network(),
        a0 in 0u64..50_000,
        b0 in 0u64..50_000,
        c0 in 0u64..50_000,
        eps_lo in 0.001f64..0.5,
        ratio in 0.01f64..1.0,
    ) {
        let eps_hi = eps_lo;
        let eps_lo = eps_lo * ratio;
        let state = crn
            .state_from_counts([("a", a0), ("b", b0), ("c", c0)])
            .expect("state");
        let tau_at = |eps: f64| {
            TauLeaping::new().with_epsilon(eps).candidate_tau(&crn, &state)
        };
        match (tau_at(eps_lo), tau_at(eps_hi)) {
            (Some(fine), Some(coarse)) => {
                prop_assert!(fine > 0.0);
                prop_assert!(
                    fine <= coarse,
                    "tau(ε={eps_lo}) = {fine} > tau(ε={eps_hi}) = {coarse}"
                );
            }
            // Exhaustion / full criticality does not depend on ε: the two
            // candidates must agree on feasibility.
            (None, None) => {}
            (fine, coarse) => {
                prop_assert!(false, "feasibility diverged: {fine:?} vs {coarse:?}");
            }
        }
    }

    /// Composition–rejection's incremental group bookkeeping is
    /// history-free: after an arbitrary firing sequence, the per-binade
    /// group sums, the group memberships and the maintained propensity
    /// vector all equal — **bitwise** — what a fresh stepper computes by a
    /// full rebuild from the reached state. This is the contract that makes
    /// the exact-ledger design worth its complexity: a plain `f64` running
    /// sum fails it within a handful of events.
    #[test]
    fn composition_rejection_ledger_matches_full_rebuild_bitwise(
        crn in conversion_network(),
        a0 in 1u64..500,
        b0 in 0u64..500,
        seed in 0u64..10_000,
        events in 1u32..400,
    ) {
        let initial = crn.state_from_counts([("a", a0), ("b", b0)]).expect("state");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut incremental = CompositionRejection::new();
        let mut state = initial.clone();
        let mut time = 0.0;
        incremental.initialize(&crn, &state, &mut rng);
        for _ in 0..events {
            if let StepOutcome::Exhausted =
                incremental.step(&crn, &mut state, &mut time, &mut rng)
            {
                break;
            }
        }

        // The stepper's maintained propensity vector — what the rejection
        // stage actually samples against — must equal a full recompute.
        let mut fresh_propensities = Vec::new();
        propensities(&crn, &state, &mut fresh_propensities);
        for (r, (&maintained, &expected)) in incremental
            .maintained_propensities()
            .iter()
            .zip(&fresh_propensities)
            .enumerate()
        {
            prop_assert_eq!(
                maintained.to_bits(),
                expected.to_bits(),
                "reaction {}: maintained {:e} vs recomputed {:e}",
                r, maintained, expected
            );
        }

        // And the group ledger must equal a from-scratch rebuild, bitwise.
        let mut rebuilt = CompositionRejection::new();
        rebuilt.initialize(&crn, &state, &mut rng);
        let inc_ledger = incremental.group_ledger();
        let reb_ledger = rebuilt.group_ledger();
        prop_assert_eq!(inc_ledger.len(), reb_ledger.len(), "group count differs");
        for (inc, reb) in inc_ledger.iter().zip(&reb_ledger) {
            prop_assert_eq!(inc.0, reb.0, "binade set differs");
            prop_assert_eq!(
                inc.1.to_bits(), reb.1.to_bits(),
                "group {} sum differs: incremental {:e} vs rebuilt {:e}",
                inc.0, inc.1, reb.1
            );
            prop_assert_eq!(&inc.2, &reb.2, "group {} membership differs", inc.0);
        }
    }

    /// The same ledger contract on a second-order network with rates spread
    /// over ~20 binades: quadratic propensities rise and fall through many
    /// bins as the dimer pool fills, and near-exhaustion channels drop out
    /// of the group structure entirely and must come back identically.
    #[test]
    fn composition_rejection_ledger_survives_binade_churn(
        k1 in 1e-6f64..1e-2,
        k2 in 0.1f64..100.0,
        a0 in 2u64..3_000,
        seed in 0u64..10_000,
        events in 1u32..600,
    ) {
        let crn: Crn = format!("2 a -> b @ {k1}\nb -> 2 a @ {k2}")
            .parse()
            .expect("network");
        let initial = crn.state_from_counts([("a", a0)]).expect("state");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut incremental = CompositionRejection::new();
        let mut state = initial.clone();
        let mut time = 0.0;
        incremental.initialize(&crn, &state, &mut rng);
        for _ in 0..events {
            if let StepOutcome::Exhausted =
                incremental.step(&crn, &mut state, &mut time, &mut rng)
            {
                break;
            }
        }
        let mut rebuilt = CompositionRejection::new();
        rebuilt.initialize(&crn, &state, &mut rng);
        let inc_ledger = incremental.group_ledger();
        let reb_ledger = rebuilt.group_ledger();
        prop_assert_eq!(&inc_ledger, &reb_ledger, "ledgers diverged");
        for ((binade, sum, members), reb) in inc_ledger.iter().zip(&reb_ledger) {
            prop_assert_eq!(sum.to_bits(), reb.1.to_bits(), "group {} sum bits", binade);
            prop_assert!(!members.is_empty(), "empty group {} retained", binade);
            prop_assert!(*sum > 0.0, "non-positive group sum {:e}", sum);
        }
    }

    /// `StopCondition::any_of` and `all_of` behave exactly like logical OR
    /// and AND of their parts.
    #[test]
    fn composite_stop_conditions_are_boolean_algebra(
        time in 0.0f64..100.0,
        events in 0u64..100,
        counts in prop::collection::vec(0u64..50, 3),
        time_bound in 0.0f64..100.0,
        event_bound in 0u64..100,
        threshold in 0u64..50,
    ) {
        let state = crn::State::from_counts(counts);
        let parts = vec![
            StopCondition::time(time_bound),
            StopCondition::events(event_bound),
            StopCondition::species_at_least(crn::SpeciesId::from_index(1), threshold),
        ];
        let individually: Vec<bool> = parts
            .iter()
            .map(|c| c.is_met(time, events, &state))
            .collect();
        let any = StopCondition::any_of(parts.clone()).is_met(time, events, &state);
        let all = StopCondition::all_of(parts).is_met(time, events, &state);
        prop_assert_eq!(any, individually.iter().any(|&b| b));
        prop_assert_eq!(all, individually.iter().all(|&b| b));
    }
}

proptest! {
    /// The portfolio classifier's verdict is a pure function of the parsed
    /// network and initial state: re-classifying, re-parsing the same
    /// source text, and classifying on a different thread all resolve to
    /// the same concrete kind with the same feature report — nothing
    /// environmental (caller seeds, thread identity, prior classifications)
    /// leaks in. This purity is what makes `auto` cache keys replayable.
    #[test]
    fn auto_classification_is_a_pure_function_of_the_network(
        crn in conversion_network(),
        a in 0u64..5_000,
        b in 0u64..5_000,
        c in 0u64..5_000,
    ) {
        use gillespie::{classify, SsaMethod};
        let initial = crn
            .state_from_counts([("a", a), ("b", b), ("c", c)])
            .expect("state");
        let first = classify(&crn, &initial);
        prop_assert_ne!(first.resolved, SsaMethod::Auto);
        prop_assert_eq!(&first, &classify(&crn, &initial));
        prop_assert_eq!(first.resolved, SsaMethod::Auto.resolve(&crn, &initial));

        // Same source text, freshly parsed on another thread.
        let text = format!("{crn}");
        let elsewhere = std::thread::spawn(move || {
            let reparsed: Crn = text.parse().expect("round-trip");
            let initial = reparsed
                .state_from_counts([("a", a), ("b", b), ("c", c)])
                .expect("state");
            classify(&reparsed, &initial)
        })
        .join()
        .expect("classifier thread");
        prop_assert_eq!(first, elsewhere);
    }
}

proptest! {
    /// The hybrid multiscale stepper conserves mass exactly on closed
    /// networks across **every** advancement mode — exact bursts, Poisson
    /// tau leaps over the fast partition, and deterministic ODE segments
    /// (whose channel integrals round to whole firings with persistent
    /// carries). The rate spread sweeps the network from single-scale
    /// (pure exact / pure tau) to strongly multiscale (ODE-dominated), so
    /// the cases cover all three code paths.
    #[test]
    fn hybrid_conserves_mass_across_ode_and_tau_segments(
        k_fast in 1.0f64..200.0,
        k_slow in 1e-4f64..0.5,
        a0 in 1_000u64..40_000,
        c0 in 0u64..100,
        seed in 0u64..10_000,
    ) {
        use gillespie::Hybrid;
        let crn: Crn = format!(
            "a -> b @ {k_fast}\nb -> a @ {k_fast}\nb -> c @ {k_slow}\nc -> b @ {}",
            k_slow * 2.0
        )
        .parse()
        .expect("network");
        let initial = crn
            .state_from_counts([("a", a0), ("c", c0)])
            .expect("state");
        let result = Simulation::new(&crn, Hybrid::new())
            .options(
                SimulationOptions::new()
                    .seed(seed)
                    .stop(StopCondition::time(0.05)),
            )
            .run(&initial)
            .expect("trajectory");
        prop_assert_eq!(result.final_state.total(), a0 + c0, "mass leaked");
        prop_assert_eq!(
            result.final_time.to_bits(),
            0.05f64.to_bits(),
            "every segment type must land exactly on the time stop"
        );
    }

    /// The fast/slow partition is a function of the *channel*, not of its
    /// position in the reaction list: permuting the enumeration order
    /// permutes the partition vector identically. (This is what makes the
    /// hybrid's behaviour — and the classifier feature built on the same
    /// rule — insensitive to how a model file happens to order reactions.)
    #[test]
    fn hybrid_partition_is_invariant_under_channel_enumeration_order(
        r0 in 1.0f64..1e5,
        r1 in 1e-3f64..1e3,
        r2 in 1e-6f64..1.0,
        r3 in 1e-3f64..1e3,
        a0 in 0u64..5_000,
        b0 in 0u64..5_000,
        seed in 0u64..10_000,
    ) {
        use gillespie::Hybrid;
        use rand::Rng as _;
        let lines = [
            format!("0 -> a @ {r0}"),
            format!("a -> 0 @ {r1}"),
            format!("a + b -> c @ {r2}"),
            format!("c -> a + b @ {r3}"),
            format!("b -> d @ {r1}"),
            format!("d -> b @ {r3}"),
        ];
        // A seeded Fisher–Yates permutation of the channel order.
        let mut order: Vec<usize> = (0..lines.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..i + 1));
        }
        let counts = [("a", a0), ("b", b0), ("c", 40), ("d", 7)];

        let base: Crn = lines.join("\n").parse().expect("network");
        let base_partition =
            Hybrid::new().partition(&base, &base.state_from_counts(counts).expect("state"));

        let permuted_lines: Vec<&str> =
            order.iter().map(|&i| lines[i].as_str()).collect();
        let permuted: Crn = permuted_lines.join("\n").parse().expect("network");
        let permuted_partition = Hybrid::new()
            .partition(&permuted, &permuted.state_from_counts(counts).expect("state"));

        for (pos, &orig) in order.iter().enumerate() {
            prop_assert_eq!(
                permuted_partition[pos],
                base_partition[orig],
                "channel `{}` classified differently at position {}",
                lines[orig],
                pos
            );
        }
    }
}
