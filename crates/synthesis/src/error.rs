//! Error type for synthesis.

use std::error::Error;
use std::fmt;

/// Errors produced while synthesising reaction networks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// A target distribution was empty, contained negative weights, or
    /// summed to zero.
    InvalidDistribution {
        /// Description of the problem.
        message: String,
    },
    /// A module or synthesizer was configured inconsistently.
    InvalidSpecification {
        /// Description of the problem.
        message: String,
    },
    /// A rate parameter (γ, base rate, separation) was not finite/positive.
    InvalidRateParameter {
        /// The offending parameter name.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An underlying CRN operation failed while assembling the network.
    Crn(crn::CrnError),
    /// An exact CME computation failed (population bounds exceeded, state
    /// budget exhausted, first-passage iteration not converged).
    Cme(cme::CmeError),
    /// A requested functional coefficient could not be realised with small
    /// integer stoichiometry.
    UnrealizableCoefficient {
        /// The coefficient that could not be approximated.
        coefficient: f64,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InvalidDistribution { message } => {
                write!(f, "invalid target distribution: {message}")
            }
            SynthesisError::InvalidSpecification { message } => {
                write!(f, "invalid specification: {message}")
            }
            SynthesisError::InvalidRateParameter { parameter, value } => {
                write!(
                    f,
                    "rate parameter `{parameter}` must be finite and positive, got {value}"
                )
            }
            SynthesisError::Crn(err) => write!(f, "network construction failed: {err}"),
            SynthesisError::Cme(err) => write!(f, "exact CME computation failed: {err}"),
            SynthesisError::UnrealizableCoefficient { coefficient } => write!(
                f,
                "coefficient {coefficient} cannot be approximated by small integer stoichiometry"
            ),
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::Crn(err) => Some(err),
            SynthesisError::Cme(err) => Some(err),
            _ => None,
        }
    }
}

impl From<crn::CrnError> for SynthesisError {
    fn from(err: crn::CrnError) -> Self {
        SynthesisError::Crn(err)
    }
}

impl From<cme::CmeError> for SynthesisError {
    fn from(err: cme::CmeError) -> Self {
        SynthesisError::Cme(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases = vec![
            SynthesisError::InvalidDistribution {
                message: "empty".into(),
            },
            SynthesisError::InvalidSpecification {
                message: "no outcomes".into(),
            },
            SynthesisError::InvalidRateParameter {
                parameter: "gamma",
                value: -1.0,
            },
            SynthesisError::Crn(crn::CrnError::EmptyReaction),
            SynthesisError::Cme(cme::CmeError::StateBudgetExceeded { budget: 10 }),
            SynthesisError::UnrealizableCoefficient {
                coefficient: 0.333333,
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn crn_errors_convert_and_chain() {
        let err: SynthesisError = crn::CrnError::EmptyReaction.into();
        assert!(std::error::Error::source(&err).is_some());
        let err: SynthesisError = cme::CmeError::StateBudgetExceeded { budget: 1 }.into();
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SynthesisError>();
    }
}
