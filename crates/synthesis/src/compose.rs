//! Composition of reaction fragments into one network.

use crn::Crn;

use crate::error::SynthesisError;
use crate::modules::FunctionModule;

/// Merges reaction fragments (modules, glue, the stochastic module) into a
/// single network.
///
/// Species are unified *by name*: fragments that should share a species
/// (e.g. a module output feeding an assimilation reaction) simply use the
/// same name, and fragments that must stay independent should be namespaced
/// first (see [`FunctionModule::namespaced`] and
/// [`Composer::add_namespaced`]).
///
/// Rates can be rescaled per fragment with [`Composer::add_scaled`], which is
/// how the relative "slow/fast" bands of one module are positioned below or
/// above those of another when they are chained (Section 2.2.2 of the
/// paper).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use synthesis::{glue, Composer};
///
/// let fan = glue::fan_out("moi", &["x1", "x2"], 1e9)?;
/// let lin = synthesis::modules::linear::linear(6, 1, "x2", "y1", 1e9)?;
/// let crn = Composer::new()
///     .add(&fan)
///     .add(lin.crn())
///     .build()?;
/// assert_eq!(crn.reactions().len(), 2);
/// // `x2` appears once: the fan-out output is the linear module's input.
/// assert_eq!(crn.species_len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Composer {
    parts: Vec<Crn>,
}

impl Composer {
    /// Creates an empty composer.
    pub fn new() -> Self {
        Composer::default()
    }

    /// Adds a fragment as-is.
    // Builder vocabulary, not arithmetic: `Composer::new().add(a).add(b)`.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(mut self, fragment: &Crn) -> Self {
        self.parts.push(fragment.clone());
        self
    }

    /// Adds a fragment with every rate multiplied by `factor`. Use this to
    /// shift a whole module's rate bands up or down relative to its
    /// neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidRateParameter`] if `factor` is not
    /// finite and positive.
    pub fn add_scaled(mut self, fragment: &Crn, factor: f64) -> Result<Self, SynthesisError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(SynthesisError::InvalidRateParameter {
                parameter: "factor",
                value: factor,
            });
        }
        let mut scaled = crn::CrnBuilder::new();
        for sp in fragment.species() {
            scaled.species(sp.name());
        }
        for r in fragment.reactions() {
            let reactants = r
                .reactants()
                .iter()
                .map(|t| crn::ReactionTerm::new(t.species, t.coefficient))
                .collect();
            let products = r
                .products()
                .iter()
                .map(|t| crn::ReactionTerm::new(t.species, t.coefficient))
                .collect();
            let new = match r.label() {
                Some(label) => {
                    crn::Reaction::with_label(reactants, products, r.rate() * factor, label)?
                }
                None => crn::Reaction::new(reactants, products, r.rate() * factor)?,
            };
            scaled.push_reaction(new)?;
        }
        self.parts.push(scaled.build()?);
        Ok(self)
    }

    /// Adds a fragment with all species renamed by `prefix` except the ones
    /// listed in `public` (which keep their names so they can connect to the
    /// rest of the network).
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Crn`] if the renaming creates a collision.
    pub fn add_namespaced(
        mut self,
        fragment: &Crn,
        prefix: &str,
        public: &[&str],
    ) -> Result<Self, SynthesisError> {
        let renamed = fragment.rename_species(|name| {
            if public.contains(&name) {
                name.to_string()
            } else {
                format!("{prefix}{name}")
            }
        })?;
        self.parts.push(renamed);
        Ok(self)
    }

    /// Adds a [`FunctionModule`]'s reactions (an alias for
    /// `add(module.crn())` that reads better at call sites).
    #[must_use]
    pub fn add_module(self, module: &FunctionModule) -> Self {
        self.add(module.crn())
    }

    /// Returns the number of fragments added so far.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Returns `true` if no fragments have been added.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Merges all fragments into one network.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidSpecification`] if no fragments were
    /// added and [`SynthesisError::Crn`] if the merge fails.
    pub fn build(&self) -> Result<Crn, SynthesisError> {
        let mut parts = self.parts.iter();
        let first = parts
            .next()
            .ok_or_else(|| SynthesisError::InvalidSpecification {
                message: "cannot compose an empty set of fragments".into(),
            })?;
        let mut merged = first.clone();
        for part in parts {
            merged = merged.merge(part)?;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glue;
    use crate::modules::linear::linear;

    #[test]
    fn merges_fragments_sharing_species() {
        let a: Crn = "x -> y @ 1".parse().unwrap();
        let b: Crn = "y -> z @ 2".parse().unwrap();
        let crn = Composer::new().add(&a).add(&b).build().unwrap();
        assert_eq!(crn.species_len(), 3);
        assert_eq!(crn.reactions().len(), 2);
    }

    #[test]
    fn scaling_multiplies_all_rates() {
        let a: Crn = "x -> y @ 2\ny -> x @ 4".parse().unwrap();
        let crn = Composer::new()
            .add_scaled(&a, 10.0)
            .unwrap()
            .build()
            .unwrap();
        let rates: Vec<f64> = crn.reactions().iter().map(|r| r.rate()).collect();
        assert_eq!(rates, vec![20.0, 40.0]);
        assert!(Composer::new().add_scaled(&a, 0.0).is_err());
    }

    #[test]
    fn namespacing_keeps_public_species_connectable() {
        let module = linear(1, 2, "x", "y", 1.0).unwrap();
        let crn = Composer::new()
            .add_namespaced(module.crn(), "m1_", &["y"])
            .unwrap()
            .add_namespaced(module.crn(), "m2_", &["y"])
            .unwrap()
            .build()
            .unwrap();
        // Private species are duplicated, the public one is shared.
        assert!(crn.species_id("m1_x").is_some());
        assert!(crn.species_id("m2_x").is_some());
        assert_eq!(crn.species().iter().filter(|s| s.name() == "y").count(), 1);
    }

    #[test]
    fn empty_composition_is_an_error() {
        assert!(Composer::new().build().is_err());
        assert!(Composer::new().is_empty());
    }

    #[test]
    fn figure_4_style_front_end_composes() {
        let fan = glue::fan_out("moi", &["x1", "x2"], 1e9).unwrap();
        let lin = linear(6, 1, "x2", "y1", 1e9).unwrap();
        let assim = glue::assimilation("y1", "e2", "e1", 1e9).unwrap();
        let composer = Composer::new().add(&fan).add_module(&lin).add(&assim);
        assert_eq!(composer.len(), 3);
        let crn = composer.build().unwrap();
        assert_eq!(crn.reactions().len(), 3);
        assert!(crn.species_id("moi").is_some());
        assert!(crn.species_id("e1").is_some());
    }
}
