//! Preprocessing reactions for affine probability dependences (Example 2).
//!
//! The stochastic module's outcome probabilities are set by the initial
//! quantities of its input species `e_i`. To make those probabilities a
//! *function* of external input quantities `X_k`, the paper adds
//! preprocessing reactions that convert molecules of one `e` type into
//! another, catalysed by the external inputs. Example 2 realises
//!
//! ```text
//! p1 = 0.3 + 0.02·X1 − 0.03·X2
//! p2 = 0.4 + 0.03·X2
//! p3 = 0.3 − 0.02·X1
//! ```
//!
//! with the reactions `2 e3 + x1 -> 2 e1` and `3 e1 + x2 -> 3 e2`: each
//! molecule of `x1` moves two molecules of probability mass (2 % with an
//! input total of 100) from outcome 3 to outcome 1, and each molecule of
//! `x2` moves three from outcome 1 to outcome 2.

use crn::{Crn, CrnBuilder};
use serde::{Deserialize, Serialize};

use crate::error::SynthesisError;

/// One affine term: every molecule of `input` moves `molecules_per_input`
/// units of probability mass (molecules of `e`) from outcome `from` to
/// outcome `to`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AffineTerm {
    /// Name of the external input species (e.g. `"x1"`).
    pub input: String,
    /// Zero-based index of the outcome losing probability mass.
    pub from: usize,
    /// Zero-based index of the outcome gaining probability mass.
    pub to: usize,
    /// How many `e` molecules move per input molecule.
    pub molecules_per_input: u32,
}

/// Builder for the preprocessing reactions of an affine probabilistic
/// response.
///
/// # Example
///
/// The paper's Example 2 (with an input total of 100 molecules):
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use synthesis::Preprocessor;
///
/// let crn = Preprocessor::new(3)
///     .term("x1", 2, 0, 2)? // 2e3 + x1 -> 2e1
///     .term("x2", 0, 1, 3)? // 3e1 + x2 -> 3e2
///     .build(1e3)?;
/// assert_eq!(crn.reactions().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Preprocessor {
    outcomes: usize,
    terms: Vec<AffineTerm>,
}

impl Preprocessor {
    /// Creates a preprocessor for a stochastic module with `outcomes`
    /// outcomes.
    pub fn new(outcomes: usize) -> Self {
        Preprocessor {
            outcomes,
            terms: Vec::new(),
        }
    }

    /// Adds an affine term: each molecule of `input` moves
    /// `molecules_per_input` molecules of `e_{from+1}` to `e_{to+1}`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidSpecification`] if the outcome
    /// indices are out of range or equal, or the weight is zero.
    pub fn term(
        mut self,
        input: &str,
        from: usize,
        to: usize,
        molecules_per_input: u32,
    ) -> Result<Self, SynthesisError> {
        if from >= self.outcomes || to >= self.outcomes {
            return Err(SynthesisError::InvalidSpecification {
                message: format!(
                    "term indices ({from}, {to}) out of range for {} outcomes",
                    self.outcomes
                ),
            });
        }
        if from == to {
            return Err(SynthesisError::InvalidSpecification {
                message: "a term must move probability mass between two distinct outcomes".into(),
            });
        }
        if molecules_per_input == 0 {
            return Err(SynthesisError::InvalidSpecification {
                message: "a term must move at least one molecule per input".into(),
            });
        }
        self.terms.push(AffineTerm {
            input: input.to_string(),
            from,
            to,
            molecules_per_input,
        });
        Ok(self)
    }

    /// Returns the accumulated terms.
    pub fn terms(&self) -> &[AffineTerm] {
        &self.terms
    }

    /// Builds the preprocessing reaction fragment. All reactions run at
    /// `rate`, which should be much faster than the stochastic module's
    /// initializing reactions so the probability adjustment completes before
    /// any outcome is chosen.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidRateParameter`] for a non-positive
    /// rate and [`SynthesisError::InvalidSpecification`] if no terms were
    /// added.
    pub fn build(&self, rate: f64) -> Result<Crn, SynthesisError> {
        if self.terms.is_empty() {
            return Err(SynthesisError::InvalidSpecification {
                message: "preprocessor has no terms".into(),
            });
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SynthesisError::InvalidRateParameter {
                parameter: "rate",
                value: rate,
            });
        }
        let mut b = CrnBuilder::new();
        for term in &self.terms {
            let from = b.species(format!("e{}", term.from + 1));
            let to = b.species(format!("e{}", term.to + 1));
            let input = b.species(&term.input);
            b.reaction()
                .reactant(from, term.molecules_per_input)
                .reactant(input, 1)
                .product(to, term.molecules_per_input)
                .rate(rate)
                .label("preprocessing")
                .add()?;
        }
        Ok(b.build()?)
    }

    /// Predicts the programmed probabilities for base input counts `base`
    /// (molecules of each `e_i`) and external input quantities `inputs`,
    /// assuming every preprocessing reaction runs to completion in order and
    /// the source pools do not run dry. This is the affine function the
    /// preprocessing reactions implement.
    pub fn predicted_probabilities(&self, base: &[u64], inputs: &[(&str, u64)]) -> Vec<f64> {
        let mut counts: Vec<i64> = base.iter().map(|&c| c as i64).collect();
        counts.resize(self.outcomes, 0);
        for term in &self.terms {
            let amount = inputs
                .iter()
                .find(|(name, _)| *name == term.input)
                .map(|&(_, x)| x)
                .unwrap_or(0) as i64
                * i64::from(term.molecules_per_input);
            let moved = amount.min(counts[term.from].max(0));
            counts[term.from] -= moved;
            counts[term.to] += moved;
        }
        let total: i64 = counts.iter().sum();
        if total <= 0 {
            return vec![0.0; self.outcomes];
        }
        counts
            .iter()
            .map(|&c| c.max(0) as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_2() -> Preprocessor {
        Preprocessor::new(3)
            .term("x1", 2, 0, 2)
            .unwrap()
            .term("x2", 0, 1, 3)
            .unwrap()
    }

    #[test]
    fn example_2_reactions_match_the_paper() {
        let crn = example_2().build(1e3).unwrap();
        let rendered = crn.to_text();
        assert!(rendered.contains("2 e3 + x1 -> 2 e1 @ 1000"));
        assert!(rendered.contains("3 e1 + x2 -> 3 e2 @ 1000"));
    }

    #[test]
    fn predicted_probabilities_follow_the_affine_law() {
        let pre = example_2();
        // Base distribution {0.3, 0.4, 0.3} on 100 molecules.
        let base = [30u64, 40, 30];
        // X1 = 5, X2 = 0: p1 = 0.3 + 0.02·5 = 0.4, p3 = 0.3 − 0.02·5 = 0.2.
        let p = pre.predicted_probabilities(&base, &[("x1", 5), ("x2", 0)]);
        assert!((p[0] - 0.4).abs() < 1e-12);
        assert!((p[1] - 0.4).abs() < 1e-12);
        assert!((p[2] - 0.2).abs() < 1e-12);
        // X1 = 0, X2 = 10: p1 = 0.0, p2 = 0.7.
        let p = pre.predicted_probabilities(&base, &[("x2", 10)]);
        assert!((p[0] - 0.0).abs() < 1e-12);
        assert!((p[1] - 0.7).abs() < 1e-12);
        assert!((p[2] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn prediction_saturates_when_a_pool_is_empty() {
        let pre = example_2();
        let base = [30u64, 40, 30];
        // X1 = 100 would want to move 200 molecules but only 30 exist in e3.
        let p = pre.predicted_probabilities(&base, &[("x1", 100)]);
        assert!((p[0] - 0.6).abs() < 1e-12);
        assert!((p[2] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_terms_are_rejected() {
        assert!(Preprocessor::new(3).term("x", 0, 3, 1).is_err());
        assert!(Preprocessor::new(3).term("x", 1, 1, 1).is_err());
        assert!(Preprocessor::new(3).term("x", 0, 1, 0).is_err());
        assert!(Preprocessor::new(3).build(1.0).is_err());
        assert!(example_2().build(0.0).is_err());
    }

    #[test]
    fn terms_are_reported() {
        let pre = example_2();
        assert_eq!(pre.terms().len(), 2);
        assert_eq!(pre.terms()[0].input, "x1");
        assert_eq!(pre.terms()[0].molecules_per_input, 2);
    }
}
