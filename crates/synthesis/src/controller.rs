//! Controller synthesis: antithetic integral feedback and stationary
//! morphing.
//!
//! The paper synthesizes networks that *compute with* stochasticity; this
//! module synthesizes networks that *control* it, closing the loop with the
//! exact model checker in [`cme`]:
//!
//! * [`AntitheticController`] — the antithetic integral feedback motif of
//!   Briat, Gupta & Khammash. Two controller species `z₁`/`z₂` annihilate
//!   each other; their difference integrates the error between a reference
//!   `μ` and the measured output `θ·X`, which forces the stationary mean of
//!   the sensed species to `μ/θ` *exactly*, for any ergodic plant.
//! * [`stationary_morph`] — a Plesa-style stochastic-morphing construction:
//!   a slow two-state switch gates two dynamics over the same species, and
//!   in the slow-switching limit the stationary law converges to the
//!   mixture `(1 − λ)·π_A + λ·π_B`.
//!
//! Both constructions return the augmented controller+plant network plus a
//! matching initial state, so verdicts come straight from
//! [`cme::Checker::stationary`].
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cme::PopulationBounds;
//! use synthesis::controller::AntitheticController;
//!
//! // Plant: a single species x degraded at rate 1, driven by the
//! // controller. Set point: μ/θ = 2.
//! let plant: crn::Crn = "x -> 0 @ 1".parse()?;
//! let controller = AntitheticController::new(2.0, 1.0, 100.0, 2.0)?;
//! let loop_ = controller.close_loop(&plant, &plant.zero_state(), "x", "x")?;
//! assert_eq!(loop_.set_point(), 2.0);
//!
//! let bounds = PopulationBounds::truncating(14).cap("z1", 8).cap("z2", 8);
//! let mean = loop_.stationary_output(&bounds)?;
//! assert!((mean - 2.0).abs() < 0.05, "stationary mean {mean}");
//! # Ok(())
//! # }
//! ```

use cme::{Checker, PopulationBounds};
use crn::{Crn, CrnBuilder, State};

use crate::error::SynthesisError;

/// Controller species names reserved by the antithetic construction.
const Z1: &str = "z1";
const Z2: &str = "z2";
/// Switch species names reserved by the morphing construction.
const GATE_A: &str = "morphA";
const GATE_B: &str = "morphB";

fn positive(parameter: &'static str, value: f64) -> Result<f64, SynthesisError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(SynthesisError::InvalidRateParameter { parameter, value });
    }
    Ok(value)
}

/// The antithetic integral feedback motif (Briat, Gupta & Khammash 2016).
///
/// Four reactions close the loop around a plant:
///
/// ```text
/// ∅        -> z1           @ μ   (reference)
/// sensed   -> sensed + z2  @ θ   (measurement)
/// z1 + z2  -> ∅            @ η   (annihilation)
/// z1       -> z1 + actuated @ k  (actuation)
/// ```
///
/// In stationarity `E[dz₁/dt − dz₂/dt] = μ − θ·E[sensed] = 0`, so the
/// sensed species' stationary mean is pinned to the set point `μ/θ`
/// independent of the plant parameters — integral action in molecules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AntitheticController {
    mu: f64,
    theta: f64,
    eta: f64,
    k: f64,
}

impl AntitheticController {
    /// Creates a controller with reference rate `mu`, measurement rate
    /// `theta`, annihilation rate `eta` and actuation rate `k`.
    ///
    /// # Errors
    ///
    /// Every parameter must be finite and positive.
    pub fn new(mu: f64, theta: f64, eta: f64, k: f64) -> Result<Self, SynthesisError> {
        Ok(AntitheticController {
            mu: positive("mu", mu)?,
            theta: positive("theta", theta)?,
            eta: positive("eta", eta)?,
            k: positive("k", k)?,
        })
    }

    /// The stationary mean the controller drives the sensed species to:
    /// `μ/θ`.
    pub fn set_point(&self) -> f64 {
        self.mu / self.theta
    }

    /// Closes the loop: merges the four controller reactions into `plant`,
    /// actuating production of `actuated` and measuring `sensed`.
    ///
    /// # Errors
    ///
    /// `actuated` and `sensed` must be plant species, and the plant must
    /// not already use the reserved controller species names `z1`/`z2`.
    pub fn close_loop(
        &self,
        plant: &Crn,
        plant_initial: &State,
        actuated: &str,
        sensed: &str,
    ) -> Result<ClosedLoop, SynthesisError> {
        for name in [actuated, sensed] {
            if plant.species_id(name).is_none() {
                return Err(SynthesisError::InvalidSpecification {
                    message: format!("plant has no species '{name}' to wire the controller to"),
                });
            }
        }
        for reserved in [Z1, Z2] {
            if plant.species_id(reserved).is_some() {
                return Err(SynthesisError::InvalidSpecification {
                    message: format!(
                        "plant already uses the reserved controller species '{reserved}'"
                    ),
                });
            }
        }
        let mut b = CrnBuilder::new();
        b.reaction()
            .product_named(Z1, 1)
            .rate(self.mu)
            .label("reference")
            .add()?;
        b.reaction()
            .reactant_named(sensed, 1)
            .product_named(sensed, 1)
            .product_named(Z2, 1)
            .rate(self.theta)
            .label("measurement")
            .add()?;
        b.reaction()
            .reactant_named(Z1, 1)
            .reactant_named(Z2, 1)
            .rate(self.eta)
            .label("annihilation")
            .add()?;
        b.reaction()
            .reactant_named(Z1, 1)
            .product_named(Z1, 1)
            .product_named(actuated, 1)
            .rate(self.k)
            .label("actuation")
            .add()?;
        let crn = plant.merge(&b.build()?)?;
        let initial = transplant_state(plant, plant_initial, &crn)?;
        Ok(ClosedLoop {
            crn,
            initial,
            set_point: self.set_point(),
            sensed: sensed.to_string(),
        })
    }
}

/// A plant with the antithetic controller merged in, ready for simulation
/// or exact verification.
#[derive(Debug, Clone)]
pub struct ClosedLoop {
    crn: Crn,
    initial: State,
    set_point: f64,
    sensed: String,
}

impl ClosedLoop {
    /// The closed-loop network (plant + controller reactions).
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// The closed-loop initial state (plant initial, no controller
    /// molecules).
    pub fn initial(&self) -> &State {
        &self.initial
    }

    /// The set point `μ/θ` the sensed species is driven to.
    pub fn set_point(&self) -> f64 {
        self.set_point
    }

    /// The name of the sensed (controlled) species.
    pub fn sensed(&self) -> &str {
        &self.sensed
    }

    /// Verifies the loop with the exact model checker: the stationary mean
    /// copy number of the sensed species within `bounds`.
    ///
    /// For an ergodic closed loop this converges to
    /// [`set_point`](Self::set_point) as the bounds window grows; the
    /// residual gap is the finite-state-projection error (see
    /// [`cme::StationaryDistribution::boundary_mass`]).
    pub fn stationary_output(&self, bounds: &PopulationBounds) -> Result<f64, SynthesisError> {
        let checker = Checker::new(&self.crn, self.initial.clone(), bounds.clone());
        Ok(checker.stationary_expectation(&self.sensed)?)
    }
}

/// A morphed pair of dynamics with a slow two-state switch, plus the
/// matching initial state (switch in the A position).
#[derive(Debug, Clone)]
pub struct MorphedSystem {
    crn: Crn,
    initial: State,
    weight: f64,
}

impl MorphedSystem {
    /// The gated union network.
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// The initial state: the merged plant initials with the switch on the
    /// A side.
    pub fn initial(&self) -> &State {
        &self.initial
    }

    /// The target mixture weight λ of the B dynamics.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The switch species names gating the A and B dynamics.
    pub fn gates(&self) -> (&'static str, &'static str) {
        (GATE_A, GATE_B)
    }
}

/// Plesa-style stochastic morphing by slow switching: gates every reaction
/// of `a` by a switch species `morphA` and every reaction of `b` by
/// `morphB`, with the one-molecule switch toggling
/// `morphA -> morphB @ switch_rate·λ` and
/// `morphB -> morphA @ switch_rate·(1 − λ)`.
///
/// The switch spends a fraction λ of time on the B side, and when
/// `switch_rate` is far below the plants' relaxation rates the chain fully
/// re-equilibrates between toggles, so the stationary law of the shared
/// species converges to the mixture `(1 − λ)·π_A + λ·π_B` as
/// `switch_rate → 0`.
///
/// `a` and `b` are `(network, initial state)` pairs over the *same*
/// species (species are unified by name; both sides must agree on any
/// shared species' initial count).
///
/// # Errors
///
/// Rejects a non-finite `switch_rate ≤ 0`, a weight outside `(0, 1)`,
/// plants that use the reserved switch names, and initial states that
/// disagree on a shared species.
pub fn stationary_morph(
    a: (&Crn, &State),
    b: (&Crn, &State),
    weight: f64,
    switch_rate: f64,
) -> Result<MorphedSystem, SynthesisError> {
    positive("switch_rate", switch_rate)?;
    if !weight.is_finite() || weight <= 0.0 || weight >= 1.0 {
        return Err(SynthesisError::InvalidSpecification {
            message: format!("mixture weight {weight} must lie strictly inside (0, 1)"),
        });
    }
    for (crn, _) in [a, b] {
        for reserved in [GATE_A, GATE_B] {
            if crn.species_id(reserved).is_some() {
                return Err(SynthesisError::InvalidSpecification {
                    message: format!("plant already uses the reserved switch species '{reserved}'"),
                });
            }
        }
    }
    let mut builder = CrnBuilder::new();
    builder.species(GATE_A);
    builder.species(GATE_B);
    builder
        .reaction()
        .reactant_named(GATE_A, 1)
        .product_named(GATE_B, 1)
        .rate(switch_rate * weight)
        .label("toggle-to-B")
        .add()?;
    builder
        .reaction()
        .reactant_named(GATE_B, 1)
        .product_named(GATE_A, 1)
        .rate(switch_rate * (1.0 - weight))
        .label("toggle-to-A")
        .add()?;
    gate_reactions(&mut builder, a.0, GATE_A)?;
    gate_reactions(&mut builder, b.0, GATE_B)?;
    let crn = builder.build()?;
    let mut initial = transplant_state(a.0, a.1, &crn)?;
    // Fold in the B-side counts, insisting the two sides agree wherever
    // they overlap — a disagreement would make the morph target ambiguous.
    for (id, species) in b.0.species().iter().enumerate() {
        let count = b.1.counts()[id];
        let merged_id = crn
            .species_id(species.name())
            .expect("merged network keeps every species");
        let current = initial.count(merged_id);
        if a.0.species_id(species.name()).is_some() {
            if current != count {
                return Err(SynthesisError::InvalidSpecification {
                    message: format!(
                        "initial states disagree on shared species '{}': {current} vs {count}",
                        species.name()
                    ),
                });
            }
        } else {
            initial.set(merged_id, count);
        }
    }
    let gate = crn.species_id(GATE_A).expect("switch species exists");
    initial.set(gate, 1);
    Ok(MorphedSystem {
        crn,
        initial,
        weight,
    })
}

/// Copies every reaction of `source` into `builder` with `gate` added as a
/// catalyst (reactant and product), preserving rates and labels.
fn gate_reactions(
    builder: &mut CrnBuilder,
    source: &Crn,
    gate: &str,
) -> Result<(), SynthesisError> {
    let names: Vec<&str> = source.species().iter().map(|s| s.name()).collect();
    for reaction in source.reactions() {
        let mut rb = builder
            .reaction()
            .reactant_named(gate, 1)
            .product_named(gate, 1)
            .rate(reaction.rate());
        for term in reaction.reactants() {
            rb = rb.reactant_named(names[term.species.index()], term.coefficient);
        }
        for term in reaction.products() {
            rb = rb.product_named(names[term.species.index()], term.coefficient);
        }
        if let Some(label) = reaction.label() {
            rb = rb.label(label);
        }
        rb.add()?;
    }
    Ok(())
}

/// Re-expresses `state` (over `source`'s species) in `merged`'s id space.
fn transplant_state(source: &Crn, state: &State, merged: &Crn) -> Result<State, SynthesisError> {
    if state.counts().len() != source.species_len() {
        return Err(SynthesisError::InvalidSpecification {
            message: format!(
                "initial state has {} species but the plant has {}",
                state.counts().len(),
                source.species_len()
            ),
        });
    }
    let mut out = merged.zero_state();
    for (id, species) in source.species().iter().enumerate() {
        let count = state.counts()[id];
        if count > 0 {
            let merged_id = merged
                .species_id(species.name())
                .expect("merged network keeps every species");
            out.set(merged_id, count);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degrading_plant() -> (Crn, State) {
        let crn: Crn = "x -> 0 @ 1".parse().unwrap();
        let initial = crn.zero_state();
        (crn, initial)
    }

    #[test]
    fn controller_validates_parameters() {
        assert!(AntitheticController::new(1.0, 1.0, 1.0, 1.0).is_ok());
        for bad in [
            AntitheticController::new(0.0, 1.0, 1.0, 1.0),
            AntitheticController::new(1.0, -2.0, 1.0, 1.0),
            AntitheticController::new(1.0, 1.0, f64::NAN, 1.0),
            AntitheticController::new(1.0, 1.0, 1.0, f64::INFINITY),
        ] {
            assert!(matches!(
                bad,
                Err(SynthesisError::InvalidRateParameter { .. })
            ));
        }
    }

    #[test]
    fn closed_loop_has_plant_plus_four_reactions() {
        let (plant, initial) = degrading_plant();
        let controller = AntitheticController::new(2.0, 1.0, 50.0, 1.0).unwrap();
        let loop_ = controller.close_loop(&plant, &initial, "x", "x").unwrap();
        assert_eq!(loop_.crn().reactions().len(), plant.reactions().len() + 4);
        assert_eq!(loop_.set_point(), 2.0);
        assert_eq!(loop_.sensed(), "x");
        assert!(loop_.crn().species_id("z1").is_some());
        assert!(loop_.crn().species_id("z2").is_some());
    }

    #[test]
    fn closed_loop_rejects_bad_wiring() {
        let (plant, initial) = degrading_plant();
        let controller = AntitheticController::new(2.0, 1.0, 50.0, 1.0).unwrap();
        assert!(controller
            .close_loop(&plant, &initial, "missing", "x")
            .is_err());
        let clashing: Crn = "z1 -> 0 @ 1".parse().unwrap();
        assert!(controller
            .close_loop(&clashing, &clashing.zero_state(), "z1", "z1")
            .is_err());
    }

    #[test]
    fn antithetic_loop_tracks_set_point() {
        let (plant, initial) = degrading_plant();
        let controller = AntitheticController::new(2.0, 1.0, 100.0, 2.0).unwrap();
        let loop_ = controller.close_loop(&plant, &initial, "x", "x").unwrap();
        let bounds = PopulationBounds::truncating(14).cap("z1", 8).cap("z2", 8);
        let mean = loop_.stationary_output(&bounds).unwrap();
        assert!(
            (mean - 2.0).abs() < 0.05,
            "stationary output {mean} should track the set point 2"
        );
    }

    #[test]
    fn morph_interpolates_birth_death_laws() {
        // π_A = Poisson(1), π_B = Poisson(4); λ = 1/4 ⇒ stationary mean
        // 0.75·1 + 0.25·4 = 1.75 in the slow-switching limit.
        let a = crn::generators::birth_death(1.0, 1.0);
        let b = crn::generators::birth_death(4.0, 1.0);
        let morph =
            stationary_morph((&a.crn, &a.initial), (&b.crn, &b.initial), 0.25, 1e-4).unwrap();
        let bounds = PopulationBounds::truncating(16);
        let checker = Checker::new(morph.crn(), morph.initial().clone(), bounds);
        let mean = checker.stationary_expectation("a").unwrap();
        assert!(
            (mean - 1.75).abs() < 0.01,
            "morphed stationary mean {mean}, want ≈ 1.75"
        );
    }

    #[test]
    fn morph_rejects_inconsistent_weights_and_initials() {
        let a = crn::generators::birth_death(1.0, 1.0);
        let b = crn::generators::birth_death(4.0, 1.0);
        for weight in [0.0, 1.0, -0.5, f64::NAN] {
            assert!(
                stationary_morph((&a.crn, &a.initial), (&b.crn, &b.initial), weight, 0.1).is_err()
            );
        }
        let mut clash = b.initial.clone();
        clash.set(b.crn.species_id("a").unwrap(), 3);
        assert!(stationary_morph((&a.crn, &a.initial), (&b.crn, &clash), 0.5, 0.1).is_err());
    }
}
