//! Glue reactions: fan-out and assimilation.
//!
//! The paper's Figure 4 uses two small "glue" constructions to wire
//! deterministic modules into the stochastic module:
//!
//! * **fan-out** copies an input quantity into several species so that
//!   independent modules can each consume their own copy
//!   (`moi -> x1 + x2`), and
//! * **assimilation** folds a computed quantity into the stochastic module's
//!   input species, converting molecules of one input `e` type into another
//!   (`e2 + y -> e1`), thereby shifting probability mass between outcomes by
//!   exactly the computed amount.

use crn::{Crn, CrnBuilder};

use crate::error::SynthesisError;

/// Builds a fan-out fragment: `input -> copy₁ + copy₂ + …` at the given
/// (fast) rate. Every copy receives the full input quantity.
///
/// # Errors
///
/// Returns [`SynthesisError::InvalidSpecification`] if no copies are
/// requested or a copy name equals the input name, and
/// [`SynthesisError::InvalidRateParameter`] for a non-positive rate.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let crn = synthesis::glue::fan_out("moi", &["x1", "x2"], 1e9)?;
/// assert_eq!(crn.reactions().len(), 1);
/// assert_eq!(crn.species_len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn fan_out(input: &str, copies: &[&str], rate: f64) -> Result<Crn, SynthesisError> {
    if copies.is_empty() {
        return Err(SynthesisError::InvalidSpecification {
            message: "fan-out needs at least one copy".into(),
        });
    }
    if copies.contains(&input) {
        return Err(SynthesisError::InvalidSpecification {
            message: "fan-out copies must differ from the input".into(),
        });
    }
    if !(rate.is_finite() && rate > 0.0) {
        return Err(SynthesisError::InvalidRateParameter {
            parameter: "rate",
            value: rate,
        });
    }
    let mut b = CrnBuilder::new();
    let mut reaction = b.reaction().rate(rate).label("fan-out");
    reaction = reaction.reactant_named(input, 1);
    for copy in copies {
        reaction = reaction.product_named(copy, 1);
    }
    reaction.add()?;
    Ok(b.build()?)
}

/// Builds an assimilation fragment: `from + trigger -> to` at the given
/// (fast) rate. Each trigger molecule converts one `from` molecule into a
/// `to` molecule, consuming the trigger.
///
/// In the synthesized lambda-phage model the triggers are the outputs of the
/// deterministic modules and `from`/`to` are the stochastic module's input
/// species, so the outcome probability shifts by one percentage point per
/// trigger molecule (with an input total of 100).
///
/// # Errors
///
/// Returns [`SynthesisError::InvalidSpecification`] if the species names are
/// not distinct, and [`SynthesisError::InvalidRateParameter`] for a
/// non-positive rate.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let crn = synthesis::glue::assimilation("y2", "e2", "e1", 1e9)?;
/// assert_eq!(crn.to_text().trim(), "e2 + y2 -> e1 @ 1000000000  # assimilation");
/// # Ok(())
/// # }
/// ```
pub fn assimilation(trigger: &str, from: &str, to: &str, rate: f64) -> Result<Crn, SynthesisError> {
    let mut names = vec![trigger, from, to];
    names.sort_unstable();
    names.dedup();
    if names.len() != 3 {
        return Err(SynthesisError::InvalidSpecification {
            message: "assimilation trigger, source and destination must be distinct".into(),
        });
    }
    if !(rate.is_finite() && rate > 0.0) {
        return Err(SynthesisError::InvalidRateParameter {
            parameter: "rate",
            value: rate,
        });
    }
    let mut b = CrnBuilder::new();
    b.reaction()
        .reactant_named(from, 1)
        .reactant_named(trigger, 1)
        .product_named(to, 1)
        .rate(rate)
        .label("assimilation")
        .add()?;
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillespie::{DirectMethod, Simulation, SimulationOptions};

    #[test]
    fn fan_out_duplicates_the_input_quantity() {
        let crn = fan_out("moi", &["x1", "x2"], 1e6).unwrap();
        let initial = crn.state_from_counts([("moi", 7)]).unwrap();
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(SimulationOptions::new().seed(1))
            .run(&initial)
            .unwrap();
        assert_eq!(result.final_state.count(crn.species_id("x1").unwrap()), 7);
        assert_eq!(result.final_state.count(crn.species_id("x2").unwrap()), 7);
        assert_eq!(result.final_state.count(crn.species_id("moi").unwrap()), 0);
    }

    #[test]
    fn assimilation_moves_one_molecule_per_trigger() {
        let crn = assimilation("y", "e2", "e1", 1e6).unwrap();
        let initial = crn
            .state_from_counts([("e2", 85), ("e1", 15), ("y", 20)])
            .unwrap();
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(SimulationOptions::new().seed(2))
            .run(&initial)
            .unwrap();
        assert_eq!(result.final_state.count(crn.species_id("e1").unwrap()), 35);
        assert_eq!(result.final_state.count(crn.species_id("e2").unwrap()), 65);
        assert_eq!(result.final_state.count(crn.species_id("y").unwrap()), 0);
    }

    #[test]
    fn assimilation_is_limited_by_the_source_pool() {
        let crn = assimilation("y", "e2", "e1", 1e6).unwrap();
        let initial = crn
            .state_from_counts([("e2", 5), ("e1", 0), ("y", 20)])
            .unwrap();
        let result = Simulation::new(&crn, DirectMethod::new())
            .options(SimulationOptions::new().seed(2))
            .run(&initial)
            .unwrap();
        assert_eq!(result.final_state.count(crn.species_id("e1").unwrap()), 5);
        assert_eq!(result.final_state.count(crn.species_id("y").unwrap()), 15);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(fan_out("x", &[], 1.0).is_err());
        assert!(fan_out("x", &["x"], 1.0).is_err());
        assert!(fan_out("x", &["a"], 0.0).is_err());
        assert!(assimilation("y", "y", "e1", 1.0).is_err());
        assert!(assimilation("y", "e2", "e2", 1.0).is_err());
        assert!(assimilation("y", "e2", "e1", -1.0).is_err());
    }
}
