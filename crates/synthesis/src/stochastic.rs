//! The stochastic (winner-take-all) module — Section 2.1 of the paper.

use cme::{FirstPassage, OutcomeDistribution, PopulationBounds};
use crn::{Crn, CrnBuilder, State};
use gillespie::{Simulation, SimulationOptions, SpeciesThresholdClassifier, StopCondition};
use serde::{Deserialize, Serialize};

use crate::distribution::TargetDistribution;
use crate::error::SynthesisError;
use crate::rates::RateSchedule;

/// Default number of input molecules distributed among the `e_i`.
const DEFAULT_INPUT_TOTAL: u64 = 100;
/// Default initial quantity of each food species `f_i`.
const DEFAULT_FOOD: u64 = 100;
/// Default number of working firings required to declare an outcome (the
/// paper's error analysis uses 10).
const DEFAULT_DECISION_THRESHOLD: u64 = 10;
/// Default rate-separation factor γ.
const DEFAULT_GAMMA: f64 = 1_000.0;

/// Builder for a [`StochasticModule`].
///
/// Obtained from [`StochasticModule::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StochasticModuleBuilder {
    outcomes: Vec<String>,
    gamma: f64,
    base_rate: f64,
    input_total: u64,
    food: u64,
    decision_threshold: u64,
    extra_working_products: Vec<(usize, String, u32)>,
}

impl Default for StochasticModuleBuilder {
    fn default() -> Self {
        StochasticModuleBuilder {
            outcomes: Vec::new(),
            gamma: DEFAULT_GAMMA,
            base_rate: 1.0,
            input_total: DEFAULT_INPUT_TOTAL,
            food: DEFAULT_FOOD,
            decision_threshold: DEFAULT_DECISION_THRESHOLD,
            extra_working_products: Vec::new(),
        }
    }
}

impl StochasticModuleBuilder {
    /// Sets the outcome names (one winner-take-all branch per outcome).
    pub fn outcomes<I, S>(mut self, outcomes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.outcomes = outcomes.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the rate-separation factor γ (default 1000).
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Sets the base (initializing/working) rate (default 1.0).
    pub fn base_rate(mut self, base_rate: f64) -> Self {
        self.base_rate = base_rate;
        self
    }

    /// Sets the total number of input molecules distributed among the `e_i`
    /// (default 100).
    pub fn input_total(mut self, input_total: u64) -> Self {
        self.input_total = input_total;
        self
    }

    /// Sets the initial quantity of every food species `f_i` (default 100).
    pub fn food(mut self, food: u64) -> Self {
        self.food = food;
        self
    }

    /// Sets how many working firings declare an outcome (default 10, as in
    /// the paper's error analysis).
    pub fn decision_threshold(mut self, decision_threshold: u64) -> Self {
        self.decision_threshold = decision_threshold;
        self
    }

    /// Adds an extra product to the working reaction of outcome `outcome`
    /// (zero-based): every working firing then produces `coefficient`
    /// molecules of `species` alongside the standard output `o_{i+1}`.
    ///
    /// This is the paper's "several output types in differing proportions
    /// can be created for each catalyst type" — a single working reaction
    /// with multiple output types (Section 2.1.1, working reactions).
    pub fn working_product(
        mut self,
        outcome: usize,
        species: impl Into<String>,
        coefficient: u32,
    ) -> Self {
        self.extra_working_products
            .push((outcome, species.into(), coefficient));
        self
    }

    /// Builds the module, generating its five categories of reactions.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidSpecification`] if no outcomes were
    /// given, outcome names collide, or quantities are inconsistent (zero
    /// input total, food below the decision threshold), and
    /// [`SynthesisError::InvalidRateParameter`] for invalid γ or base rate.
    pub fn build(self) -> Result<StochasticModule, SynthesisError> {
        if self.outcomes.is_empty() {
            return Err(SynthesisError::InvalidSpecification {
                message: "at least one outcome is required".into(),
            });
        }
        let mut deduped = self.outcomes.clone();
        deduped.sort();
        deduped.dedup();
        if deduped.len() != self.outcomes.len() {
            return Err(SynthesisError::InvalidSpecification {
                message: "outcome names must be unique".into(),
            });
        }
        if self.input_total == 0 {
            return Err(SynthesisError::InvalidSpecification {
                message: "input total must be positive".into(),
            });
        }
        if self.decision_threshold == 0 {
            return Err(SynthesisError::InvalidSpecification {
                message: "decision threshold must be positive".into(),
            });
        }
        if self.food < self.decision_threshold {
            return Err(SynthesisError::InvalidSpecification {
                message: format!(
                    "food quantity ({}) must be at least the decision threshold ({})",
                    self.food, self.decision_threshold
                ),
            });
        }
        for (outcome, species, coefficient) in &self.extra_working_products {
            if *outcome >= self.outcomes.len() {
                return Err(SynthesisError::InvalidSpecification {
                    message: format!(
                        "working product refers to outcome {outcome} but only {} outcomes exist",
                        self.outcomes.len()
                    ),
                });
            }
            if *coefficient == 0 {
                return Err(SynthesisError::InvalidSpecification {
                    message: "working product coefficients must be positive".into(),
                });
            }
            let reserved = |prefix: char| {
                species.starts_with(prefix)
                    && species[1..].chars().all(|c| c.is_ascii_digit())
                    && species.len() > 1
            };
            if reserved('e') || reserved('d') || reserved('f') || reserved('o') {
                return Err(SynthesisError::InvalidSpecification {
                    message: format!(
                        "working product species `{species}` collides with the module's reserved names"
                    ),
                });
            }
        }
        let rates = RateSchedule::new(self.base_rate, self.gamma)?;
        let crn = build_reactions(&self.outcomes, &rates, &self.extra_working_products)?;
        Ok(StochasticModule {
            crn,
            outcomes: self.outcomes,
            rates,
            input_total: self.input_total,
            food: self.food,
            decision_threshold: self.decision_threshold,
        })
    }
}

fn build_reactions(
    outcomes: &[String],
    rates: &RateSchedule,
    extra_working_products: &[(usize, String, u32)],
) -> Result<Crn, SynthesisError> {
    let n = outcomes.len();
    let mut b = CrnBuilder::new();
    let e: Vec<_> = (1..=n).map(|i| b.species(format!("e{i}"))).collect();
    let d: Vec<_> = (1..=n).map(|i| b.species(format!("d{i}"))).collect();
    let f: Vec<_> = (1..=n).map(|i| b.species(format!("f{i}"))).collect();
    let o: Vec<_> = (1..=n).map(|i| b.species(format!("o{i}"))).collect();

    for i in 0..n {
        // Initializing: e_i -> d_i
        b.reaction()
            .reactant(e[i], 1)
            .product(d[i], 1)
            .rate(rates.initializing())
            .label("initializing")
            .add()?;
        // Reinforcing: d_i + e_i -> 2 d_i
        b.reaction()
            .reactant(d[i], 1)
            .reactant(e[i], 1)
            .product(d[i], 2)
            .rate(rates.reinforcing())
            .label("reinforcing")
            .add()?;
        // Stabilizing: d_i + e_j -> d_i for j != i
        for (j, &e_j) in e.iter().enumerate() {
            if j == i {
                continue;
            }
            b.reaction()
                .reactant(d[i], 1)
                .reactant(e_j, 1)
                .product(d[i], 1)
                .rate(rates.stabilizing())
                .label("stabilizing")
                .add()?;
        }
        // Working: d_i + f_i -> d_i + o_i (+ any extra output types in the
        // requested proportions).
        let mut working = b
            .reaction()
            .reactant(d[i], 1)
            .reactant(f[i], 1)
            .product(d[i], 1)
            .product(o[i], 1);
        for (outcome, species, coefficient) in extra_working_products {
            if *outcome == i {
                working = working.product_named(species, *coefficient);
            }
        }
        working.rate(rates.working()).label("working").add()?;
    }
    // Purifying: d_i + d_j -> ∅ for i < j
    for i in 0..n {
        for j in (i + 1)..n {
            b.reaction()
                .reactant(d[i], 1)
                .reactant(d[j], 1)
                .rate(rates.purifying())
                .label("purifying")
                .add()?;
        }
    }
    Ok(b.build()?)
}

/// A synthesized winner-take-all module (Section 2.1 of the paper).
///
/// For each outcome the module contains an input species `e_i`, a catalyst
/// `d_i`, a food species `f_i` and an output species `o_i`, wired by the five
/// reaction categories. The outcome distribution is programmed by the
/// initial quantities of the `e_i`; see
/// [`StochasticModule::initial_state`].
///
/// See the [crate-level example](crate) for end-to-end usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StochasticModule {
    crn: Crn,
    outcomes: Vec<String>,
    rates: RateSchedule,
    input_total: u64,
    food: u64,
    decision_threshold: u64,
}

impl StochasticModule {
    /// Starts building a module.
    pub fn builder() -> StochasticModuleBuilder {
        StochasticModuleBuilder::default()
    }

    /// Returns the synthesized reaction network.
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// Returns the outcome names, in order.
    pub fn outcomes(&self) -> &[String] {
        &self.outcomes
    }

    /// Returns the number of outcomes.
    pub fn outcome_count(&self) -> usize {
        self.outcomes.len()
    }

    /// Returns the rate schedule used by the module.
    pub fn rates(&self) -> &RateSchedule {
        &self.rates
    }

    /// Returns the decision threshold (working firings per outcome).
    pub fn decision_threshold(&self) -> u64 {
        self.decision_threshold
    }

    /// Returns the total number of input molecules used by
    /// [`StochasticModule::initial_state`].
    pub fn input_total(&self) -> u64 {
        self.input_total
    }

    /// Returns the name of the input species for outcome `i` (`"e1"`,
    /// `"e2"`, …).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input_species(&self, i: usize) -> String {
        assert!(i < self.outcomes.len(), "outcome index out of range");
        format!("e{}", i + 1)
    }

    /// Returns the name of the output species for outcome `i` (`"o1"`, …).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn output_species(&self, i: usize) -> String {
        assert!(i < self.outcomes.len(), "outcome index out of range");
        format!("o{}", i + 1)
    }

    /// Returns the name of the catalyst species for outcome `i` (`"d1"`, …).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn catalyst_species(&self, i: usize) -> String {
        assert!(i < self.outcomes.len(), "outcome index out of range");
        format!("d{}", i + 1)
    }

    /// Builds the initial state programming the module for `distribution`:
    /// input counts `E_i = p_i · input_total` (largest-remainder rounded),
    /// food counts at the configured level, everything else zero.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidSpecification`] if the distribution's
    /// length does not match the number of outcomes.
    pub fn initial_state(
        &self,
        distribution: &TargetDistribution,
    ) -> Result<State, SynthesisError> {
        if distribution.len() != self.outcomes.len() {
            return Err(SynthesisError::InvalidSpecification {
                message: format!(
                    "distribution has {} outcomes but the module has {}",
                    distribution.len(),
                    self.outcomes.len()
                ),
            });
        }
        self.initial_state_from_counts(&distribution.to_counts(self.input_total))
    }

    /// Builds the initial state from explicit input counts `E_i`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidSpecification`] if the number of
    /// counts does not match the number of outcomes or all counts are zero.
    pub fn initial_state_from_counts(&self, counts: &[u64]) -> Result<State, SynthesisError> {
        if counts.len() != self.outcomes.len() {
            return Err(SynthesisError::InvalidSpecification {
                message: format!(
                    "{} input counts given but the module has {} outcomes",
                    counts.len(),
                    self.outcomes.len()
                ),
            });
        }
        if counts.iter().all(|&c| c == 0) {
            return Err(SynthesisError::InvalidSpecification {
                message: "at least one input count must be positive".into(),
            });
        }
        let mut state = self.crn.zero_state();
        for (i, &count) in counts.iter().enumerate() {
            state.set(self.crn.require_species(&self.input_species(i))?, count);
            state.set(self.crn.require_species(&format!("f{}", i + 1))?, self.food);
        }
        Ok(state)
    }

    /// Returns the implied outcome probabilities for explicit input counts:
    /// `p_i = E_i·k_i / Σ_j E_j·k_j` (all `k_i` are equal here, so this is a
    /// simple normalisation).
    pub fn programmed_probabilities(&self, counts: &[u64]) -> Vec<f64> {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return vec![0.0; counts.len()];
        }
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Returns a classifier mapping trajectories to outcome names based on
    /// the output species reaching the decision threshold.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Crn`] only if the module's own species are
    /// missing, which cannot happen for a built module.
    pub fn classifier(&self) -> Result<SpeciesThresholdClassifier, SynthesisError> {
        let mut classifier = SpeciesThresholdClassifier::new();
        for (i, outcome) in self.outcomes.iter().enumerate() {
            classifier = classifier.rule_named(
                &self.crn,
                &self.output_species(i),
                self.decision_threshold,
                outcome.as_str(),
            )?;
        }
        Ok(classifier)
    }

    /// Returns the stop condition "any output reached the decision
    /// threshold".
    pub fn stop_condition(&self) -> StopCondition {
        let conditions = (0..self.outcomes.len())
            .map(|i| {
                StopCondition::species_at_least(
                    self.crn
                        .species_id(&self.output_species(i))
                        .expect("module species exist by construction"),
                    self.decision_threshold,
                )
            })
            .collect();
        StopCondition::any_of(conditions)
    }

    /// Returns per-trajectory simulation options suited to the module: stop
    /// at the first decided outcome, with a generous event-limit safety net.
    pub fn simulation_options(&self) -> SimulationOptions {
        SimulationOptions::new()
            .stop(self.stop_condition())
            .max_events(50_000_000)
    }

    /// Returns strict population bounds that provably contain the module's
    /// reachable state space for the given input counts.
    ///
    /// Input species only ever lose molecules, catalysts are created one per
    /// consumed input, food converts one-for-one into output (which is
    /// absorbing at the decision threshold), and extra working products grow
    /// by at most their coefficient per working firing — so a single cap of
    /// `max(Σ counts, food, threshold · max product coefficient)` covers
    /// every species.
    pub fn exact_bounds(&self, counts: &[u64]) -> PopulationBounds {
        let total: u64 = counts.iter().sum();
        let max_product_coefficient = self
            .crn
            .reactions()
            .iter()
            .flat_map(|r| r.products())
            .map(|t| u64::from(t.coefficient))
            .max()
            .unwrap_or(1);
        let cap = total
            .max(self.food)
            .max(self.decision_threshold * max_product_coefficient);
        PopulationBounds::strict(cap)
    }

    /// Computes the module's **exact** outcome distribution from the
    /// chemical master equation: the winner-take-all race is a first-passage
    /// problem (the first output species to reach the decision threshold
    /// absorbs the trajectory), so the outcome probabilities are solvable to
    /// machine precision — no Monte-Carlo noise floor, however small the
    /// deviation programmed by a finite γ.
    ///
    /// Returns the full analysis: probabilities per outcome plus undecided
    /// and escaped mass. See
    /// [`exact_outcome_distribution`](StochasticModule::exact_outcome_distribution)
    /// for the plain probability vector.
    ///
    /// # Errors
    ///
    /// Propagates state construction errors and
    /// [`SynthesisError::Cme`] for bound violations or an exhausted state
    /// budget.
    pub fn exact_outcome_analysis(
        &self,
        counts: &[u64],
        bounds: &PopulationBounds,
    ) -> Result<OutcomeDistribution, SynthesisError> {
        let initial = self.initial_state_from_counts(counts)?;
        let mut passage = FirstPassage::new(&self.crn);
        for (i, outcome) in self.outcomes.iter().enumerate() {
            passage = passage.outcome_species_at_least(
                outcome.as_str(),
                &self.output_species(i),
                self.decision_threshold,
            )?;
        }
        Ok(passage.solve(&initial, bounds)?)
    }

    /// Computes the exact outcome probabilities (one per outcome, in outcome
    /// order) for explicit input counts; a thin wrapper around
    /// [`exact_outcome_analysis`](StochasticModule::exact_outcome_analysis)
    /// using [`exact_bounds`](StochasticModule::exact_bounds).
    ///
    /// # Errors
    ///
    /// Same as [`exact_outcome_analysis`](StochasticModule::exact_outcome_analysis).
    pub fn exact_outcome_distribution(&self, counts: &[u64]) -> Result<Vec<f64>, SynthesisError> {
        Ok(self
            .exact_outcome_analysis(counts, &self.exact_bounds(counts))?
            .probabilities()
            .to_vec())
    }

    /// Runs a single *error-analysis* trial (the experiment behind the
    /// paper's Figure 3).
    ///
    /// The trial first simulates exactly one reaction event. Because every
    /// non-initializing reaction requires a catalyst `d_i` and the initial
    /// state contains none, that first event is always an initializing
    /// reaction; the catalyst it produces identifies the outcome "chosen" at
    /// the outset. The trial then continues until some output reaches the
    /// decision threshold and reports whether the final outcome *differs*
    /// from the initial choice (an error, in the paper's terminology).
    ///
    /// Returns `(initial_choice, final_outcome, is_error)`.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures ([`SynthesisError::InvalidSpecification`]
    /// wraps them with context).
    pub fn error_trial(
        &self,
        initial: &State,
        seed: u64,
    ) -> Result<(usize, usize, bool), SynthesisError> {
        let first = Simulation::new(&self.crn, gillespie::DirectMethod::new())
            .options(
                SimulationOptions::new()
                    .seed(seed)
                    .stop(StopCondition::events(1))
                    .max_events(10),
            )
            .run(initial)
            .map_err(|err| SynthesisError::InvalidSpecification {
                message: format!("error trial failed during the first event: {err}"),
            })?;
        let chosen = (0..self.outcomes.len())
            .find(|&i| {
                first
                    .final_state
                    .try_count(
                        self.crn
                            .species_id(&self.catalyst_species(i))
                            .expect("catalyst exists"),
                    )
                    .unwrap_or(0)
                    > 0
            })
            .ok_or_else(|| SynthesisError::InvalidSpecification {
                message: "the first reaction event did not produce a catalyst".into(),
            })?;

        let rest = Simulation::new(&self.crn, gillespie::DirectMethod::new())
            .options(
                SimulationOptions::new()
                    .seed(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
                    .stop(self.stop_condition())
                    .max_events(50_000_000),
            )
            .run(&first.final_state)
            .map_err(|err| SynthesisError::InvalidSpecification {
                message: format!("error trial failed during the decision phase: {err}"),
            })?;
        let winner = (0..self.outcomes.len())
            .find(|&i| {
                rest.final_state
                    .try_count(
                        self.crn
                            .species_id(&self.output_species(i))
                            .expect("output exists"),
                    )
                    .unwrap_or(0)
                    >= self.decision_threshold
            })
            .ok_or_else(|| SynthesisError::InvalidSpecification {
                message: "no outcome reached the decision threshold".into(),
            })?;
        Ok((chosen, winner, chosen != winner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillespie::{Ensemble, EnsembleOptions};

    fn three_outcome_module(gamma: f64) -> StochasticModule {
        StochasticModule::builder()
            .outcomes(["T1", "T2", "T3"])
            .gamma(gamma)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_the_expected_reaction_inventory() {
        // For n outcomes: n initializing + n reinforcing + n(n-1) stabilizing
        // + n(n-1)/2 purifying + n working reactions.
        let module = three_outcome_module(1000.0);
        let crn = module.crn();
        assert_eq!(crn.species_len(), 12); // 4 species per outcome
        assert_eq!(crn.reactions().len(), 3 + 3 + 6 + 3 + 3);
        let count_label = |label: &str| {
            crn.reactions()
                .iter()
                .filter(|r| r.label() == Some(label))
                .count()
        };
        assert_eq!(count_label("initializing"), 3);
        assert_eq!(count_label("reinforcing"), 3);
        assert_eq!(count_label("stabilizing"), 6);
        assert_eq!(count_label("purifying"), 3);
        assert_eq!(count_label("working"), 3);
    }

    #[test]
    fn rate_hierarchy_matches_equation_1() {
        let module = three_outcome_module(100.0);
        for r in module.crn().reactions() {
            let expected = match r.label().unwrap() {
                "initializing" | "working" => 1.0,
                "reinforcing" | "stabilizing" => 100.0,
                "purifying" => 10_000.0,
                other => panic!("unexpected label {other}"),
            };
            assert_eq!(r.rate(), expected, "reaction {r}");
        }
        assert_eq!(module.crn().summary().rate_span, module.rates().span());
    }

    #[test]
    fn initial_state_programs_the_distribution() {
        let module = three_outcome_module(1000.0);
        let dist = TargetDistribution::new(vec![0.3, 0.4, 0.3]).unwrap();
        let state = module.initial_state(&dist).unwrap();
        let crn = module.crn();
        assert_eq!(state.count(crn.species_id("e1").unwrap()), 30);
        assert_eq!(state.count(crn.species_id("e2").unwrap()), 40);
        assert_eq!(state.count(crn.species_id("e3").unwrap()), 30);
        assert_eq!(state.count(crn.species_id("f1").unwrap()), 100);
        assert_eq!(state.count(crn.species_id("d1").unwrap()), 0);
        assert_eq!(state.count(crn.species_id("o1").unwrap()), 0);
    }

    #[test]
    fn wrong_distribution_length_is_rejected() {
        let module = three_outcome_module(1000.0);
        let dist = TargetDistribution::new(vec![0.5, 0.5]).unwrap();
        assert!(module.initial_state(&dist).is_err());
        assert!(module.initial_state_from_counts(&[10, 20]).is_err());
        assert!(module.initial_state_from_counts(&[0, 0, 0]).is_err());
    }

    #[test]
    fn builder_validates_configuration() {
        assert!(StochasticModule::builder().build().is_err());
        assert!(StochasticModule::builder()
            .outcomes(["a", "a"])
            .build()
            .is_err());
        assert!(StochasticModule::builder()
            .outcomes(["a"])
            .gamma(0.1)
            .build()
            .is_err());
        assert!(StochasticModule::builder()
            .outcomes(["a"])
            .input_total(0)
            .build()
            .is_err());
        assert!(StochasticModule::builder()
            .outcomes(["a"])
            .decision_threshold(0)
            .build()
            .is_err());
        assert!(StochasticModule::builder()
            .outcomes(["a"])
            .food(5)
            .decision_threshold(10)
            .build()
            .is_err());
    }

    #[test]
    fn programmed_probabilities_normalise_counts() {
        let module = three_outcome_module(1000.0);
        assert_eq!(
            module.programmed_probabilities(&[30, 40, 30]),
            vec![0.3, 0.4, 0.3]
        );
        assert_eq!(
            module.programmed_probabilities(&[0, 0, 0]),
            vec![0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn example_1_distribution_is_reproduced_by_simulation() {
        // The paper's Example 1: p = {0.3, 0.4, 0.3}. With γ = 1000 the
        // empirical distribution should match within Monte-Carlo noise.
        let module = three_outcome_module(1000.0);
        let dist = TargetDistribution::new(vec![0.3, 0.4, 0.3]).unwrap();
        let initial = module.initial_state(&dist).unwrap();
        let report = Ensemble::new(module.crn(), initial, module.classifier().unwrap())
            .options(
                EnsembleOptions::new()
                    .trials(600)
                    .master_seed(2024)
                    .simulation(module.simulation_options()),
            )
            .run()
            .unwrap();
        assert_eq!(report.undecided, 0);
        assert!((report.probability("T1") - 0.3).abs() < 0.07);
        assert!((report.probability("T2") - 0.4).abs() < 0.07);
        assert!((report.probability("T3") - 0.3).abs() < 0.07);
    }

    #[test]
    fn error_trial_reports_initial_choice_and_winner() {
        let module = three_outcome_module(1000.0);
        let dist = TargetDistribution::uniform(3).unwrap();
        let initial = module.initial_state(&dist).unwrap();
        let mut errors = 0;
        let trials = 30;
        for seed in 0..trials {
            let (chosen, winner, is_error) = module.error_trial(&initial, seed).unwrap();
            assert!(chosen < 3 && winner < 3);
            assert_eq!(is_error, chosen != winner);
            if is_error {
                errors += 1;
            }
        }
        // With γ = 1000 errors should be rare.
        assert!(errors <= 2, "unexpectedly many errors: {errors}/{trials}");
    }

    #[test]
    fn low_gamma_produces_more_errors_than_high_gamma() {
        let dist = TargetDistribution::uniform(3).unwrap();
        let error_count = |gamma: f64| {
            let module = three_outcome_module(gamma);
            let initial = module.initial_state(&dist).unwrap();
            (0..60)
                .filter(|&seed| module.error_trial(&initial, seed).unwrap().2)
                .count()
        };
        let low = error_count(1.0);
        let high = error_count(10_000.0);
        assert!(
            low > high,
            "expected more errors at γ=1 ({low}) than at γ=10000 ({high})"
        );
    }

    #[test]
    fn species_name_accessors() {
        let module = three_outcome_module(1000.0);
        assert_eq!(module.input_species(0), "e1");
        assert_eq!(module.output_species(2), "o3");
        assert_eq!(module.catalyst_species(1), "d2");
        assert_eq!(module.outcome_count(), 3);
        assert_eq!(module.outcomes()[1], "T2");
        assert_eq!(module.decision_threshold(), 10);
        assert_eq!(module.input_total(), 100);
    }

    #[test]
    fn extra_working_products_appear_in_the_working_reactions() {
        let module = StochasticModule::builder()
            .outcomes(["T1", "T2"])
            .gamma(1_000.0)
            .working_product(0, "drug", 3)
            .working_product(1, "marker", 1)
            .build()
            .unwrap();
        let crn = module.crn();
        let drug = crn.species_id("drug").unwrap();
        let marker = crn.species_id("marker").unwrap();
        let working: Vec<_> = crn
            .reactions()
            .iter()
            .filter(|r| r.label() == Some("working"))
            .collect();
        assert_eq!(working.len(), 2);
        assert_eq!(working[0].product_coefficient(drug), 3);
        assert_eq!(working[0].product_coefficient(marker), 0);
        assert_eq!(working[1].product_coefficient(marker), 1);
    }

    #[test]
    fn extra_working_products_are_produced_in_proportion() {
        // Every working firing of outcome T1 produces one o1 and three drug
        // molecules, so after the decision threshold is reached the drug
        // count is three times the o1 count.
        let module = StochasticModule::builder()
            .outcomes(["T1"])
            .gamma(1_000.0)
            .working_product(0, "drug", 3)
            .build()
            .unwrap();
        let initial = module.initial_state_from_counts(&[50]).unwrap();
        let result = Simulation::new(module.crn(), gillespie::DirectMethod::new())
            .options(module.simulation_options().seed(4))
            .run(&initial)
            .unwrap();
        let o1 = result
            .final_state
            .count(module.crn().species_id("o1").unwrap());
        let drug = result
            .final_state
            .count(module.crn().species_id("drug").unwrap());
        assert_eq!(o1, module.decision_threshold());
        assert_eq!(drug, 3 * o1);
    }

    #[test]
    fn invalid_working_products_are_rejected() {
        assert!(StochasticModule::builder()
            .outcomes(["a"])
            .working_product(3, "x", 1)
            .build()
            .is_err());
        assert!(StochasticModule::builder()
            .outcomes(["a"])
            .working_product(0, "x", 0)
            .build()
            .is_err());
        assert!(StochasticModule::builder()
            .outcomes(["a", "b"])
            .working_product(0, "e2", 1)
            .build()
            .is_err());
    }

    #[test]
    fn exact_outcome_distribution_recovers_programmed_probabilities() {
        // A scaled-down two-outcome module: with γ = 10⁶ the exact outcome
        // distribution deviates from the programmed {0.25, 0.75} by O(1/γ),
        // far below any Monte-Carlo resolution but visible to the CME.
        let module = StochasticModule::builder()
            .outcomes(["a", "b"])
            .gamma(1e6)
            .input_total(4)
            .food(2)
            .decision_threshold(2)
            .build()
            .unwrap();
        let exact = module.exact_outcome_distribution(&[1, 3]).unwrap();
        assert!((exact[0] - 0.25).abs() < 1e-4, "p(a) = {}", exact[0]);
        assert!((exact[1] - 0.75).abs() < 1e-4, "p(b) = {}", exact[1]);
        // Not *every* trajectory decides: with probability O(1/γ²-ish) the
        // catalysts annihilate after the inputs run dry and no output ever
        // reaches the threshold. The CME quantifies that exactly.
        let undecided = 1.0 - exact.iter().sum::<f64>();
        assert!(
            (0.0..1e-6).contains(&undecided),
            "undecided mass {undecided:.3e}"
        );
    }

    #[test]
    fn exact_error_shrinks_as_gamma_grows() {
        // The exact-CME version of the paper's Figure 3: the deviation from
        // the programmed distribution falls monotonically in γ — measured
        // here without a single simulated trajectory.
        let deviation = |gamma: f64| {
            let module = StochasticModule::builder()
                .outcomes(["a", "b"])
                .gamma(gamma)
                .input_total(4)
                .food(2)
                .decision_threshold(2)
                .build()
                .unwrap();
            let exact = module.exact_outcome_distribution(&[1, 3]).unwrap();
            (exact[0] - 0.25).abs()
        };
        let at_10 = deviation(10.0);
        let at_1000 = deviation(1000.0);
        let at_100000 = deviation(100_000.0);
        assert!(
            at_10 > at_1000 && at_1000 > at_100000,
            "γ=10: {at_10:.3e}, γ=1000: {at_1000:.3e}, γ=100000: {at_100000:.3e}"
        );
        assert!(at_10 > 1e-3, "γ=10 error should be visible: {at_10:.3e}");
        assert!(
            at_100000 < 1e-4,
            "γ=100000 error should be tiny: {at_100000:.3e}"
        );
    }

    #[test]
    fn exact_analysis_reports_full_accounting() {
        let module = StochasticModule::builder()
            .outcomes(["a", "b"])
            .gamma(1e4)
            .input_total(3)
            .food(2)
            .decision_threshold(2)
            .build()
            .unwrap();
        let analysis = module
            .exact_outcome_analysis(&[2, 1], &module.exact_bounds(&[2, 1]))
            .unwrap();
        assert_eq!(analysis.names(), module.outcomes());
        // The module's genuine failure mode, exactly quantified: both
        // catalysts form, purify each other away after the inputs are gone,
        // and no output reaches the threshold. Invisible to 10⁴-trial
        // ensembles; plain to the CME.
        assert!(
            analysis.undecided() > 0.0 && analysis.undecided() < 1e-3,
            "undecided {:.3e}",
            analysis.undecided()
        );
        let total: f64 = analysis.probabilities().iter().sum();
        assert!(
            (total + analysis.undecided() - 1.0).abs() < 1e-10,
            "mass accounting: {total} + {}",
            analysis.undecided()
        );
        assert!(analysis.escaped() <= 1e-12);
        assert!(analysis.states() > 10);
        // The DAG structure (strictly decreasing 2Σe + Σd + Σf) keeps the
        // sweep count at the chain depth, not the state count.
        assert!(analysis.sweeps() < 40, "sweeps {}", analysis.sweeps());
    }

    #[test]
    fn exact_bounds_are_tight_enough_to_enumerate() {
        let module = StochasticModule::builder()
            .outcomes(["T1", "T2", "T3"])
            .gamma(1000.0)
            .input_total(6)
            .food(2)
            .decision_threshold(2)
            .build()
            .unwrap();
        let bounds = module.exact_bounds(&[2, 2, 2]);
        assert_eq!(bounds.cap_for("e1"), 6);
        let analysis = module.exact_outcome_analysis(&[2, 2, 2], &bounds).unwrap();
        // Symmetric inputs: the three outcomes are exactly exchangeable, so
        // their probabilities agree to machine precision (each is one third
        // of the decided mass).
        let decided: f64 = analysis.probabilities().iter().sum();
        for &p in analysis.probabilities() {
            assert!((p - decided / 3.0).abs() < 1e-12, "p = {p}");
        }
        assert!((decided + analysis.undecided() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn single_outcome_module_always_decides_that_outcome() {
        let module = StochasticModule::builder()
            .outcomes(["only"])
            .build()
            .unwrap();
        assert_eq!(module.crn().reactions().len(), 3); // init + reinforce + work
        let initial = module.initial_state_from_counts(&[100]).unwrap();
        let report = Ensemble::new(module.crn(), initial, module.classifier().unwrap())
            .options(
                EnsembleOptions::new()
                    .trials(20)
                    .master_seed(1)
                    .simulation(module.simulation_options()),
            )
            .run()
            .unwrap();
        assert_eq!(report.probability("only"), 1.0);
    }
}
