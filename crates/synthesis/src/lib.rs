//! Synthesis of stochastic behaviour in biochemical systems.
//!
//! This crate is the core contribution of the workspace: a Rust
//! implementation of the synthesis methodology of *"Synthesizing
//! Stochasticity in Biochemical Systems"* (Fett, Bruck & Riedel, DAC 2007).
//! Given a target probability distribution over discrete outcomes —
//! optionally a programmable function of input molecular quantities — it
//! constructs a chemical reaction network that realises that distribution
//! under exact stochastic (Gillespie) kinetics.
//!
//! The scheme is modular:
//!
//! * [`StochasticModule`] — the winner-take-all core. Five categories of
//!   reactions (initializing, reinforcing, stabilizing, purifying, working)
//!   arranged in a rate hierarchy parameterised by the separation factor γ.
//!   The first initializing reaction to fire selects the outcome, and the
//!   outcome probabilities are programmed by the initial quantities of the
//!   input species.
//! * [`modules`] — the deterministic function library: [`modules::linear`],
//!   [`modules::exponentiation`], [`modules::logarithm`], [`modules::power`]
//!   and [`modules::isolation`] compute functions of molecular counts with
//!   reactions alone.
//! * [`Preprocessor`] and [`glue`] — preprocessing reactions that make the
//!   outcome distribution an affine function of input quantities (the
//!   paper's Example 2), plus fan-out and assimilation reactions that wire
//!   deterministic modules into the stochastic module.
//! * [`controller`] — the inverse direction: networks that *control*
//!   stochasticity rather than compute with it. Antithetic integral
//!   feedback ([`AntitheticController`]) pins a plant species' stationary
//!   mean to an exact set point, and [`stationary_morph`] steers a
//!   stationary law toward a mixture target; both are verified closed-loop
//!   with the exact model checker in [`cme`].
//! * [`LogLinearSynthesizer`] — the end-to-end flow of the paper's Section 3:
//!   synthesize a network whose outcome probability follows
//!   `a + b·log2(X) + c·X` (in percent) for an input quantity `X`, as used
//!   for the lambda-phage lysis/lysogeny response.
//!
//! # Example: a fixed distribution (the paper's Example 1)
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gillespie::{Ensemble, EnsembleOptions};
//! use synthesis::{StochasticModule, TargetDistribution};
//!
//! let module = StochasticModule::builder()
//!     .outcomes(["T1", "T2", "T3"])
//!     .gamma(1000.0)
//!     .build()?;
//! let distribution = TargetDistribution::new(vec![0.3, 0.4, 0.3])?;
//! let initial = module.initial_state(&distribution)?;
//!
//! let report = Ensemble::new(module.crn(), initial, module.classifier()?)
//!     .options(
//!         EnsembleOptions::new()
//!             .trials(400)
//!             .master_seed(7)
//!             .simulation(module.simulation_options()),
//!     )
//!     .run()?;
//! assert!((report.probability("T2") - 0.4).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compose;
pub mod controller;
mod distribution;
mod error;
pub mod glue;
pub mod modules;
mod preprocess;
mod rates;
mod stochastic;
mod synthesizer;

pub use compose::Composer;
pub use controller::{stationary_morph, AntitheticController, ClosedLoop, MorphedSystem};
pub use distribution::TargetDistribution;
pub use error::SynthesisError;
pub use preprocess::{AffineTerm, Preprocessor};
pub use rates::{RateBand, RateSchedule};
pub use stochastic::{StochasticModule, StochasticModuleBuilder};
pub use synthesizer::{LogLinearSynthesizer, SynthesizedResponse};
