//! Target probability distributions over discrete outcomes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::SynthesisError;

/// A normalised probability distribution over `n` discrete outcomes.
///
/// The stochastic module programs outcome probabilities through the initial
/// quantities of its input species: `p_i = E_i·k_i / Σ_j E_j·k_j`. With
/// equal rates this reduces to choosing the `E_i` in the ratio of the target
/// probabilities, which is what [`TargetDistribution::to_counts`] computes.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), synthesis::SynthesisError> {
/// let dist = synthesis::TargetDistribution::new(vec![0.3, 0.4, 0.3])?;
/// assert_eq!(dist.to_counts(100), vec![30, 40, 30]);
/// assert_eq!(dist.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetDistribution {
    probabilities: Vec<f64>,
}

impl TargetDistribution {
    /// Creates a distribution from probabilities or unnormalised weights
    /// (they are normalised to sum to one).
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidDistribution`] if the vector is
    /// empty, contains a negative or non-finite weight, or sums to zero.
    pub fn new(weights: Vec<f64>) -> Result<Self, SynthesisError> {
        if weights.is_empty() {
            return Err(SynthesisError::InvalidDistribution {
                message: "distribution must have at least one outcome".into(),
            });
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(SynthesisError::InvalidDistribution {
                message: "weights must be finite and non-negative".into(),
            });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(SynthesisError::InvalidDistribution {
                message: "weights must not all be zero".into(),
            });
        }
        Ok(TargetDistribution {
            probabilities: weights.iter().map(|w| w / total).collect(),
        })
    }

    /// Creates the uniform distribution over `n` outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidDistribution`] if `n` is zero.
    pub fn uniform(n: usize) -> Result<Self, SynthesisError> {
        TargetDistribution::new(vec![1.0; n])
    }

    /// Returns the number of outcomes.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// Returns `true` if the distribution has no outcomes (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.probabilities.is_empty()
    }

    /// Returns the normalised probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Returns the probability of outcome `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn probability(&self, i: usize) -> f64 {
        self.probabilities[i]
    }

    /// Converts the distribution into integer molecule counts summing to
    /// `total`, using largest-remainder rounding so the counts are as close
    /// as possible to `p_i · total`.
    pub fn to_counts(&self, total: u64) -> Vec<u64> {
        let exact: Vec<f64> = self
            .probabilities
            .iter()
            .map(|p| p * total as f64)
            .collect();
        let mut counts: Vec<u64> = exact.iter().map(|e| e.floor() as u64).collect();
        let assigned: u64 = counts.iter().sum();
        let mut remainder: Vec<(usize, f64)> = exact
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e - e.floor()))
            .collect();
        remainder.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut leftover = total.saturating_sub(assigned);
        for (i, _) in remainder {
            if leftover == 0 {
                break;
            }
            counts[i] += 1;
            leftover -= 1;
        }
        counts
    }

    /// Computes the total-variation distance to another distribution of the
    /// same length: `½ Σ |p_i − q_i|`. Useful for comparing an empirical
    /// Monte-Carlo distribution against the target.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidSpecification`] if the lengths
    /// differ.
    pub fn total_variation(&self, other: &TargetDistribution) -> Result<f64, SynthesisError> {
        if self.len() != other.len() {
            return Err(SynthesisError::InvalidSpecification {
                message: format!(
                    "cannot compare distributions of length {} and {}",
                    self.len(),
                    other.len()
                ),
            });
        }
        Ok(self
            .probabilities
            .iter()
            .zip(&other.probabilities)
            .map(|(p, q)| (p - q).abs())
            .sum::<f64>()
            / 2.0)
    }
}

impl fmt::Display for TargetDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, p) in self.probabilities.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "p{} = {:.4}", i + 1, p)?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_weights() {
        let dist = TargetDistribution::new(vec![3.0, 4.0, 3.0]).unwrap();
        assert_eq!(dist.probabilities(), &[0.3, 0.4, 0.3]);
        assert_eq!(dist.probability(1), 0.4);
        assert!(!dist.is_empty());
    }

    #[test]
    fn example_1_counts() {
        // The paper's Example 1: p = {0.3, 0.4, 0.3} with 100 molecules total
        // gives E = (30, 40, 30).
        let dist = TargetDistribution::new(vec![0.3, 0.4, 0.3]).unwrap();
        assert_eq!(dist.to_counts(100), vec![30, 40, 30]);
    }

    #[test]
    fn largest_remainder_rounding_sums_to_total() {
        let dist = TargetDistribution::new(vec![1.0, 1.0, 1.0]).unwrap();
        for total in [1u64, 2, 7, 100, 101] {
            let counts = dist.to_counts(total);
            assert_eq!(counts.iter().sum::<u64>(), total, "total {total}");
        }
        // 1/3 each over 7 molecules: 3/2/2 in some order with the largest
        // remainders served first.
        let counts = dist.to_counts(7);
        assert_eq!(counts.iter().sum::<u64>(), 7);
        assert!(counts.iter().all(|&c| c == 2 || c == 3));
    }

    #[test]
    fn uniform_distribution() {
        let dist = TargetDistribution::uniform(4).unwrap();
        assert_eq!(dist.probabilities(), &[0.25, 0.25, 0.25, 0.25]);
        assert!(TargetDistribution::uniform(0).is_err());
    }

    #[test]
    fn invalid_distributions_are_rejected() {
        assert!(TargetDistribution::new(vec![]).is_err());
        assert!(TargetDistribution::new(vec![0.5, -0.1]).is_err());
        assert!(TargetDistribution::new(vec![0.0, 0.0]).is_err());
        assert!(TargetDistribution::new(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn total_variation_distance() {
        let p = TargetDistribution::new(vec![0.3, 0.7]).unwrap();
        let q = TargetDistribution::new(vec![0.5, 0.5]).unwrap();
        assert!((p.total_variation(&q).unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(p.total_variation(&p).unwrap(), 0.0);
        let r = TargetDistribution::uniform(3).unwrap();
        assert!(p.total_variation(&r).is_err());
    }

    #[test]
    fn display_lists_probabilities() {
        let dist = TargetDistribution::new(vec![0.3, 0.7]).unwrap();
        let text = dist.to_string();
        assert!(text.contains("p1 = 0.3000"));
        assert!(text.contains("p2 = 0.7000"));
    }
}
