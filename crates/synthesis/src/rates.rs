//! Rate bands and the γ-parameterised rate schedule.
//!
//! The correctness of every synthesized network rests on *rate separation*:
//! reactions belonging to faster categories must outpace slower ones by a
//! large factor so that a decision taken by a slow reaction is locked in by
//! the fast ones before a competing slow reaction can fire. The paper
//! quantifies this with a single separation factor γ (its Equation 1):
//!
//! ```text
//! γ·k_init = k_reinforce = k_stabilize = k_purify / γ = γ·k_work
//! ```
//!
//! [`RateSchedule`] captures exactly that relation for the stochastic
//! module, while [`RateBand`] provides a more general ladder of relative
//! speeds ("slowest" … "fastest") used by the deterministic function modules
//! of Section 2.2.

use serde::{Deserialize, Serialize};

use crate::error::SynthesisError;

/// A relative speed class for reactions within one module.
///
/// Adjacent bands are separated by a configurable multiplicative factor (the
/// module's *band separation*); see [`RateBand::rate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RateBand {
    /// The slowest band (e.g. the outer-loop clock of the power module).
    Slowest,
    /// Slower than [`RateBand::Slow`].
    Slower,
    /// The paper's "slow" reactions (module clocks).
    Slow,
    /// Intermediate reactions (state restoration such as `x' -> x`).
    Medium,
    /// Fast reactions (loop-type degradation).
    Fast,
    /// Faster reactions (the work done within one loop iteration).
    Faster,
    /// The fastest band (inner-loop bookkeeping that must win every race).
    Fastest,
}

impl RateBand {
    /// All bands, from slowest to fastest.
    pub const ALL: [RateBand; 7] = [
        RateBand::Slowest,
        RateBand::Slower,
        RateBand::Slow,
        RateBand::Medium,
        RateBand::Fast,
        RateBand::Faster,
        RateBand::Fastest,
    ];

    /// The integer level of the band: `Slowest` is 0, `Fastest` is 6.
    pub fn level(self) -> u32 {
        match self {
            RateBand::Slowest => 0,
            RateBand::Slower => 1,
            RateBand::Slow => 2,
            RateBand::Medium => 3,
            RateBand::Fast => 4,
            RateBand::Faster => 5,
            RateBand::Fastest => 6,
        }
    }

    /// Returns the absolute rate of this band given a `base` rate for the
    /// `Slow` band and a multiplicative `separation` between adjacent bands.
    ///
    /// Bands below `Slow` are slower than `base` by the same factor, so the
    /// full ladder spans `separation⁻² · base` to `separation⁴ · base`.
    pub fn rate(self, base: f64, separation: f64) -> f64 {
        base * separation.powi(self.level() as i32 - RateBand::Slow.level() as i32)
    }
}

/// The γ-parameterised rate schedule of the stochastic module (Equation 1 of
/// the paper).
///
/// With a base rate `k` (the initializing rate), the five categories run at:
///
/// | category      | rate      |
/// |---------------|-----------|
/// | initializing  | `k`       |
/// | working       | `k`       |
/// | reinforcing   | `k·γ`     |
/// | stabilizing   | `k·γ`     |
/// | purifying     | `k·γ²`    |
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), synthesis::SynthesisError> {
/// let schedule = synthesis::RateSchedule::new(1.0, 1000.0)?;
/// assert_eq!(schedule.initializing(), 1.0);
/// assert_eq!(schedule.reinforcing(), 1000.0);
/// assert_eq!(schedule.purifying(), 1_000_000.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateSchedule {
    base: f64,
    gamma: f64,
}

impl RateSchedule {
    /// Creates a schedule with the given base (initializing) rate and
    /// separation factor γ.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidRateParameter`] if either parameter
    /// is not finite and positive, or if γ < 1 (a separation below one would
    /// invert the hierarchy).
    pub fn new(base: f64, gamma: f64) -> Result<Self, SynthesisError> {
        if !(base.is_finite() && base > 0.0) {
            return Err(SynthesisError::InvalidRateParameter {
                parameter: "base",
                value: base,
            });
        }
        if !(gamma.is_finite() && gamma >= 1.0) {
            return Err(SynthesisError::InvalidRateParameter {
                parameter: "gamma",
                value: gamma,
            });
        }
        Ok(RateSchedule { base, gamma })
    }

    /// The schedule used throughout the paper's examples: base rate 1, γ as
    /// given.
    ///
    /// # Errors
    ///
    /// See [`RateSchedule::new`].
    pub fn with_gamma(gamma: f64) -> Result<Self, SynthesisError> {
        RateSchedule::new(1.0, gamma)
    }

    /// The base (initializing) rate `k`.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The separation factor γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Rate of the initializing reactions `e_i -> d_i`.
    pub fn initializing(&self) -> f64 {
        self.base
    }

    /// Rate of the reinforcing reactions `d_i + e_i -> 2 d_i`.
    pub fn reinforcing(&self) -> f64 {
        self.base * self.gamma
    }

    /// Rate of the stabilizing reactions `d_i + e_j -> d_i`.
    pub fn stabilizing(&self) -> f64 {
        self.base * self.gamma
    }

    /// Rate of the purifying reactions `d_i + d_j -> ∅`.
    pub fn purifying(&self) -> f64 {
        self.base * self.gamma * self.gamma
    }

    /// Rate of the working reactions `d_i + f -> d_i + o`.
    pub fn working(&self) -> f64 {
        self.base
    }

    /// The total rate span of the module (`purifying / initializing = γ²`),
    /// useful for sanity checks against a network summary.
    pub fn span(&self) -> f64 {
        self.gamma * self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_1_relations_hold() {
        let s = RateSchedule::new(2.0, 100.0).unwrap();
        // γ·k_init = k_reinforce
        assert_eq!(s.gamma() * s.initializing(), s.reinforcing());
        // k_reinforce = k_stabilize
        assert_eq!(s.reinforcing(), s.stabilizing());
        // k_stabilize = k_purify / γ
        assert_eq!(s.stabilizing(), s.purifying() / s.gamma());
        // k_purify / γ = γ·k_work
        assert_eq!(s.purifying() / s.gamma(), s.gamma() * s.working());
        assert_eq!(s.span(), 10_000.0);
        assert_eq!(s.base(), 2.0);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(RateSchedule::new(0.0, 10.0).is_err());
        assert!(RateSchedule::new(1.0, 0.5).is_err());
        assert!(RateSchedule::new(f64::NAN, 10.0).is_err());
        assert!(RateSchedule::new(1.0, f64::INFINITY).is_err());
        assert!(RateSchedule::with_gamma(1.0).is_ok());
    }

    #[test]
    fn rate_bands_are_ordered_and_separated() {
        let base = 1.0;
        let sep = 10.0;
        let rates: Vec<f64> = RateBand::ALL.iter().map(|b| b.rate(base, sep)).collect();
        assert!(rates.windows(2).all(|w| w[1] / w[0] > 9.99));
        assert_eq!(RateBand::Slow.rate(base, sep), 1.0);
        assert_eq!(RateBand::Medium.rate(base, sep), 10.0);
        assert_eq!(RateBand::Slowest.rate(base, sep), 0.01);
        assert_eq!(RateBand::Fastest.rate(base, sep), 10_000.0);
        assert!(RateBand::Slowest < RateBand::Fastest);
        assert_eq!(RateBand::Fastest.level(), 6);
    }
}
