//! End-to-end synthesis of a log-linear probabilistic response.
//!
//! This is the flow of Section 3.2 of the paper: given a target response
//!
//! ```text
//! P(outcome₁) = a + b·log2(X) + c·X      (in percent, X = input quantity)
//! ```
//!
//! build a reaction network made of a fan-out stage, a linear module, a
//! logarithm module, assimilation glue and a two-outcome stochastic module,
//! so that Monte-Carlo simulation of the network reproduces the response.
//!
//! ## Note on the direction of the assimilation reactions
//!
//! The paper's Figure 4 prints the assimilation reactions as
//! `e1 + y2 -> e2` and `e2 + y1 -> e1`, which *removes* probability mass
//! from the outcome whose initial quantity encodes the constant term 15 as
//! the log term grows — the opposite of Equation 14, where both the `log2`
//! and linear terms are added to the constant 15. This implementation
//! follows Equation 14 (and Figure 5): positive coefficients move
//! probability mass *towards* the tracked outcome, negative coefficients
//! move it away. The verbatim Figure 4 network is still available in the
//! `lambda` crate for structural comparison.

use cme::{FirstPassage, OutcomeDistribution, PopulationBounds};
use crn::{Crn, State};
use gillespie::{SimulationOptions, SpeciesThresholdClassifier, StopCondition};
use numerics::LogLinearFit;
use serde::{Deserialize, Serialize};

use crate::compose::Composer;
use crate::error::SynthesisError;
use crate::glue;
use crate::modules::{linear::linear, logarithm::logarithm};
use crate::stochastic::StochasticModule;

/// Default fast rate for glue and linear stages (Figure 4 uses 10⁹).
const DEFAULT_FAST_RATE: f64 = 1e9;
/// Default base rate of the logarithm module's slow clock (Figure 4: 10⁻³).
const DEFAULT_LOG_BASE: f64 = 1e-3;
/// Default band separation inside the logarithm module (Figure 4: 10³).
const DEFAULT_LOG_SEPARATION: f64 = 1e3;
/// Default base rate of the stochastic module (Figure 4: 10⁻⁹).
const DEFAULT_STOCHASTIC_BASE: f64 = 1e-9;
/// Default γ of the stochastic module (Figure 4: 10⁹).
const DEFAULT_STOCHASTIC_GAMMA: f64 = 1e9;
/// Default total number of `e` molecules (percent granularity).
const DEFAULT_INPUT_TOTAL: u64 = 100;

/// Builder for a synthesized log-linear probabilistic response.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use numerics::LogLinearFit;
/// use synthesis::LogLinearSynthesizer;
///
/// // The paper's Equation 14: P(tracked) = 15 + 6·log2(MOI) + MOI/6 percent.
/// let response = LogLinearFit::from_coefficients(15.0, 6.0, 1.0 / 6.0);
/// let synthesized = LogLinearSynthesizer::new("moi", response)
///     .outcomes("lysis", "lysogeny")
///     .outputs("cro2", "ci2")
///     .thresholds(55, 145)
///     .food(200, 300)
///     .synthesize()?;
/// assert!(synthesized.crn().reactions().len() >= 19);
/// assert!((synthesized.predicted_probability(4) - 0.2767).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogLinearSynthesizer {
    input: String,
    response: LogLinearFit,
    outcome_names: (String, String),
    output_names: (String, String),
    thresholds: (u64, u64),
    food: (u64, u64),
    input_total: u64,
    input_range: (u64, u64),
    fast_rate: f64,
    log_base: f64,
    log_separation: f64,
    stochastic_base: f64,
    stochastic_gamma: f64,
}

impl LogLinearSynthesizer {
    /// Creates a synthesizer for the given input species and target
    /// response (coefficients in percent).
    pub fn new(input: impl Into<String>, response: LogLinearFit) -> Self {
        LogLinearSynthesizer {
            input: input.into(),
            response,
            outcome_names: ("T1".to_string(), "T2".to_string()),
            output_names: ("out1".to_string(), "out2".to_string()),
            thresholds: (10, 10),
            food: (100, 100),
            input_total: DEFAULT_INPUT_TOTAL,
            input_range: (1, 10),
            fast_rate: DEFAULT_FAST_RATE,
            log_base: DEFAULT_LOG_BASE,
            log_separation: DEFAULT_LOG_SEPARATION,
            stochastic_base: DEFAULT_STOCHASTIC_BASE,
            stochastic_gamma: DEFAULT_STOCHASTIC_GAMMA,
        }
    }

    /// Names the two outcomes; the response describes the probability of the
    /// *first*.
    pub fn outcomes(mut self, tracked: impl Into<String>, complement: impl Into<String>) -> Self {
        self.outcome_names = (tracked.into(), complement.into());
        self
    }

    /// Names the two output species produced by the working reactions.
    pub fn outputs(mut self, tracked: impl Into<String>, complement: impl Into<String>) -> Self {
        self.output_names = (tracked.into(), complement.into());
        self
    }

    /// Sets the output thresholds that declare each outcome.
    pub fn thresholds(mut self, tracked: u64, complement: u64) -> Self {
        self.thresholds = (tracked, complement);
        self
    }

    /// Sets the initial food quantities feeding each working reaction.
    pub fn food(mut self, tracked: u64, complement: u64) -> Self {
        self.food = (tracked, complement);
        self
    }

    /// Sets the total number of probability-carrying `e` molecules
    /// (default 100, i.e. one molecule per percentage point).
    pub fn input_total(mut self, input_total: u64) -> Self {
        self.input_total = input_total;
        self
    }

    /// Sets the γ of the embedded stochastic module (default 10⁹).
    pub fn stochastic_gamma(mut self, gamma: f64) -> Self {
        self.stochastic_gamma = gamma;
        self
    }

    /// Sets the expected range of input quantities (default `1..=10`, the
    /// paper's MOI sweep). The range guides the choice of stoichiometric
    /// coefficients: a coefficient like `1/6` is realised as `6 x -> y`,
    /// which only makes sense if inputs of six or more molecules actually
    /// occur.
    pub fn input_range(mut self, min: u64, max: u64) -> Self {
        self.input_range = (min, max);
        self
    }

    /// Synthesizes the reaction network.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidSpecification`] if the constant term
    /// is outside `[0, 100]`, names collide, food is below the threshold, or
    /// the coefficients cannot be realised with small integer stoichiometry.
    pub fn synthesize(self) -> Result<SynthesizedResponse, SynthesisError> {
        let a = self.response.constant();
        if !(0.0..=self.input_total as f64).contains(&a) {
            return Err(SynthesisError::InvalidSpecification {
                message: format!(
                    "constant term {a} must lie within [0, {}] percent",
                    self.input_total
                ),
            });
        }
        if self.food.0 < self.thresholds.0 || self.food.1 < self.thresholds.1 {
            return Err(SynthesisError::InvalidSpecification {
                message: "food quantities must be at least the outcome thresholds".into(),
            });
        }
        let mut names = vec![
            self.input.clone(),
            self.output_names.0.clone(),
            self.output_names.1.clone(),
        ];
        names.sort();
        names.dedup();
        if names.len() != 3 || self.outcome_names.0 == self.outcome_names.1 {
            return Err(SynthesisError::InvalidSpecification {
                message: "input, output and outcome names must be distinct".into(),
            });
        }

        // --- deterministic front end -------------------------------------
        let linear_copy = format!("{}_lin", self.input);
        let log_copy = format!("{}_log", self.input);
        let b_coeff = self.response.log_coefficient();
        let c_coeff = self.response.linear_coefficient();
        let needs_linear = c_coeff.abs() > 1e-9;
        let needs_log = b_coeff.abs() > 1e-9;

        let mut composer = Composer::new();
        let mut log_clock_species = None;

        // Fan the input out to one copy per deterministic branch.
        let mut copies: Vec<&str> = Vec::new();
        if needs_linear {
            copies.push(&linear_copy);
        }
        if needs_log {
            copies.push(&log_copy);
        }
        if !copies.is_empty() {
            composer = composer.add(&glue::fan_out(&self.input, &copies, self.fast_rate)?);
        }

        // Linear branch: α x_lin -> β y_lin, then assimilation.
        if needs_linear {
            let (alpha, beta) = best_integer_ratio(c_coeff.abs(), self.input_range)?;
            let module = linear(alpha, beta, &linear_copy, "y_lin", self.fast_rate)?;
            composer = composer.add_module(&module);
            composer = composer.add(&assimilation_for_sign(c_coeff, "y_lin", self.fast_rate)?);
        }

        // Logarithm branch: log2 into a raw count, scale it, assimilate.
        if needs_log {
            let module = logarithm(&log_copy, "y_log_raw", self.log_separation)?;
            log_clock_species = Some(
                module
                    .seed_counts()
                    .first()
                    .expect("logarithm module has a clock seed")
                    .0
                    .clone(),
            );
            composer = composer.add_scaled(module.crn(), self.log_base)?;
            // The raw logarithm count spans roughly log2 of the input range.
            let log_range = (
                (self.input_range.0.max(1) as f64).log2().floor() as u64,
                (self.input_range.1.max(1) as f64).log2().ceil() as u64,
            );
            let (alpha, beta) = best_integer_ratio(b_coeff.abs(), log_range)?;
            let scale = linear(alpha, beta, "y_log_raw", "y_log", self.fast_rate)?;
            composer = composer.add_module(&scale);
            composer = composer.add(&assimilation_for_sign(b_coeff, "y_log", self.fast_rate)?);
        }

        // --- stochastic back end ------------------------------------------
        let stochastic = StochasticModule::builder()
            .outcomes([self.outcome_names.0.clone(), self.outcome_names.1.clone()])
            .base_rate(self.stochastic_base)
            .gamma(self.stochastic_gamma)
            .input_total(self.input_total)
            .food(self.food.0.max(self.food.1))
            .decision_threshold(self.thresholds.0.min(self.thresholds.1))
            .build()?;
        // Rename the generic outputs o1/o2 to the requested output names.
        let stochastic_crn = stochastic.crn().rename_species(|name| match name {
            "o1" => self.output_names.0.clone(),
            "o2" => self.output_names.1.clone(),
            other => other.to_string(),
        })?;
        composer = composer.add(&stochastic_crn);

        let crn = composer.build()?;
        let e1_initial = a.round() as u64;
        Ok(SynthesizedResponse {
            crn,
            input: self.input,
            response: self.response,
            outcome_names: self.outcome_names,
            output_names: self.output_names,
            thresholds: self.thresholds,
            food: self.food,
            input_total: self.input_total,
            e1_initial,
            log_clock_species,
        })
    }
}

/// Builds the assimilation reaction moving probability mass towards the
/// tracked outcome for positive coefficients and away from it for negative
/// ones.
fn assimilation_for_sign(
    coefficient: f64,
    trigger: &str,
    rate: f64,
) -> Result<Crn, SynthesisError> {
    if coefficient >= 0.0 {
        glue::assimilation(trigger, "e2", "e1", rate)
    } else {
        glue::assimilation(trigger, "e1", "e2", rate)
    }
}

/// Approximates `value` (must be positive) by a fraction `β/α` with small
/// integer stoichiometry `α x -> β y`, chosen to minimise the realised error
/// over the *integer* inputs the module will actually see.
///
/// A reaction `α x -> β y` produces `⌊x/α⌋·β` output molecules, so large
/// denominators are only useful when the input quantity is large: for inputs
/// of a handful of molecules the floor dominates and a denominator of 1 or 2
/// is almost always best. The search therefore scores each candidate by the
/// total absolute deviation `Σ_x |⌊x/α⌋·β − value·x|` over the expected input
/// range.
fn best_integer_ratio(value: f64, input_range: (u64, u64)) -> Result<(u32, u32), SynthesisError> {
    if !(value.is_finite() && value > 0.0) || value > 1000.0 {
        return Err(SynthesisError::UnrealizableCoefficient { coefficient: value });
    }
    let (lo, hi) = (
        input_range.0.min(input_range.1),
        input_range.0.max(input_range.1),
    );
    let max_alpha = 16u64.min(hi.max(1)) as u32;
    let mut best: Option<(u32, u32, f64)> = None;
    for alpha in 1..=max_alpha {
        let beta = (value * f64::from(alpha)).round().clamp(1.0, 10_000.0);
        let mut error = 0.0;
        for x in lo..=hi {
            let realised = (x / u64::from(alpha)) as f64 * beta;
            error += (realised - value * x as f64).abs();
        }
        if best.is_none_or(|(_, _, e)| error < e - 1e-12) {
            best = Some((alpha, beta as u32, error));
        }
    }
    best.map(|(alpha, beta, _)| (alpha, beta))
        .ok_or(SynthesisError::UnrealizableCoefficient { coefficient: value })
}

/// A fully synthesized probabilistic response network.
///
/// Produced by [`LogLinearSynthesizer::synthesize`]; see there for an
/// example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesizedResponse {
    crn: Crn,
    input: String,
    response: LogLinearFit,
    outcome_names: (String, String),
    output_names: (String, String),
    thresholds: (u64, u64),
    food: (u64, u64),
    input_total: u64,
    e1_initial: u64,
    log_clock_species: Option<String>,
}

impl SynthesizedResponse {
    /// Returns the synthesized reaction network.
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// Returns the input species name.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// Returns the target response the network was synthesized for.
    pub fn response(&self) -> &LogLinearFit {
        &self.response
    }

    /// Returns the two outcome names `(tracked, complement)`.
    pub fn outcome_names(&self) -> (&str, &str) {
        (&self.outcome_names.0, &self.outcome_names.1)
    }

    /// Returns the two output species names `(tracked, complement)`.
    pub fn output_names(&self) -> (&str, &str) {
        (&self.output_names.0, &self.output_names.1)
    }

    /// Returns the initial quantities of the probability-carrying species
    /// `(E1, E2)` before preprocessing.
    pub fn initial_input_counts(&self) -> (u64, u64) {
        (self.e1_initial, self.input_total - self.e1_initial)
    }

    /// Builds the initial state for an input quantity `x`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Crn`] only if the network is missing its own
    /// species, which cannot happen for a synthesized value.
    pub fn initial_state(&self, x: u64) -> Result<State, SynthesisError> {
        let mut state = self.crn.zero_state();
        // A response with zero log/linear coefficients never references the
        // input species; the quantity is then simply irrelevant.
        if let Some(input) = self.crn.species_id(&self.input) {
            state.set(input, x);
        }
        state.set(self.crn.require_species("e1")?, self.e1_initial);
        state.set(
            self.crn.require_species("e2")?,
            self.input_total - self.e1_initial,
        );
        state.set(self.crn.require_species("f1")?, self.food.0);
        state.set(self.crn.require_species("f2")?, self.food.1);
        if let Some(clock) = &self.log_clock_species {
            state.set(self.crn.require_species(clock)?, 1);
        }
        Ok(state)
    }

    /// Returns the probability of the tracked outcome predicted by the
    /// target response at input `x` (clamped to `[0, 1]`).
    pub fn predicted_probability(&self, x: u64) -> f64 {
        (self.response.evaluate(x.max(1) as f64) / 100.0).clamp(0.0, 1.0)
    }

    /// Returns a classifier assigning trajectories to the two outcomes based
    /// on the output thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Crn`] only if the network is missing its own
    /// species.
    pub fn classifier(&self) -> Result<SpeciesThresholdClassifier, SynthesisError> {
        Ok(SpeciesThresholdClassifier::new()
            .rule_named(
                &self.crn,
                &self.output_names.0,
                self.thresholds.0,
                self.outcome_names.0.as_str(),
            )?
            .rule_named(
                &self.crn,
                &self.output_names.1,
                self.thresholds.1,
                self.outcome_names.1.as_str(),
            )?)
    }

    /// Returns the stop condition: either output reaches its threshold, or
    /// (as a safety net) the probability-carrying species and catalysts are
    /// fully depleted so that no outcome can ever be declared.
    pub fn stop_condition(&self) -> StopCondition {
        let species = |name: &str| {
            self.crn
                .species_id(name)
                .expect("synthesized species exist by construction")
        };
        StopCondition::any_of(vec![
            StopCondition::species_at_least(species(&self.output_names.0), self.thresholds.0),
            StopCondition::species_at_least(species(&self.output_names.1), self.thresholds.1),
            StopCondition::all_of(vec![
                StopCondition::species_at_most(species("e1"), 0),
                StopCondition::species_at_most(species("e2"), 0),
                StopCondition::species_at_most(species("d1"), 0),
                StopCondition::species_at_most(species("d2"), 0),
            ]),
        ])
    }

    /// Returns per-trajectory simulation options suited to this network.
    pub fn simulation_options(&self) -> SimulationOptions {
        SimulationOptions::new()
            .stop(self.stop_condition())
            .max_events(50_000_000)
    }

    /// Returns truncating population bounds suited to the synthesized
    /// network for input quantity `x`.
    ///
    /// Truncation (rather than strict bounds) is required whenever the
    /// response has a logarithm branch: its clock reaction `b -> a + b`
    /// never stops, so the reachable space is infinite in the loop species.
    /// The logarithm module's auxiliary species are capped individually —
    /// each extra loop/carry molecule beyond its working range costs a
    /// factor of the band separation in probability, so the caps leave
    /// negligible (and rigorously reported) leak while keeping the
    /// enumeration from drowning in implausible clock states.
    pub fn exact_bounds(&self, x: u64) -> PopulationBounds {
        let x = x.max(1);
        let cap = self
            .input_total
            .max(self.food.0)
            .max(self.food.1)
            .max(x * 8)
            .max(8);
        let mut bounds = PopulationBounds::truncating(cap);
        if let Some(clock) = &self.log_clock_species {
            let log2_x = 64 - u64::leading_zeros(x) as u64; // ⌈log2(x+1)⌉
            bounds = bounds
                .cap(clock.clone(), 1)
                .cap("y_log_raw_loop", 4)
                .cap("y_log_raw_carry", x.div_ceil(2).max(2))
                .cap("y_log_raw", log2_x + 2)
                .cap(format!("{}_log", self.input), x)
                .cap(format!("{}_log_saved", self.input), x);
        }
        bounds
    }

    /// Computes the **exact** outcome distribution of the synthesized
    /// network for input quantity `x` from the chemical master equation —
    /// the ground truth the Monte-Carlo response sweeps estimate. This is
    /// how a synthesized log-linear response is verified without relying on
    /// ensemble noise floors.
    ///
    /// # Errors
    ///
    /// Propagates state construction errors and [`SynthesisError::Cme`] for
    /// bound violations, an exhausted state budget, or non-convergence.
    pub fn exact_outcome_analysis(
        &self,
        x: u64,
        bounds: &PopulationBounds,
    ) -> Result<OutcomeDistribution, SynthesisError> {
        let initial = self.initial_state(x)?;
        let passage = FirstPassage::new(&self.crn)
            .outcome_species_at_least(
                self.outcome_names.0.as_str(),
                &self.output_names.0,
                self.thresholds.0,
            )?
            .outcome_species_at_least(
                self.outcome_names.1.as_str(),
                &self.output_names.1,
                self.thresholds.1,
            )?;
        Ok(passage.solve(&initial, bounds)?)
    }

    /// Computes the exact probability of the *tracked* outcome for input
    /// `x`, using [`exact_bounds`](SynthesizedResponse::exact_bounds).
    ///
    /// # Errors
    ///
    /// Same as [`exact_outcome_analysis`](SynthesizedResponse::exact_outcome_analysis).
    pub fn exact_tracked_probability(&self, x: u64) -> Result<f64, SynthesisError> {
        Ok(self
            .exact_outcome_analysis(x, &self.exact_bounds(x))?
            .probability(&self.outcome_names.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillespie::{Ensemble, EnsembleOptions};

    fn eq14() -> LogLinearFit {
        LogLinearFit::from_coefficients(15.0, 6.0, 1.0 / 6.0)
    }

    fn lambda_synthesizer() -> LogLinearSynthesizer {
        LogLinearSynthesizer::new("moi", eq14())
            .outcomes("lysis", "lysogeny")
            .outputs("cro2", "ci2")
            .thresholds(55, 145)
            .food(200, 300)
    }

    #[test]
    fn ratio_approximation_finds_small_fractions() {
        // Over the paper's MOI range 1..=10, 1/6 is realised as one output
        // molecule per five or six inputs (both are within one molecule of
        // the exact value everywhere in the range).
        let (alpha, beta) = best_integer_ratio(1.0 / 6.0, (1, 10)).unwrap();
        assert!(beta == 1 && (4..=6).contains(&alpha), "got {alpha}/{beta}");
        assert_eq!(best_integer_ratio(6.0, (0, 4)).unwrap(), (1, 6));
        assert_eq!(best_integer_ratio(1.5, (1, 10)).unwrap(), (2, 3));
        // A coefficient that needs a large denominator is cut off by the
        // range: inputs of at most 10 molecules can never trigger `50 x -> y`,
        // so the best realisable choice is simply the largest usable one.
        let (alpha, _) = best_integer_ratio(0.02, (1, 10)).unwrap();
        assert!(alpha <= 10);
        // Small raw counts (the logarithm branch) force a denominator of 1.
        assert_eq!(best_integer_ratio(4.09, (0, 4)).unwrap(), (1, 4));
        assert!(best_integer_ratio(0.0, (1, 10)).is_err());
        assert!(best_integer_ratio(f64::NAN, (1, 10)).is_err());
        assert!(best_integer_ratio(1e6, (1, 10)).is_err());
    }

    #[test]
    fn synthesized_network_has_the_expected_shape() {
        let synthesized = lambda_synthesizer().synthesize().unwrap();
        let crn = synthesized.crn();
        // fan-out (1) + linear (1) + linear assimilation (1) + logarithm (6)
        // + log scaling (1) + log assimilation (1) + stochastic module (2
        // outcomes: 2 init + 2 reinforce + 2 stabilize + 1 purify + 2 work = 9)
        assert_eq!(crn.reactions().len(), 20);
        assert!(crn.species_id("moi").is_some());
        assert!(crn.species_id("cro2").is_some());
        assert!(crn.species_id("ci2").is_some());
        assert!(crn.species_id("o1").is_none());
        let summary = crn.summary();
        assert!(
            summary.rate_span >= 1e17,
            "rate span {:.2e}",
            summary.rate_span
        );
    }

    #[test]
    fn initial_state_sets_up_figure_4_quantities() {
        let synthesized = lambda_synthesizer().synthesize().unwrap();
        let state = synthesized.initial_state(7).unwrap();
        let crn = synthesized.crn();
        assert_eq!(state.count(crn.species_id("moi").unwrap()), 7);
        assert_eq!(state.count(crn.species_id("e1").unwrap()), 15);
        assert_eq!(state.count(crn.species_id("e2").unwrap()), 85);
        assert_eq!(state.count(crn.species_id("f1").unwrap()), 200);
        assert_eq!(state.count(crn.species_id("f2").unwrap()), 300);
        assert_eq!(synthesized.initial_input_counts(), (15, 85));
    }

    #[test]
    fn predicted_probability_follows_equation_14() {
        let synthesized = lambda_synthesizer().synthesize().unwrap();
        assert!((synthesized.predicted_probability(1) - 0.1517).abs() < 0.01);
        assert!((synthesized.predicted_probability(10) - 0.3660).abs() < 0.01);
        // Clamped at zero input.
        assert!(synthesized.predicted_probability(0) >= 0.0);
    }

    #[test]
    fn invalid_specifications_are_rejected() {
        let bad_constant =
            LogLinearSynthesizer::new("moi", LogLinearFit::from_coefficients(150.0, 0.0, 0.0))
                .synthesize();
        assert!(bad_constant.is_err());

        let bad_food = lambda_synthesizer().food(10, 10).synthesize();
        assert!(bad_food.is_err());

        let clash = lambda_synthesizer().outputs("moi", "ci2").synthesize();
        assert!(clash.is_err());

        let same_outcomes = lambda_synthesizer().outcomes("x", "x").synthesize();
        assert!(same_outcomes.is_err());
    }

    #[test]
    fn constant_only_response_reproduces_a_bernoulli_choice() {
        // P(tracked) = 30% with no input dependence: a plain two-outcome
        // stochastic module.
        let response = LogLinearFit::from_coefficients(30.0, 0.0, 0.0);
        let synthesized = LogLinearSynthesizer::new("x", response)
            .outcomes("T1", "T2")
            .outputs("w1", "w2")
            .thresholds(5, 5)
            .food(20, 20)
            .stochastic_gamma(1e6)
            .synthesize()
            .unwrap();
        let initial = synthesized.initial_state(1).unwrap();
        let report = Ensemble::new(
            synthesized.crn(),
            initial,
            synthesized.classifier().unwrap(),
        )
        .options(
            EnsembleOptions::new()
                .trials(300)
                .master_seed(5)
                .simulation(synthesized.simulation_options()),
        )
        .run()
        .unwrap();
        assert!(
            (report.probability("T1") - 0.3).abs() < 0.09,
            "got {}",
            report.probability("T1")
        );
    }

    #[test]
    fn constant_only_response_is_exact_under_the_cme() {
        // A scaled-down constant response: 3 of 10 input molecules track
        // outcome T1, so the exact outcome probability is 0.3 up to the
        // γ = 10⁹ winner-take-all error — far below 1e-6.
        let response = LogLinearFit::from_coefficients(3.0, 0.0, 0.0);
        let synthesized = LogLinearSynthesizer::new("x", response)
            .outcomes("T1", "T2")
            .outputs("w1", "w2")
            .thresholds(2, 2)
            .food(2, 2)
            .input_total(10)
            .synthesize()
            .unwrap();
        let analysis = synthesized
            .exact_outcome_analysis(1, &synthesized.exact_bounds(1))
            .unwrap();
        assert!(
            (analysis.probability("T1") - 0.3).abs() < 1e-6,
            "p(T1) = {}",
            analysis.probability("T1")
        );
        assert!(analysis.escaped() < 1e-9);
        assert!((synthesized.exact_tracked_probability(1).unwrap() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn linear_response_verifies_exactly_against_its_realised_law() {
        // P(tracked) = (2 + x)/10: the linear branch moves one e2 to e1 per
        // input molecule. The exact CME probability must match the realised
        // affine law at every swept input — the synthesizer's correctness
        // statement, free of Monte-Carlo noise.
        let response = LogLinearFit::from_coefficients(2.0, 0.0, 1.0);
        let synthesized = LogLinearSynthesizer::new("x", response)
            .outcomes("T1", "T2")
            .outputs("w1", "w2")
            .thresholds(2, 2)
            .food(2, 2)
            .input_total(10)
            .input_range(1, 4)
            .synthesize()
            .unwrap();
        for x in 1..=4u64 {
            let exact = synthesized.exact_tracked_probability(x).unwrap();
            let realised = (2.0 + x as f64) / 10.0;
            assert!(
                (exact - realised).abs() < 1e-6,
                "x = {x}: exact {exact} vs realised {realised}"
            );
        }
    }

    #[test]
    fn accessors_expose_configuration() {
        let synthesized = lambda_synthesizer().synthesize().unwrap();
        assert_eq!(synthesized.input(), "moi");
        assert_eq!(synthesized.outcome_names(), ("lysis", "lysogeny"));
        assert_eq!(synthesized.output_names(), ("cro2", "ci2"));
        assert_eq!(synthesized.response().constant(), 15.0);
    }
}
