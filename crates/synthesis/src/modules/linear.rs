//! Linear module: `α·Y∞ = β·X₀`.

use crn::CrnBuilder;
use gillespie::StopCondition;

use crate::error::SynthesisError;
use crate::modules::FunctionModule;

/// Builds the linear module `α·Y∞ = β·X₀`, realised by the single reaction
/// `α x -> β y`.
///
/// Each firing consumes `α` input molecules and produces `β` output
/// molecules, so the final output quantity is `⌊X₀/α⌋·β` — the exact scaling
/// `(β/α)·X₀` when `α` divides `X₀`.
///
/// # Errors
///
/// Returns [`SynthesisError::InvalidSpecification`] if `α` or `β` is zero or
/// the input and output names collide, and
/// [`SynthesisError::InvalidRateParameter`] for a non-positive rate.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use synthesis::modules::linear::linear;
///
/// // Y = X/6, as used in the lambda-phage model for the MOI/6 term.
/// let module = linear(6, 1, "x2", "y1", 1e9)?;
/// assert_eq!(module.evaluate(&[("x2", 60)], 0)?, 10);
/// # Ok(())
/// # }
/// ```
pub fn linear(
    alpha: u32,
    beta: u32,
    input: &str,
    output: &str,
    rate: f64,
) -> Result<FunctionModule, SynthesisError> {
    if alpha == 0 || beta == 0 {
        return Err(SynthesisError::InvalidSpecification {
            message: "linear module coefficients must be positive".into(),
        });
    }
    if input == output {
        return Err(SynthesisError::InvalidSpecification {
            message: "linear module input and output must be distinct species".into(),
        });
    }
    if !(rate.is_finite() && rate > 0.0) {
        return Err(SynthesisError::InvalidRateParameter {
            parameter: "rate",
            value: rate,
        });
    }
    let mut b = CrnBuilder::new();
    let x = b.species(input);
    let y = b.species(output);
    b.reaction()
        .reactant(x, alpha)
        .product(y, beta)
        .rate(rate)
        .label("linear")
        .add()?;
    Ok(FunctionModule::new(
        "linear",
        b.build()?,
        vec![input.to_string()],
        output,
        Vec::new(),
        StopCondition::Exhaustion,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_scaling() {
        let module = linear(1, 1, "x", "y", 1.0).unwrap();
        assert_eq!(module.evaluate(&[("x", 25)], 3).unwrap(), 25);
    }

    #[test]
    fn scaling_up_and_down() {
        let double = linear(1, 2, "x", "y", 1.0).unwrap();
        assert_eq!(double.evaluate(&[("x", 10)], 0).unwrap(), 20);
        let sixth = linear(6, 1, "x", "y", 1.0).unwrap();
        assert_eq!(sixth.evaluate(&[("x", 60)], 0).unwrap(), 10);
        // Non-divisible inputs floor: 64/6 = 10 remainder 4.
        assert_eq!(sixth.evaluate(&[("x", 64)], 0).unwrap(), 10);
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let module = linear(2, 3, "x", "y", 1.0).unwrap();
        assert_eq!(module.evaluate(&[("x", 0)], 0).unwrap(), 0);
        assert_eq!(module.evaluate(&[("x", 1)], 0).unwrap(), 0);
    }

    #[test]
    fn rational_scaling() {
        // Y = (3/2)·X for even X.
        let module = linear(2, 3, "x", "y", 1.0).unwrap();
        assert_eq!(module.evaluate(&[("x", 8)], 0).unwrap(), 12);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(linear(0, 1, "x", "y", 1.0).is_err());
        assert!(linear(1, 0, "x", "y", 1.0).is_err());
        assert!(linear(1, 1, "x", "x", 1.0).is_err());
        assert!(linear(1, 1, "x", "y", 0.0).is_err());
        assert!(linear(1, 1, "x", "y", f64::NAN).is_err());
    }
}
