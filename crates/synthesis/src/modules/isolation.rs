//! Isolation module: `Y∞ = 1`.

use crn::CrnBuilder;
use gillespie::StopCondition;

use crate::error::SynthesisError;
use crate::modules::FunctionModule;
use crate::rates::RateBand;

/// Builds the isolation module `Y∞ = 1`.
///
/// Exponentiation and raising-to-a-power both require an initial state with
/// *exactly one* molecule of their output species. The isolation module
/// enforces that precondition from any non-zero starting quantity using two
/// reactions (the paper's Reactions 12–13):
///
/// ```text
/// c + 2 y  --fast--> c + y   (12: while the control species is present, pare y down)
/// c        --slow--> ∅       (13: eventually remove the control species)
/// ```
///
/// Both `y` and the control species `c` must be non-zero at the outset; on
/// completion exactly one `y` remains and `c` is gone, so downstream modules
/// can consume `y` freely.
///
/// `separation` is the rate gap between the fast paring reaction and the
/// slow removal of the control species; the module errs (leaves more than
/// one `y`) only when the control decays before paring completes, which
/// becomes vanishingly unlikely as the separation grows.
///
/// # Errors
///
/// Returns [`SynthesisError::InvalidSpecification`] for colliding species
/// names and [`SynthesisError::InvalidRateParameter`] if `separation` is not
/// finite and greater than 1.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use synthesis::modules::isolation::isolation;
///
/// let module = isolation("y", "ctl", 1000.0)?;
/// assert_eq!(module.evaluate(&[("y", 50), ("ctl", 5)], 3)?, 1);
/// # Ok(())
/// # }
/// ```
pub fn isolation(
    target: &str,
    control: &str,
    separation: f64,
) -> Result<FunctionModule, SynthesisError> {
    if target == control {
        return Err(SynthesisError::InvalidSpecification {
            message: "isolation target and control must be distinct species".into(),
        });
    }
    if !(separation.is_finite() && separation > 1.0) {
        return Err(SynthesisError::InvalidRateParameter {
            parameter: "separation",
            value: separation,
        });
    }
    let mut b = CrnBuilder::new();
    let y = b.species(target);
    let c = b.species(control);
    // c + 2y -> c + y  (fast)
    b.reaction()
        .reactant(c, 1)
        .reactant(y, 2)
        .product(c, 1)
        .product(y, 1)
        .rate(RateBand::Fast.rate(1.0, separation))
        .label("isolation: pare down")
        .add()?;
    // c -> ∅  (slow)
    b.reaction()
        .reactant(c, 1)
        .rate(RateBand::Slow.rate(1.0, separation))
        .label("isolation: release")
        .add()?;
    Ok(FunctionModule::new(
        "isolation",
        b.build()?,
        vec![target.to_string(), control.to_string()],
        target,
        Vec::new(),
        StopCondition::Exhaustion,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_the_paper() {
        let module = isolation("y", "c", 100.0).unwrap();
        assert_eq!(module.crn().reactions().len(), 2);
        assert_eq!(module.crn().species_len(), 2);
    }

    #[test]
    fn reduces_any_quantity_to_one() {
        let module = isolation("y", "c", 1000.0).unwrap();
        for y0 in [1u64, 2, 7, 100, 500] {
            let y = module.evaluate(&[("y", y0), ("c", 3)], y0).unwrap();
            assert_eq!(y, 1, "starting from {y0}");
        }
    }

    #[test]
    fn consumes_all_control_molecules() {
        let module = isolation("y", "c", 1000.0).unwrap();
        let initial = module.initial_state(&[("y", 20), ("c", 4)]).unwrap();
        let result = gillespie::Simulation::new(module.crn(), gillespie::DirectMethod::new())
            .options(
                gillespie::SimulationOptions::new()
                    .seed(9)
                    .stop(module.stop_condition().clone()),
            )
            .run(&initial)
            .unwrap();
        assert_eq!(
            result
                .final_state
                .count(module.crn().species_id("c").unwrap()),
            0
        );
    }

    #[test]
    fn small_separation_occasionally_fails() {
        // With almost no separation, the control species often decays before
        // the paring completes: the output stays above one in at least some
        // trials. This documents *why* the separation matters.
        let module = isolation("y", "c", 1.5).unwrap();
        let failures = (0..20)
            .filter(|&seed| module.evaluate(&[("y", 200), ("c", 1)], seed).unwrap() > 1)
            .count();
        assert!(
            failures > 0,
            "expected at least one failure at tiny separation"
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(isolation("y", "y", 10.0).is_err());
        assert!(isolation("y", "c", 1.0).is_err());
    }
}
