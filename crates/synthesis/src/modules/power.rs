//! Power module: `Y∞ = X₀^P₀`.

use crn::CrnBuilder;
use gillespie::StopCondition;

use crate::error::SynthesisError;
use crate::modules::FunctionModule;
use crate::rates::RateBand;

/// Builds the power module `Y∞ = X₀^P₀`.
///
/// The module implements the double loop `for each p { for each x { D += Y };
/// Y = D; D = 0 }` with the paper's ten reactions (numbers refer to the
/// paper's Reactions 2–11):
///
/// ```text
/// p        --slowest--> a              (2: outer-loop trigger)
/// a + x    --medium-->  b + a + x'     (3: inner-loop trigger per input)
/// b + y    --fastest--> y' + d + b     (4: D += Y, copying through y')
/// b        --faster-->  ∅              (5)
/// y'       --fast-->    y              (6)
/// a        --slow-->    e              (7: end of inner loop)
/// e + y    --faster-->  e              (8: clear Y)
/// e + x'   --faster-->  e + x          (9: restore X)
/// e        --fast-->    ∅              (10)
/// d        --slower-->  y              (11: Y = D)
/// ```
///
/// The output species `y` must start at 1 (the module's seed count).
/// `separation` is the multiplicative rate gap between adjacent bands; the
/// module uses all seven bands, so its total rate span is `separation⁶`.
///
/// # Errors
///
/// Returns [`SynthesisError::InvalidSpecification`] for colliding species
/// names and [`SynthesisError::InvalidRateParameter`] if `separation` is not
/// finite and greater than 1.
///
/// # Example
///
/// ```no_run
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use synthesis::modules::power::power;
///
/// let module = power("x", "p", "y", 25.0)?;
/// let y = module.evaluate(&[("x", 3), ("p", 2)], 1)?;
/// assert!((y as f64 - 9.0).abs() <= 3.0);
/// # Ok(())
/// # }
/// ```
pub fn power(
    base_input: &str,
    exponent_input: &str,
    output: &str,
    separation: f64,
) -> Result<FunctionModule, SynthesisError> {
    let mut names = vec![base_input, exponent_input, output];
    names.sort_unstable();
    names.dedup();
    if names.len() != 3 {
        return Err(SynthesisError::InvalidSpecification {
            message: "power module species names must be distinct".into(),
        });
    }
    if !(separation.is_finite() && separation > 1.0) {
        return Err(SynthesisError::InvalidRateParameter {
            parameter: "separation",
            value: separation,
        });
    }
    let rate = |band: RateBand| band.rate(1.0, separation);
    let outer = format!("{output}_outer");
    let inner = format!("{output}_inner");
    let staged = format!("{output}_staged");
    let accum = format!("{output}_accum");
    let reset = format!("{output}_reset");
    let saved = format!("{base_input}_saved");

    let mut builder = CrnBuilder::new();
    let p = builder.species(exponent_input);
    let x = builder.species(base_input);
    let y = builder.species(output);
    let a = builder.species(&outer);
    let b = builder.species(&inner);
    let y_staged = builder.species(&staged);
    let d = builder.species(&accum);
    let e = builder.species(&reset);
    let x_saved = builder.species(&saved);

    // (2) p -> a  (slowest)
    builder
        .reaction()
        .reactant(p, 1)
        .product(a, 1)
        .rate(rate(RateBand::Slowest))
        .label("power: outer loop")
        .add()?;
    // (3) a + x -> b + a + x'  (medium)
    builder
        .reaction()
        .reactant(a, 1)
        .reactant(x, 1)
        .product(b, 1)
        .product(a, 1)
        .product(x_saved, 1)
        .rate(rate(RateBand::Medium))
        .label("power: inner loop")
        .add()?;
    // (4) b + y -> y' + d + b  (fastest)
    builder
        .reaction()
        .reactant(b, 1)
        .reactant(y, 1)
        .product(y_staged, 1)
        .product(d, 1)
        .product(b, 1)
        .rate(rate(RateBand::Fastest))
        .label("power: accumulate")
        .add()?;
    // (5) b -> ∅  (faster)
    builder
        .reaction()
        .reactant(b, 1)
        .rate(rate(RateBand::Faster))
        .label("power: end inner iteration")
        .add()?;
    // (6) y' -> y  (fast)
    builder
        .reaction()
        .reactant(y_staged, 1)
        .product(y, 1)
        .rate(rate(RateBand::Fast))
        .label("power: restore output")
        .add()?;
    // (7) a -> e  (slow)
    builder
        .reaction()
        .reactant(a, 1)
        .product(e, 1)
        .rate(rate(RateBand::Slow))
        .label("power: end outer iteration")
        .add()?;
    // (8) e + y -> e  (faster)
    builder
        .reaction()
        .reactant(e, 1)
        .reactant(y, 1)
        .product(e, 1)
        .rate(rate(RateBand::Faster))
        .label("power: clear output")
        .add()?;
    // (9) e + x' -> e + x  (faster)
    builder
        .reaction()
        .reactant(e, 1)
        .reactant(x_saved, 1)
        .product(e, 1)
        .product(x, 1)
        .rate(rate(RateBand::Faster))
        .label("power: restore input")
        .add()?;
    // (10) e -> ∅  (fast)
    builder
        .reaction()
        .reactant(e, 1)
        .rate(rate(RateBand::Fast))
        .label("power: end reset")
        .add()?;
    // (11) d -> y  (slower)
    builder
        .reaction()
        .reactant(d, 1)
        .product(y, 1)
        .rate(rate(RateBand::Slower))
        .label("power: commit accumulator")
        .add()?;

    Ok(FunctionModule::new(
        "power",
        builder.build()?,
        vec![base_input.to_string(), exponent_input.to_string()],
        output,
        vec![(output.to_string(), 1)],
        StopCondition::Exhaustion,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_the_paper() {
        let module = power("x", "p", "y", 20.0).unwrap();
        assert_eq!(module.crn().reactions().len(), 10);
        assert_eq!(module.crn().species_len(), 9);
        assert_eq!(module.seed_counts(), &[("y".to_string(), 1)]);
        assert_eq!(module.inputs().len(), 2);
    }

    #[test]
    fn anything_to_the_zeroth_power_is_one() {
        let module = power("x", "p", "y", 20.0).unwrap();
        assert_eq!(module.evaluate(&[("x", 5), ("p", 0)], 1).unwrap(), 1);
    }

    #[test]
    fn first_power_is_the_input() {
        let module = power("x", "p", "y", 40.0).unwrap();
        let trials = 6;
        let mean: f64 = (0..trials)
            .map(|seed| module.evaluate(&[("x", 5), ("p", 1)], seed).unwrap() as f64)
            .sum::<f64>()
            / trials as f64;
        assert!((mean - 5.0).abs() <= 1.5, "5^1 ≈ 5, got mean {mean}");
    }

    #[test]
    fn small_squares_are_computed() {
        let module = power("x", "p", "y", 40.0).unwrap();
        let trials = 6;
        let mean: f64 = (0..trials)
            .map(|seed| module.evaluate(&[("x", 3), ("p", 2)], seed).unwrap() as f64)
            .sum::<f64>()
            / trials as f64;
        assert!((mean - 9.0).abs() <= 3.0, "3^2 ≈ 9, got mean {mean}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(power("x", "x", "y", 10.0).is_err());
        assert!(power("x", "p", "p", 10.0).is_err());
        assert!(power("x", "p", "y", 1.0).is_err());
    }
}
