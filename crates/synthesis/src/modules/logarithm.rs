//! Logarithm module: `Y∞ = ⌊log₂ X₀⌋`.

use crn::CrnBuilder;
use gillespie::StopCondition;

use crate::error::SynthesisError;
use crate::modules::FunctionModule;
use crate::rates::RateBand;

/// Builds the logarithm module `Y∞ = ⌊log₂ X₀⌋`.
///
/// The input population is repeatedly halved; each halving increments the
/// output by one. The reactions (with their relative speed bands) are:
///
/// ```text
/// b           --slow-->    a + b        (the iteration clock; b is never consumed)
/// a + 2 x     --faster-->  c + x' + a   (halve: two inputs become one carry and one saved input)
/// 2 c         --faster-->  c            (collapse the carries down to one)
/// a           --fast-->    ∅            (end the halving phase)
/// x'          --medium-->  x            (restore the halved population)
/// c           --medium-->  y            (emit one output per iteration)
/// ```
///
/// The clock species `b` must start at 1 (the module's seed count). Because
/// `b -> a + b` never exhausts, the module's stop condition is explicit:
/// the computation is finished once at most one input molecule remains and
/// both intermediates (`x'`, `c`) have been drained.
///
/// `separation` is the multiplicative rate gap between adjacent bands.
///
/// # Errors
///
/// Returns [`SynthesisError::InvalidSpecification`] for colliding species
/// names and [`SynthesisError::InvalidRateParameter`] if `separation` is not
/// finite and greater than 1.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use synthesis::modules::logarithm::logarithm;
///
/// let module = logarithm("x", "y", 30.0)?;
/// let y = module.evaluate(&[("x", 32)], 3)?;
/// assert!((y as i64 - 5).abs() <= 1);
/// # Ok(())
/// # }
/// ```
pub fn logarithm(
    input: &str,
    output: &str,
    separation: f64,
) -> Result<FunctionModule, SynthesisError> {
    if input == output {
        return Err(SynthesisError::InvalidSpecification {
            message: "logarithm input and output must be distinct species".into(),
        });
    }
    if !(separation.is_finite() && separation > 1.0) {
        return Err(SynthesisError::InvalidRateParameter {
            parameter: "separation",
            value: separation,
        });
    }
    let rate = |band: RateBand| band.rate(1.0, separation);
    let clock = format!("{output}_clock");
    let loop_species = format!("{output}_loop");
    let carry = format!("{output}_carry");
    let saved = format!("{input}_saved");

    let mut builder = CrnBuilder::new();
    let x = builder.species(input);
    let y = builder.species(output);
    let b = builder.species(&clock);
    let a = builder.species(&loop_species);
    let c = builder.species(&carry);
    let x_saved = builder.species(&saved);

    // b -> a + b  (slow clock)
    builder
        .reaction()
        .reactant(b, 1)
        .product(a, 1)
        .product(b, 1)
        .rate(rate(RateBand::Slow))
        .label("logarithm: clock")
        .add()?;
    // a + 2x -> c + x' + a  (faster)
    builder
        .reaction()
        .reactant(a, 1)
        .reactant(x, 2)
        .product(c, 1)
        .product(x_saved, 1)
        .product(a, 1)
        .rate(rate(RateBand::Faster))
        .label("logarithm: halve")
        .add()?;
    // 2c -> c  (faster)
    builder
        .reaction()
        .reactant(c, 2)
        .product(c, 1)
        .rate(rate(RateBand::Faster))
        .label("logarithm: collapse carries")
        .add()?;
    // a -> ∅  (fast)
    builder
        .reaction()
        .reactant(a, 1)
        .rate(rate(RateBand::Fast))
        .label("logarithm: end iteration")
        .add()?;
    // x' -> x  (medium)
    builder
        .reaction()
        .reactant(x_saved, 1)
        .product(x, 1)
        .rate(rate(RateBand::Medium))
        .label("logarithm: restore input")
        .add()?;
    // c -> y  (medium)
    builder
        .reaction()
        .reactant(c, 1)
        .product(y, 1)
        .rate(rate(RateBand::Medium))
        .label("logarithm: emit output")
        .add()?;

    let crn = builder.build()?;
    let stop = StopCondition::all_of(vec![
        StopCondition::species_at_most(x, 1),
        StopCondition::species_at_most(x_saved, 0),
        StopCondition::species_at_most(c, 0),
        StopCondition::species_at_most(a, 0),
    ]);

    Ok(FunctionModule::new(
        "logarithm",
        crn,
        vec![input.to_string()],
        output,
        vec![(clock, 1)],
        stop,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_the_paper() {
        let module = logarithm("x", "y", 30.0).unwrap();
        assert_eq!(module.crn().reactions().len(), 6);
        assert_eq!(module.crn().species_len(), 6);
        assert_eq!(module.seed_counts().len(), 1);
    }

    #[test]
    fn log_of_one_is_zero() {
        let module = logarithm("x", "y", 30.0).unwrap();
        assert_eq!(module.evaluate(&[("x", 1)], 1).unwrap(), 0);
    }

    #[test]
    fn exact_powers_of_two() {
        let module = logarithm("x", "y", 50.0).unwrap();
        for (x, expected) in [(2u64, 1i64), (4, 2), (8, 3), (16, 4), (64, 6)] {
            let y = module.evaluate(&[("x", x)], 11).unwrap() as i64;
            assert!(
                (y - expected).abs() <= 1,
                "log2({x}): expected ≈{expected}, got {y}"
            );
        }
    }

    #[test]
    fn non_powers_of_two_floor() {
        let module = logarithm("x", "y", 50.0).unwrap();
        let y = module.evaluate(&[("x", 10)], 5).unwrap() as i64;
        // floor(log2(10)) = 3.
        assert!((y - 3).abs() <= 1, "log2(10) ≈ 3, got {y}");
    }

    #[test]
    fn monotone_in_the_input_on_average() {
        let module = logarithm("x", "y", 50.0).unwrap();
        let mean = |x: u64| {
            let trials = 5;
            (0..trials)
                .map(|seed| module.evaluate(&[("x", x)], seed).unwrap() as f64)
                .sum::<f64>()
                / trials as f64
        };
        assert!(mean(64) > mean(8));
        assert!(mean(8) > mean(2));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(logarithm("x", "x", 10.0).is_err());
        assert!(logarithm("x", "y", 0.5).is_err());
    }
}
