//! Deterministic function modules — Section 2.2 of the paper.
//!
//! Each module computes a function of molecular *counts* using reactions
//! alone: the input is the initial quantity of some species and the output
//! is the eventual quantity of another. The available modules are:
//!
//! | module | function | constructor |
//! |---|---|---|
//! | linear | `Y∞ = (β/α)·X₀` | [`linear::linear`] |
//! | exponentiation | `Y∞ = 2^X₀` | [`exponentiation::exponentiation`] |
//! | logarithm | `Y∞ = ⌊log₂ X₀⌋` | [`logarithm::logarithm`] |
//! | power | `Y∞ = X₀^P₀` | [`power::power`] |
//! | isolation | `Y∞ = 1` | [`isolation::isolation`] |
//!
//! All constructors return a [`FunctionModule`]: the reaction fragment plus
//! the names of its input/output species, the auxiliary species that must
//! start at a non-zero count, and the stop condition under which the
//! computation is considered finished. Modules are *approximate* in the
//! stochastic setting — their accuracy improves with the rate separation
//! between their bands, exactly as for the stochastic module.

pub mod exponentiation;
pub mod isolation;
pub mod linear;
pub mod logarithm;
pub mod power;

use crn::{Crn, State};
use gillespie::{DirectMethod, Simulation, SimulationOptions, StopCondition};
use serde::{Deserialize, Serialize};

use crate::error::SynthesisError;

/// A deterministic function module: a reaction fragment computing an output
/// quantity from input quantities.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use synthesis::modules::logarithm::logarithm;
///
/// let module = logarithm("x", "y", 10.0)?;
/// // log2(64) = 6; the stochastic computation may be off by a little.
/// let y = module.evaluate(&[("x", 64)], 1)?;
/// assert!((y as i64 - 6).abs() <= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionModule {
    name: String,
    crn: Crn,
    inputs: Vec<String>,
    output: String,
    /// Auxiliary species that must start at a fixed non-zero quantity
    /// (e.g. `y = 1` for exponentiation, `b = 1` for the logarithm clock).
    seed_counts: Vec<(String, u64)>,
    stop: StopCondition,
}

impl FunctionModule {
    pub(crate) fn new(
        name: impl Into<String>,
        crn: Crn,
        inputs: Vec<String>,
        output: impl Into<String>,
        seed_counts: Vec<(String, u64)>,
        stop: StopCondition,
    ) -> Self {
        FunctionModule {
            name: name.into(),
            crn,
            inputs,
            output: output.into(),
            seed_counts,
            stop,
        }
    }

    /// Returns the module's descriptive name (`"linear"`, `"logarithm"`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the module's reaction fragment.
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// Returns the names of the module's input species.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Returns the name of the module's output species.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Returns the auxiliary species (and counts) that must be present at
    /// the start of the computation.
    pub fn seed_counts(&self) -> &[(String, u64)] {
        &self.seed_counts
    }

    /// Returns the stop condition under which the computation is complete.
    pub fn stop_condition(&self) -> &StopCondition {
        &self.stop
    }

    /// Builds the initial state for the given input quantities (auxiliary
    /// seed species are filled in automatically).
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidSpecification`] if an unknown input
    /// name is given or a declared input is missing.
    pub fn initial_state(&self, inputs: &[(&str, u64)]) -> Result<State, SynthesisError> {
        for (name, _) in inputs {
            if !self.inputs.iter().any(|i| i == name) {
                return Err(SynthesisError::InvalidSpecification {
                    message: format!("`{name}` is not an input of the {} module", self.name),
                });
            }
        }
        let mut state = self.crn.zero_state();
        for input in &self.inputs {
            let count = inputs
                .iter()
                .find(|(name, _)| name == input)
                .map(|&(_, c)| c)
                .ok_or_else(|| SynthesisError::InvalidSpecification {
                    message: format!("missing quantity for input `{input}`"),
                })?;
            state.set(self.crn.require_species(input)?, count);
        }
        for (name, count) in &self.seed_counts {
            state.set(self.crn.require_species(name)?, *count);
        }
        Ok(state)
    }

    /// Runs the module once and returns the final output quantity.
    ///
    /// This is a convenience for tests, examples and characterization
    /// sweeps; production compositions embed the module's reactions in a
    /// larger network instead.
    ///
    /// # Errors
    ///
    /// Propagates state-construction and simulation errors.
    pub fn evaluate(&self, inputs: &[(&str, u64)], seed: u64) -> Result<u64, SynthesisError> {
        let initial = self.initial_state(inputs)?;
        let options = SimulationOptions::new()
            .seed(seed)
            .stop(self.stop.clone())
            .max_events(20_000_000);
        let result = Simulation::new(&self.crn, DirectMethod::new())
            .options(options)
            .run(&initial)
            .map_err(|err| SynthesisError::InvalidSpecification {
                message: format!("evaluating the {} module failed: {err}", self.name),
            })?;
        Ok(result
            .final_state
            .count(self.crn.require_species(&self.output)?))
    }

    /// Returns a copy of the module with every species renamed by prefixing
    /// `prefix` (inputs, output and seed species included). Useful to avoid
    /// name clashes when instantiating the same module twice in one network.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Crn`] if the renaming fails (it cannot for
    /// well-formed prefixes).
    pub fn namespaced(&self, prefix: &str) -> Result<FunctionModule, SynthesisError> {
        let crn = self.crn.rename_species(|name| format!("{prefix}{name}"))?;
        let rename_stop = namespace_stop(&self.stop, &self.crn, &crn, prefix);
        Ok(FunctionModule {
            name: self.name.clone(),
            crn,
            inputs: self.inputs.iter().map(|i| format!("{prefix}{i}")).collect(),
            output: format!("{prefix}{}", self.output),
            seed_counts: self
                .seed_counts
                .iter()
                .map(|(n, c)| (format!("{prefix}{n}"), *c))
                .collect(),
            stop: rename_stop,
        })
    }
}

/// Rewrites species ids inside a stop condition after a renaming that
/// preserves indices (renaming keeps ids stable, so this is the identity —
/// kept as a function for clarity and future-proofing).
fn namespace_stop(stop: &StopCondition, _old: &Crn, _new: &Crn, _prefix: &str) -> StopCondition {
    stop.clone()
}

#[cfg(test)]
mod tests {
    use super::linear::linear;
    use super::*;

    #[test]
    fn initial_state_fills_inputs_and_seeds() {
        let module = linear(1, 2, "x", "y", 5.0).unwrap();
        let state = module.initial_state(&[("x", 7)]).unwrap();
        assert_eq!(state.count(module.crn().species_id("x").unwrap()), 7);
        assert_eq!(state.count(module.crn().species_id("y").unwrap()), 0);
        assert!(module.initial_state(&[("z", 7)]).is_err());
        assert!(module.initial_state(&[]).is_err());
    }

    #[test]
    fn namespacing_renames_everything() {
        let module = linear(1, 2, "x", "y", 5.0).unwrap();
        let spaced = module.namespaced("m1_").unwrap();
        assert_eq!(spaced.inputs(), &["m1_x".to_string()]);
        assert_eq!(spaced.output(), "m1_y");
        assert!(spaced.crn().species_id("m1_x").is_some());
        assert!(spaced.crn().species_id("x").is_none());
        assert_eq!(spaced.name(), module.name());
    }

    #[test]
    fn accessors_expose_metadata() {
        let module = linear(2, 3, "x", "y", 1.0).unwrap();
        assert_eq!(module.name(), "linear");
        assert_eq!(module.inputs(), &["x".to_string()]);
        assert_eq!(module.output(), "y");
        assert!(module.seed_counts().is_empty());
        assert_eq!(module.stop_condition(), &StopCondition::Exhaustion);
    }
}
