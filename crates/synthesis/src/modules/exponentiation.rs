//! Exponentiation module: `Y∞ = 2^X₀`.

use crn::CrnBuilder;
use gillespie::StopCondition;

use crate::error::SynthesisError;
use crate::modules::FunctionModule;
use crate::rates::RateBand;

/// Builds the exponentiation module `Y∞ = 2^X₀`.
///
/// The module consumes input molecules one at a time; each one doubles the
/// output quantity. The reactions (with their relative speed bands) are:
///
/// ```text
/// x           --slow-->    a          (consume one input, start an iteration)
/// a + y       --faster-->  a + 2 y'   (double the output into a staging species)
/// a           --fast-->    ∅          (end the iteration)
/// y'          --medium-->  y          (release the staged output)
/// ```
///
/// The output species `y` must start at 1 (the module's seed count), which
/// the [`isolation`](crate::modules::isolation) module can enforce.
///
/// `separation` is the multiplicative rate gap between adjacent bands; the
/// computation becomes exact in the limit of large separation.
///
/// # Errors
///
/// Returns [`SynthesisError::InvalidSpecification`] for colliding species
/// names and [`SynthesisError::InvalidRateParameter`] if `separation` is not
/// finite and greater than 1.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use synthesis::modules::exponentiation::exponentiation;
///
/// let module = exponentiation("x", "y", 100.0)?;
/// let y = module.evaluate(&[("x", 4)], 7)?;
/// assert!((y as f64 - 16.0).abs() <= 2.0);
/// # Ok(())
/// # }
/// ```
pub fn exponentiation(
    input: &str,
    output: &str,
    separation: f64,
) -> Result<FunctionModule, SynthesisError> {
    if input == output {
        return Err(SynthesisError::InvalidSpecification {
            message: "exponentiation input and output must be distinct species".into(),
        });
    }
    if !(separation.is_finite() && separation > 1.0) {
        return Err(SynthesisError::InvalidRateParameter {
            parameter: "separation",
            value: separation,
        });
    }
    let rate = |band: RateBand| band.rate(1.0, separation);
    let staged = format!("{output}_staged");
    let loop_species = format!("{output}_loop");

    let mut b = CrnBuilder::new();
    let x = b.species(input);
    let y = b.species(output);
    let y_staged = b.species(&staged);
    let a = b.species(&loop_species);

    // x -> a  (slow)
    b.reaction()
        .reactant(x, 1)
        .product(a, 1)
        .rate(rate(RateBand::Slow))
        .label("exponentiation: start iteration")
        .add()?;
    // a + y -> a + 2 y'  (faster)
    b.reaction()
        .reactant(a, 1)
        .reactant(y, 1)
        .product(a, 1)
        .product(y_staged, 2)
        .rate(rate(RateBand::Faster))
        .label("exponentiation: double")
        .add()?;
    // a -> ∅  (fast)
    b.reaction()
        .reactant(a, 1)
        .rate(rate(RateBand::Fast))
        .label("exponentiation: end iteration")
        .add()?;
    // y' -> y  (medium)
    b.reaction()
        .reactant(y_staged, 1)
        .product(y, 1)
        .rate(rate(RateBand::Medium))
        .label("exponentiation: release")
        .add()?;

    Ok(FunctionModule::new(
        "exponentiation",
        b.build()?,
        vec![input.to_string()],
        output,
        vec![(output.to_string(), 1)],
        StopCondition::Exhaustion,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_the_paper() {
        let module = exponentiation("x", "y", 100.0).unwrap();
        assert_eq!(module.crn().reactions().len(), 4);
        assert_eq!(module.crn().species_len(), 4);
        assert_eq!(module.seed_counts(), &[("y".to_string(), 1)]);
    }

    #[test]
    fn two_to_the_zero_is_one() {
        let module = exponentiation("x", "y", 100.0).unwrap();
        assert_eq!(module.evaluate(&[("x", 0)], 1).unwrap(), 1);
    }

    #[test]
    fn small_powers_of_two_are_computed() {
        let module = exponentiation("x", "y", 200.0).unwrap();
        for (x, expected) in [(1u64, 2.0f64), (2, 4.0), (3, 8.0), (5, 32.0)] {
            let mut total = 0.0;
            let trials = 5;
            for seed in 0..trials {
                total += module.evaluate(&[("x", x)], seed).unwrap() as f64;
            }
            let mean = total / trials as f64;
            let tolerance = (expected * 0.25).max(1.0);
            assert!(
                (mean - expected).abs() <= tolerance,
                "2^{x}: expected ≈{expected}, got mean {mean}"
            );
        }
    }

    #[test]
    fn accuracy_improves_with_separation() {
        let expected = 64.0;
        let error_with = |separation: f64| {
            let module = exponentiation("x", "y", separation).unwrap();
            let mut total = 0.0;
            let trials = 8;
            for seed in 0..trials {
                total += module.evaluate(&[("x", 6)], seed).unwrap() as f64;
            }
            (total / trials as f64 - expected).abs() / expected
        };
        let coarse = error_with(4.0);
        let fine = error_with(300.0);
        assert!(
            fine <= coarse + 0.05,
            "expected error to not grow with separation: coarse {coarse:.3}, fine {fine:.3}"
        );
        assert!(
            fine < 0.25,
            "fine separation should be reasonably accurate, got {fine:.3}"
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(exponentiation("x", "x", 10.0).is_err());
        assert!(exponentiation("x", "y", 1.0).is_err());
        assert!(exponentiation("x", "y", f64::NAN).is_err());
    }
}
