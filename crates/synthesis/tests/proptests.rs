//! Property-based tests of the synthesis layer.

use proptest::prelude::*;
use synthesis::modules::linear::linear;
use synthesis::{Preprocessor, RateSchedule, StochasticModule, TargetDistribution};

proptest! {
    /// Converting a distribution to integer counts always sums to the
    /// requested total and never deviates from the exact value by a whole
    /// molecule or more.
    #[test]
    fn distribution_rounding_is_faithful(
        weights in prop::collection::vec(0.01f64..100.0, 1..8),
        total in 1u64..10_000,
    ) {
        let dist = TargetDistribution::new(weights).expect("distribution");
        let counts = dist.to_counts(total);
        prop_assert_eq!(counts.iter().sum::<u64>(), total);
        for (i, &count) in counts.iter().enumerate() {
            let exact = dist.probability(i) * total as f64;
            prop_assert!(
                (count as f64 - exact).abs() < 1.0,
                "outcome {}: count {} vs exact {}", i, count, exact
            );
        }
    }

    /// Normalised probabilities always sum to one and respect the input
    /// weight ordering.
    #[test]
    fn distribution_probabilities_are_normalised(
        weights in prop::collection::vec(0.0f64..100.0, 2..8),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let dist = TargetDistribution::new(weights.clone()).expect("distribution");
        let sum: f64 = dist.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for (i, w_i) in weights.iter().enumerate() {
            for (j, w_j) in weights.iter().enumerate() {
                if w_i > w_j {
                    prop_assert!(dist.probability(i) >= dist.probability(j));
                }
            }
        }
    }

    /// Equation 1's rate relations hold for every base rate and γ.
    #[test]
    fn rate_schedule_satisfies_equation_1(base in 1e-9f64..1e3, gamma in 1.0f64..1e7) {
        let schedule = RateSchedule::new(base, gamma).expect("schedule");
        let relative = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs());
        prop_assert!(relative(schedule.gamma() * schedule.initializing(), schedule.reinforcing()));
        prop_assert!(relative(schedule.reinforcing(), schedule.stabilizing()));
        prop_assert!(relative(schedule.stabilizing(), schedule.purifying() / schedule.gamma()));
        prop_assert!(relative(schedule.purifying() / schedule.gamma(), schedule.gamma() * schedule.working()));
    }

    /// The stochastic module always contains exactly the reaction inventory
    /// prescribed by Section 2.1.1: n initializing, n reinforcing, n(n−1)
    /// stabilizing, n(n−1)/2 purifying and n working reactions over 4n
    /// species.
    #[test]
    fn stochastic_module_inventory_matches_the_paper(n in 1usize..7, gamma in 1.0f64..1e6) {
        let outcomes: Vec<String> = (1..=n).map(|i| format!("T{i}")).collect();
        let module = StochasticModule::builder()
            .outcomes(outcomes)
            .gamma(gamma)
            .build()
            .expect("module");
        let crn = module.crn();
        prop_assert_eq!(crn.species_len(), 4 * n);
        let count = |label: &str| {
            crn.reactions().iter().filter(|r| r.label() == Some(label)).count()
        };
        prop_assert_eq!(count("initializing"), n);
        prop_assert_eq!(count("reinforcing"), n);
        prop_assert_eq!(count("stabilizing"), n * (n - 1));
        prop_assert_eq!(count("purifying"), n * (n - 1) / 2);
        prop_assert_eq!(count("working"), n);
        prop_assert_eq!(
            crn.reactions().len(),
            n + n + n * (n - 1) + n * (n - 1) / 2 + n
        );
    }

    /// The module's programmed probabilities are exactly the normalised
    /// input counts (all initializing rates are equal).
    #[test]
    fn programmed_probabilities_match_counts(counts in prop::collection::vec(0u64..1_000, 2..6)) {
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let outcomes: Vec<String> = (1..=counts.len()).map(|i| format!("T{i}")).collect();
        let module = StochasticModule::builder()
            .outcomes(outcomes)
            .build()
            .expect("module");
        let probabilities = module.programmed_probabilities(&counts);
        let total: u64 = counts.iter().sum();
        for (p, &count) in probabilities.iter().zip(&counts) {
            prop_assert!((p - count as f64 / total as f64).abs() < 1e-12);
        }
    }

    /// The linear module computes exactly `⌊X/α⌋·β` for every α, β and X —
    /// the discrete form of the paper's `α·Y∞ = β·X₀`.
    #[test]
    fn linear_module_is_exact_integer_scaling(
        alpha in 1u32..6,
        beta in 1u32..6,
        x in 0u64..120,
        seed in 0u64..50,
    ) {
        let module = linear(alpha, beta, "x", "y", 10.0).expect("module");
        let y = module.evaluate(&[("x", x)], seed).expect("evaluation");
        prop_assert_eq!(y, (x / u64::from(alpha)) * u64::from(beta));
    }

    /// Preprocessing predictions always form a probability distribution and
    /// conserve the total probability mass.
    #[test]
    fn preprocessing_predictions_remain_distributions(
        x1 in 0u64..60,
        x2 in 0u64..60,
        moved1 in 1u32..4,
        moved2 in 1u32..4,
    ) {
        let preprocessor = Preprocessor::new(3)
            .term("x1", 2, 0, moved1)
            .expect("term")
            .term("x2", 0, 1, moved2)
            .expect("term");
        let predicted = preprocessor.predicted_probabilities(&[30, 40, 30], &[("x1", x1), ("x2", x2)]);
        let sum: f64 = predicted.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(predicted.iter().all(|p| (0.0..=1.0).contains(p)));
    }
}
