//! Error type for the lambda case study.

use std::error::Error;
use std::fmt;

/// Errors produced by the lambda-phage models and sweeps.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LambdaError {
    /// A model or sweep was configured inconsistently.
    InvalidConfig {
        /// Description of the problem.
        message: String,
    },
    /// Building a reaction network failed.
    Crn(crn::CrnError),
    /// Synthesizing the response network failed.
    Synthesis(synthesis::SynthesisError),
    /// Running a Monte-Carlo ensemble failed.
    Simulation(gillespie::SimulationError),
    /// Fitting the response curve failed.
    Fit(numerics::NumericsError),
}

impl fmt::Display for LambdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LambdaError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            LambdaError::Crn(err) => write!(f, "network error: {err}"),
            LambdaError::Synthesis(err) => write!(f, "synthesis error: {err}"),
            LambdaError::Simulation(err) => write!(f, "simulation error: {err}"),
            LambdaError::Fit(err) => write!(f, "curve fit error: {err}"),
        }
    }
}

impl Error for LambdaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LambdaError::Crn(err) => Some(err),
            LambdaError::Synthesis(err) => Some(err),
            LambdaError::Simulation(err) => Some(err),
            LambdaError::Fit(err) => Some(err),
            LambdaError::InvalidConfig { .. } => None,
        }
    }
}

impl From<crn::CrnError> for LambdaError {
    fn from(err: crn::CrnError) -> Self {
        LambdaError::Crn(err)
    }
}

impl From<synthesis::SynthesisError> for LambdaError {
    fn from(err: synthesis::SynthesisError) -> Self {
        LambdaError::Synthesis(err)
    }
}

impl From<gillespie::SimulationError> for LambdaError {
    fn from(err: gillespie::SimulationError) -> Self {
        LambdaError::Simulation(err)
    }
}

impl From<numerics::NumericsError> for LambdaError {
    fn from(err: numerics::NumericsError) -> Self {
        LambdaError::Fit(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let cases: Vec<LambdaError> = vec![
            LambdaError::InvalidConfig {
                message: "no MOI values".into(),
            },
            crn::CrnError::EmptyReaction.into(),
            synthesis::SynthesisError::InvalidDistribution {
                message: "x".into(),
            }
            .into(),
            gillespie::SimulationError::EventLimitExceeded { limit: 1 }.into(),
            numerics::NumericsError::SingularSystem.into(),
        ];
        for err in &cases {
            assert!(!err.to_string().is_empty());
        }
        assert!(std::error::Error::source(&cases[1]).is_some());
        assert!(std::error::Error::source(&cases[0]).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LambdaError>();
    }
}
