//! MOI sweeps and response curves (the machinery behind Figure 5).

use crn::{Crn, State};
use gillespie::{
    Ensemble, EnsembleOptions, SimulationOptions, SpeciesThresholdClassifier, SsaMethod,
};
use numerics::{wilson_interval, ConfidenceInterval, LogLinearFit};
use serde::{Deserialize, Serialize};

use crate::error::LambdaError;
use crate::LYSOGENY;

/// A lambda-phage model that can be swept over MOI values.
///
/// Both the [`NaturalLambdaModel`](crate::NaturalLambdaModel) surrogate and
/// the [`SyntheticLambdaModel`](crate::SyntheticLambdaModel) implement this
/// trait, which is what lets [`MoiSweep`] produce the two curves of Figure 5
/// with the same code.
pub trait LambdaModel {
    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// The model's reaction network.
    fn crn(&self) -> &Crn;

    /// The initial state for a given multiplicity of infection.
    ///
    /// # Errors
    ///
    /// Implementations reject MOI values they cannot represent (e.g. zero).
    fn initial_state(&self, moi: u64) -> Result<State, LambdaError>;

    /// The outcome classifier (lysis vs lysogeny).
    ///
    /// # Errors
    ///
    /// Implementations return an error only if their own species are
    /// missing.
    fn classifier(&self) -> Result<SpeciesThresholdClassifier, LambdaError>;

    /// Per-trajectory simulation options (stop condition, event limit).
    fn simulation_options(&self) -> SimulationOptions;
}

/// One point of a response curve: the estimated probability of the tracked
/// outcome at a given MOI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponsePoint {
    /// The multiplicity of infection.
    pub moi: u64,
    /// Estimated probability of the tracked outcome.
    pub probability: f64,
    /// 95 % Wilson confidence interval of the estimate.
    pub confidence: ConfidenceInterval,
    /// Number of trajectories run.
    pub trials: u64,
    /// Number of trajectories that decided neither outcome.
    pub undecided: u64,
}

/// A Monte-Carlo response curve: tracked-outcome probability vs MOI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseCurve {
    model: String,
    outcome: String,
    points: Vec<ResponsePoint>,
}

impl ResponseCurve {
    /// Returns the name of the model that produced the curve.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Returns the tracked outcome label.
    pub fn outcome(&self) -> &str {
        &self.outcome
    }

    /// Returns the points of the curve, in MOI order.
    pub fn points(&self) -> &[ResponsePoint] {
        &self.points
    }

    /// Returns the `(moi, probability)` pairs of the curve.
    pub fn series(&self) -> Vec<(u64, f64)> {
        self.points.iter().map(|p| (p.moi, p.probability)).collect()
    }

    /// Fits the paper's Equation-14 form `a + b·log2(MOI) + c·MOI` (in
    /// percent) to the curve.
    ///
    /// # Errors
    ///
    /// Returns [`LambdaError::Fit`] if the curve has fewer than three points
    /// or the fit is singular.
    pub fn fit_log_linear(&self) -> Result<LogLinearFit, LambdaError> {
        let xs: Vec<f64> = self.points.iter().map(|p| p.moi as f64).collect();
        let ys: Vec<f64> = self.points.iter().map(|p| p.probability * 100.0).collect();
        Ok(LogLinearFit::fit(&xs, &ys)?)
    }

    /// Returns the maximum absolute difference (in probability) between this
    /// curve and another curve evaluated at the same MOI values.
    ///
    /// # Errors
    ///
    /// Returns [`LambdaError::InvalidConfig`] if the curves cover different
    /// MOI values.
    pub fn max_absolute_difference(&self, other: &ResponseCurve) -> Result<f64, LambdaError> {
        if self.points.len() != other.points.len()
            || self
                .points
                .iter()
                .zip(&other.points)
                .any(|(a, b)| a.moi != b.moi)
        {
            return Err(LambdaError::InvalidConfig {
                message: "curves cover different MOI values".into(),
            });
        }
        Ok(self
            .points
            .iter()
            .zip(&other.points)
            .map(|(a, b)| (a.probability - b.probability).abs())
            .fold(0.0, f64::max))
    }
}

/// A Monte-Carlo sweep over MOI values.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoiSweep {
    moi_values: Vec<u64>,
    trials: u64,
    master_seed: u64,
    threads: usize,
    method: SsaMethod,
    outcome: String,
}

impl MoiSweep {
    /// Creates a sweep over the given MOI values, tracking the lysogeny
    /// outcome (the quantity plotted in Figure 5).
    pub fn new<I>(moi_values: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        MoiSweep {
            moi_values: moi_values.into_iter().collect(),
            trials: 1_000,
            master_seed: 0,
            threads: 0,
            method: SsaMethod::Direct,
            outcome: LYSOGENY.to_string(),
        }
    }

    /// Sets the number of trajectories per MOI value (default 1000).
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed (default 0).
    pub fn master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Sets the number of worker threads (0 = one per CPU).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the SSA variant (default: direct method).
    pub fn method(mut self, method: SsaMethod) -> Self {
        self.method = method;
        self
    }

    /// Tracks a different outcome label (default: `"lysogeny"`).
    pub fn outcome(mut self, outcome: impl Into<String>) -> Self {
        self.outcome = outcome.into();
        self
    }

    /// Runs the sweep against a model.
    ///
    /// # Errors
    ///
    /// Returns [`LambdaError::InvalidConfig`] for an empty MOI list and
    /// propagates model and simulation errors.
    pub fn run<M: LambdaModel>(&self, model: &M) -> Result<ResponseCurve, LambdaError> {
        if self.moi_values.is_empty() {
            return Err(LambdaError::InvalidConfig {
                message: "the MOI sweep needs at least one MOI value".into(),
            });
        }
        if self.trials == 0 {
            return Err(LambdaError::InvalidConfig {
                message: "the MOI sweep needs at least one trial per point".into(),
            });
        }
        let mut points = Vec::with_capacity(self.moi_values.len());
        for (index, &moi) in self.moi_values.iter().enumerate() {
            let initial = model.initial_state(moi)?;
            let report = Ensemble::new(model.crn(), initial, model.classifier()?)
                .options(
                    EnsembleOptions::new()
                        .trials(self.trials)
                        .master_seed(self.master_seed.wrapping_add((index as u64) << 32))
                        .threads(self.threads)
                        .method(self.method)
                        .simulation(model.simulation_options()),
                )
                .run()?;
            let successes = report.count(&self.outcome);
            let confidence = wilson_interval(successes, self.trials, 0.95)?;
            points.push(ResponsePoint {
                moi,
                probability: report.probability(&self.outcome),
                confidence,
                trials: self.trials,
                undecided: report.undecided,
            });
        }
        Ok(ResponseCurve {
            model: model.name().to_string(),
            outcome: self.outcome.clone(),
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::natural::NaturalLambdaModel;

    #[test]
    fn sweep_produces_one_point_per_moi() {
        let model = NaturalLambdaModel::new().unwrap();
        let curve = MoiSweep::new([1u64, 2, 4])
            .trials(60)
            .master_seed(5)
            .run(&model)
            .unwrap();
        assert_eq!(curve.points().len(), 3);
        assert_eq!(curve.series().len(), 3);
        assert_eq!(curve.outcome(), LYSOGENY);
        assert_eq!(curve.model(), "natural (surrogate)");
        for point in curve.points() {
            assert_eq!(point.trials, 60);
            assert!(point.confidence.contains(point.probability));
        }
    }

    #[test]
    fn empty_or_trivial_sweeps_are_rejected() {
        let model = NaturalLambdaModel::new().unwrap();
        assert!(MoiSweep::new(Vec::<u64>::new()).run(&model).is_err());
        assert!(MoiSweep::new([1u64]).trials(0).run(&model).is_err());
    }

    #[test]
    fn curves_over_different_moi_sets_cannot_be_compared() {
        let model = NaturalLambdaModel::new().unwrap();
        let a = MoiSweep::new([1u64, 2]).trials(20).run(&model).unwrap();
        let b = MoiSweep::new([1u64, 3]).trials(20).run(&model).unwrap();
        assert!(a.max_absolute_difference(&b).is_err());
        assert_eq!(a.max_absolute_difference(&a).unwrap(), 0.0);
    }

    #[test]
    fn fit_requires_enough_points() {
        let model = NaturalLambdaModel::new().unwrap();
        let curve = MoiSweep::new([1u64, 2]).trials(20).run(&model).unwrap();
        assert!(curve.fit_log_linear().is_err());
    }

    #[test]
    fn tracking_lysis_complements_lysogeny() {
        let model = NaturalLambdaModel::new().unwrap();
        let lysogeny = MoiSweep::new([4u64])
            .trials(120)
            .master_seed(9)
            .run(&model)
            .unwrap();
        let lysis = MoiSweep::new([4u64])
            .trials(120)
            .master_seed(9)
            .outcome(crate::LYSIS)
            .run(&model)
            .unwrap();
        let total = lysogeny.points()[0].probability + lysis.points()[0].probability;
        assert!(
            (total - 1.0).abs() < 1e-9,
            "outcomes should partition trials, got {total}"
        );
    }
}
