//! Lambda bacteriophage lysis/lysogeny case study (Section 3 of the paper).
//!
//! The paper demonstrates its synthesis methodology by fitting the
//! probabilistic lysis/lysogeny response of the lambda bacteriophage and
//! re-implementing it with a synthesized 19-reaction network. This crate
//! contains both sides of that comparison:
//!
//! * [`NaturalLambdaModel`] — a reduced-order mechanistic *surrogate* for the
//!   Arkin/Ross/McAdams natural model (117 reactions, 61 species), whose
//!   parameters are not available in machine-readable form. The surrogate
//!   reproduces the same input/output behaviour the paper extracts from the
//!   natural model: an MOI-dependent probability of reaching the cI2
//!   threshold that rises from roughly 15 % at MOI 1 to roughly 37 % at
//!   MOI 10 (the paper's Equation 14).
//! * [`SyntheticLambdaModel`] — the synthesized response network built with
//!   [`synthesis::LogLinearSynthesizer`], plus [`figure4_verbatim`], the
//!   19-reaction network exactly as printed in the paper's Figure 4 for
//!   structural comparison.
//! * [`MoiSweep`] / [`ResponseCurve`] — the Monte-Carlo sweep over MOI used
//!   to produce Figure 5, including the Equation-14-style curve fit.
//!
//! # Example
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use lambda::{LambdaModel, MoiSweep, NaturalLambdaModel};
//!
//! let natural = NaturalLambdaModel::new()?;
//! let curve = MoiSweep::new(1..=10)
//!     .trials(500)
//!     .master_seed(7)
//!     .run(&natural)?;
//! let fit = curve.fit_log_linear()?;
//! println!("natural response ≈ {fit}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod natural;
mod response;
mod synthetic;

pub use error::LambdaError;
pub use natural::{NaturalLambdaModel, NaturalParameters};
pub use response::{LambdaModel, MoiSweep, ResponseCurve, ResponsePoint};
pub use synthetic::{figure4_verbatim, SyntheticLambdaModel};

use numerics::LogLinearFit;

/// The cro2 count above which a trajectory is classified as lysis (paper
/// value: 55).
pub const CRO2_THRESHOLD: u64 = 55;

/// The cI2 count above which a trajectory is classified as lysogeny (paper
/// value: 145).
pub const CI2_THRESHOLD: u64 = 145;

/// The outcome label used for lysis throughout this crate.
pub const LYSIS: &str = "lysis";

/// The outcome label used for lysogeny throughout this crate.
pub const LYSOGENY: &str = "lysogeny";

/// The paper's Equation 14: the probability (in percent) of reaching the cI2
/// threshold as a function of MOI,
/// `P = 15 + 6·log2(MOI) + MOI/6`.
///
/// # Example
///
/// ```
/// let eq14 = lambda::equation_14();
/// assert!((eq14.evaluate(1.0) - 15.1667).abs() < 1e-3);
/// assert!((eq14.evaluate(10.0) - 36.6).abs() < 0.2);
/// ```
pub fn equation_14() -> LogLinearFit {
    LogLinearFit::from_coefficients(15.0, 6.0, 1.0 / 6.0)
}
