//! Reduced-order surrogate for the natural lambda-phage switch.

use crn::{Crn, CrnBuilder, State};
use gillespie::{SimulationOptions, SpeciesThresholdClassifier, StopCondition};
use serde::{Deserialize, Serialize};

use crate::error::LambdaError;
use crate::response::LambdaModel;
use crate::{CI2_THRESHOLD, CRO2_THRESHOLD, LYSIS, LYSOGENY};

/// Rate parameters of the surrogate natural model.
///
/// The defaults are calibrated so that the probability of reaching the cI2
/// threshold rises from roughly 15 % at MOI 1 to roughly 37 % at MOI 10,
/// matching the response the paper extracts from the Arkin natural model
/// (its Equation 14). See [`NaturalLambdaModel`] for the mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NaturalParameters {
    /// Production rate of the cII-like signal per genome copy.
    pub signal_production: f64,
    /// Pairwise annihilation rate of the signal (protease/dimerisation),
    /// which makes the steady-state signal level scale like `√MOI`.
    pub signal_annihilation: f64,
    /// Rate at which the signal captures the host decision machinery and
    /// commits the cell to lysogeny.
    pub lysogenic_commitment: f64,
    /// Rate at which the host decision machinery commits to lysis on its
    /// own.
    pub lytic_commitment: f64,
    /// Rate of the readout (amplification) reactions producing cro2/ci2
    /// after commitment.
    pub readout: f64,
    /// Initial quantity of the cro2 precursor pool.
    pub cro2_pool: u64,
    /// Initial quantity of the ci2 precursor pool.
    pub ci2_pool: u64,
}

impl Default for NaturalParameters {
    fn default() -> Self {
        NaturalParameters {
            signal_production: 10.0,
            signal_annihilation: 1.0,
            lysogenic_commitment: 0.00275,
            lytic_commitment: 0.05,
            readout: 10.0,
            cro2_pool: 2 * CRO2_THRESHOLD,
            ci2_pool: 2 * CI2_THRESHOLD,
        }
    }
}

/// A reduced-order mechanistic surrogate for the natural lambda-phage
/// lysis/lysogeny switch.
///
/// ## Why a surrogate
///
/// The paper's "natural model" is the Arkin/Ross/McAdams stochastic kinetic
/// model: 117 reactions over 61 species whose full parameterisation is not
/// available in machine-readable form. The paper, however, uses that model
/// *only* as an input/output reference — it sweeps the MOI, records the
/// probability of reaching the cI2 threshold and fits Equation 14 to it.
/// This surrogate reproduces that input/output behaviour with a small
/// mechanistic switch so that every downstream step of the paper (Monte
/// Carlo sweep, curve fit, synthesis, comparison) exercises the same code
/// path against a meaningful reference.
///
/// ## Mechanism
///
/// ```text
/// g           -> g + m          (signal production: one cII-like burst per genome)
/// 2 m         -> ∅              (pairwise removal ⇒ steady state M ≈ √(k·MOI))
/// m + h       -> m + dlys       (the signal captures the single decision token h)
/// h           -> dlyt           (the host defaults to lysis at a constant rate)
/// dlys + pci  -> dlys + ci2     (readout amplification after commitment)
/// dlyt + pcro -> dlyt + cro2
/// ```
///
/// Because the host decision token `h` starts at exactly one molecule, each
/// trajectory commits exactly once; the probability of the lysogenic
/// commitment is `k_lys·M / (k_lys·M + k_lyt)`, which grows roughly like
/// `√MOI` — a concave, saturating response of the same shape as the natural
/// model's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaturalLambdaModel {
    crn: Crn,
    parameters: NaturalParameters,
}

impl NaturalLambdaModel {
    /// Builds the surrogate with the default calibrated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`LambdaError::Crn`] if network construction fails (it cannot
    /// for the default parameters).
    pub fn new() -> Result<Self, LambdaError> {
        NaturalLambdaModel::with_parameters(NaturalParameters::default())
    }

    /// Builds the surrogate with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`LambdaError::InvalidConfig`] for non-positive rates and
    /// [`LambdaError::Crn`] if network construction fails.
    pub fn with_parameters(parameters: NaturalParameters) -> Result<Self, LambdaError> {
        let rates = [
            parameters.signal_production,
            parameters.signal_annihilation,
            parameters.lysogenic_commitment,
            parameters.lytic_commitment,
            parameters.readout,
        ];
        if rates.iter().any(|r| !(r.is_finite() && *r > 0.0)) {
            return Err(LambdaError::InvalidConfig {
                message: "all natural-model rates must be finite and positive".into(),
            });
        }
        if parameters.cro2_pool < CRO2_THRESHOLD || parameters.ci2_pool < CI2_THRESHOLD {
            return Err(LambdaError::InvalidConfig {
                message: "precursor pools must be at least the outcome thresholds".into(),
            });
        }

        let mut b = CrnBuilder::new();
        let g = b.species("g");
        let m = b.species("m");
        let h = b.species("h");
        let dlys = b.species("dlys");
        let dlyt = b.species("dlyt");
        let pci = b.species("pci");
        let pcro = b.species("pcro");
        let ci2 = b.species("ci2");
        let cro2 = b.species("cro2");

        b.reaction()
            .reactant(g, 1)
            .product(g, 1)
            .product(m, 1)
            .rate(parameters.signal_production)
            .label("signal production")
            .add()?;
        b.reaction()
            .reactant(m, 2)
            .rate(parameters.signal_annihilation)
            .label("signal annihilation")
            .add()?;
        b.reaction()
            .reactant(m, 1)
            .reactant(h, 1)
            .product(m, 1)
            .product(dlys, 1)
            .rate(parameters.lysogenic_commitment)
            .label("lysogenic commitment")
            .add()?;
        b.reaction()
            .reactant(h, 1)
            .product(dlyt, 1)
            .rate(parameters.lytic_commitment)
            .label("lytic commitment")
            .add()?;
        b.reaction()
            .reactant(dlys, 1)
            .reactant(pci, 1)
            .product(dlys, 1)
            .product(ci2, 1)
            .rate(parameters.readout)
            .label("ci2 readout")
            .add()?;
        b.reaction()
            .reactant(dlyt, 1)
            .reactant(pcro, 1)
            .product(dlyt, 1)
            .product(cro2, 1)
            .rate(parameters.readout)
            .label("cro2 readout")
            .add()?;

        Ok(NaturalLambdaModel {
            crn: b.build()?,
            parameters,
        })
    }

    /// Returns the model's parameters.
    pub fn parameters(&self) -> &NaturalParameters {
        &self.parameters
    }

    /// Returns the model's reaction network.
    pub fn crn(&self) -> &Crn {
        &self.crn
    }
}

impl LambdaModel for NaturalLambdaModel {
    fn name(&self) -> &str {
        "natural (surrogate)"
    }

    fn crn(&self) -> &Crn {
        &self.crn
    }

    fn initial_state(&self, moi: u64) -> Result<State, LambdaError> {
        if moi == 0 {
            return Err(LambdaError::InvalidConfig {
                message: "MOI must be at least 1".into(),
            });
        }
        Ok(self.crn.state_from_counts([
            ("g", moi),
            ("h", 1),
            ("pci", self.parameters.ci2_pool),
            ("pcro", self.parameters.cro2_pool),
        ])?)
    }

    fn classifier(&self) -> Result<SpeciesThresholdClassifier, LambdaError> {
        Ok(SpeciesThresholdClassifier::new()
            .rule_named(&self.crn, "cro2", CRO2_THRESHOLD, LYSIS)?
            .rule_named(&self.crn, "ci2", CI2_THRESHOLD, LYSOGENY)?)
    }

    fn simulation_options(&self) -> SimulationOptions {
        let cro2 = self.crn.species_id("cro2").expect("cro2 exists");
        let ci2 = self.crn.species_id("ci2").expect("ci2 exists");
        SimulationOptions::new()
            .stop(StopCondition::any_of(vec![
                StopCondition::species_at_least(cro2, CRO2_THRESHOLD),
                StopCondition::species_at_least(ci2, CI2_THRESHOLD),
            ]))
            .max_events(5_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::MoiSweep;

    #[test]
    fn network_structure() {
        let model = NaturalLambdaModel::new().unwrap();
        assert_eq!(model.crn().reactions().len(), 6);
        assert_eq!(model.crn().species_len(), 9);
        assert_eq!(LambdaModel::name(&model), "natural (surrogate)");
    }

    #[test]
    fn initial_state_scales_with_moi() {
        let model = NaturalLambdaModel::new().unwrap();
        let state = model.initial_state(7).unwrap();
        assert_eq!(state.count(model.crn().species_id("g").unwrap()), 7);
        assert_eq!(state.count(model.crn().species_id("h").unwrap()), 1);
        assert!(model.initial_state(0).is_err());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let p = NaturalParameters {
            readout: 0.0,
            ..NaturalParameters::default()
        };
        assert!(NaturalLambdaModel::with_parameters(p).is_err());
        let p = NaturalParameters {
            ci2_pool: 10,
            ..NaturalParameters::default()
        };
        assert!(NaturalLambdaModel::with_parameters(p).is_err());
    }

    #[test]
    fn every_trajectory_decides_one_outcome() {
        let model = NaturalLambdaModel::new().unwrap();
        let curve = MoiSweep::new(3..=3)
            .trials(40)
            .master_seed(11)
            .run(&model)
            .unwrap();
        let point = &curve.points()[0];
        assert_eq!(point.undecided, 0);
        assert!(point.probability > 0.0 && point.probability < 1.0);
    }

    #[test]
    fn lysogeny_probability_increases_with_moi() {
        let model = NaturalLambdaModel::new().unwrap();
        let curve = MoiSweep::new([1u64, 10])
            .trials(250)
            .master_seed(3)
            .run(&model)
            .unwrap();
        let p1 = curve.points()[0].probability;
        let p10 = curve.points()[1].probability;
        assert!(
            p10 > p1 + 0.08,
            "expected a clear increase from MOI 1 ({p1:.3}) to MOI 10 ({p10:.3})"
        );
        // Rough calibration check against Equation 14 (15% and 37%).
        assert!((p1 - 0.15).abs() < 0.08, "MOI 1 probability {p1:.3}");
        assert!((p10 - 0.37).abs() < 0.10, "MOI 10 probability {p10:.3}");
    }
}
