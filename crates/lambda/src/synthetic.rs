//! The synthesized lambda-phage response model (Figure 4 of the paper).

use crn::{Crn, State};
use gillespie::{SimulationOptions, SpeciesThresholdClassifier};
use numerics::LogLinearFit;
use serde::{Deserialize, Serialize};
use synthesis::{LogLinearSynthesizer, SynthesizedResponse};

use crate::error::LambdaError;
use crate::response::LambdaModel;
use crate::{equation_14, CI2_THRESHOLD, CRO2_THRESHOLD, LYSIS, LYSOGENY};

/// Returns the 19-reaction, 17-species network exactly as printed in the
/// paper's Figure 4.
///
/// This network is provided for *structural* comparison (experiment E7 in
/// `DESIGN.md`): species and reaction counts, rate bands and reaction
/// categories. Note two quirks of the printed figure that are reproduced
/// verbatim here:
///
/// * the reinforcing reactions are printed as `e_i + d_i -> d_i` (they do
///   not double the catalyst as the generic stochastic module of Section 2.1
///   does), and
/// * the assimilation reactions move probability mass *away* from `e1`
///   (whose initial value encodes the constant 15 of Equation 14) as the
///   computed `log2`/linear terms grow, which is the opposite direction from
///   Equation 14 itself.
///
/// The behavioural model used for the Figure 5 reproduction is
/// [`SyntheticLambdaModel`], which follows Equation 14.
///
/// # Panics
///
/// Never panics; the network text is a compile-time constant that parses.
///
/// # Example
///
/// ```
/// let crn = lambda::figure4_verbatim();
/// assert_eq!(crn.reactions().len(), 19);
/// assert_eq!(crn.species_len(), 17);
/// ```
pub fn figure4_verbatim() -> Crn {
    const FIGURE_4: &str = "
        moi -> x1 + x2 @ 1e9          # fan-out
        6 x2 -> y1 @ 1e9              # linear
        b -> b + a @ 1e-3             # logarithm
        a + 2 x1 -> a + x1' + c @ 1e6 # logarithm
        2 c -> c @ 1e6                # logarithm
        a -> 0 @ 1e3                  # logarithm
        x1' -> x1 @ 1                 # logarithm
        c -> 6 y2 @ 1                 # linear
        e1 + y2 -> e2 @ 1e9           # assimilation
        e2 + y1 -> e1 @ 1e9           # assimilation
        e1 -> d1 @ 1e-9               # initializing
        e2 -> d2 @ 1e-9               # initializing
        e1 + d1 -> d1 @ 1             # reinforcing
        e2 + d2 -> d2 @ 1             # reinforcing
        e2 + d1 -> d1 @ 1             # stabilizing
        e1 + d2 -> d2 @ 1             # stabilizing
        d1 + d2 -> 0 @ 1e9            # purifying
        d1 + f1 -> d1 + cro2 @ 1e-9   # working
        d2 + f2 -> d2 + ci2 @ 1e-9    # working
    ";
    FIGURE_4
        .parse()
        .expect("the Figure 4 network text is well-formed")
}

/// The synthesized lambda-phage response model.
///
/// The model is produced by [`synthesis::LogLinearSynthesizer`] from a
/// log-linear response (by default the paper's Equation 14) with the
/// lysogeny outcome tracked: `P(cI2 ≥ 145) = a + b·log2(MOI) + c·MOI`
/// percent. Thresholds and food pools follow Section 3.2 of the paper
/// (cro2 ≥ 55 for lysis, cI2 ≥ 145 for lysogeny, food pools above the
/// thresholds).
///
/// # Example
///
/// ```no_run
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use lambda::{LambdaModel, MoiSweep, SyntheticLambdaModel};
///
/// let model = SyntheticLambdaModel::paper()?;
/// let curve = MoiSweep::new(1..=10).trials(500).run(&model)?;
/// println!("{:?}", curve.series());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticLambdaModel {
    response: SynthesizedResponse,
}

impl SyntheticLambdaModel {
    /// Synthesizes the model for the paper's Equation 14.
    ///
    /// # Errors
    ///
    /// Returns [`LambdaError::Synthesis`] if synthesis fails (it cannot for
    /// the paper's coefficients).
    pub fn paper() -> Result<Self, LambdaError> {
        SyntheticLambdaModel::from_fit(&equation_14())
    }

    /// Synthesizes the model for an arbitrary log-linear response (for
    /// example one fitted to the natural surrogate's Monte-Carlo data).
    ///
    /// # Errors
    ///
    /// Returns [`LambdaError::Synthesis`] if the coefficients cannot be
    /// realised (constant outside `[0, 100]`, unrealisable ratios).
    pub fn from_fit(fit: &LogLinearFit) -> Result<Self, LambdaError> {
        let response = LogLinearSynthesizer::new("moi", fit.clone())
            .outcomes(LYSOGENY, LYSIS)
            .outputs("ci2", "cro2")
            .thresholds(CI2_THRESHOLD, CRO2_THRESHOLD)
            .food(2 * CI2_THRESHOLD, 2 * CRO2_THRESHOLD)
            .synthesize()?;
        Ok(SyntheticLambdaModel { response })
    }

    /// Returns the underlying synthesized response.
    pub fn response(&self) -> &SynthesizedResponse {
        &self.response
    }

    /// Returns the probability of lysogeny predicted by the target response
    /// at the given MOI.
    pub fn predicted_probability(&self, moi: u64) -> f64 {
        self.response.predicted_probability(moi)
    }
}

impl LambdaModel for SyntheticLambdaModel {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn crn(&self) -> &Crn {
        self.response.crn()
    }

    fn initial_state(&self, moi: u64) -> Result<State, LambdaError> {
        if moi == 0 {
            return Err(LambdaError::InvalidConfig {
                message: "MOI must be at least 1".into(),
            });
        }
        Ok(self.response.initial_state(moi)?)
    }

    fn classifier(&self) -> Result<SpeciesThresholdClassifier, LambdaError> {
        Ok(self.response.classifier()?)
    }

    fn simulation_options(&self) -> SimulationOptions {
        self.response.simulation_options()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::MoiSweep;

    #[test]
    fn figure_4_structure_matches_the_paper() {
        let crn = figure4_verbatim();
        assert_eq!(crn.reactions().len(), 19);
        assert_eq!(crn.species_len(), 17);
        // Category counts as printed.
        let count = |label: &str| {
            crn.reactions()
                .iter()
                .filter(|r| r.label() == Some(label))
                .count()
        };
        assert_eq!(count("fan-out"), 1);
        assert_eq!(count("linear"), 2);
        assert_eq!(count("logarithm"), 5);
        assert_eq!(count("assimilation"), 2);
        assert_eq!(count("initializing"), 2);
        assert_eq!(count("reinforcing"), 2);
        assert_eq!(count("stabilizing"), 2);
        assert_eq!(count("purifying"), 1);
        assert_eq!(count("working"), 2);
        // Rate span 1e-9 .. 1e9.
        let summary = crn.summary();
        assert_eq!(summary.min_rate, 1e-9);
        assert_eq!(summary.max_rate, 1e9);
    }

    #[test]
    fn paper_model_predicts_equation_14() {
        let model = SyntheticLambdaModel::paper().unwrap();
        assert!((model.predicted_probability(1) - 0.1517).abs() < 0.01);
        assert!((model.predicted_probability(10) - 0.366).abs() < 0.01);
        assert_eq!(LambdaModel::name(&model), "synthetic");
        // Initial quantities follow Section 3.2: e1 = 15, e2 = 85.
        assert_eq!(model.response().initial_input_counts(), (15, 85));
    }

    #[test]
    fn initial_state_rejects_zero_moi() {
        let model = SyntheticLambdaModel::paper().unwrap();
        assert!(model.initial_state(0).is_err());
        assert!(model.initial_state(5).is_ok());
    }

    #[test]
    fn simulated_probability_tracks_the_prediction_at_low_moi() {
        // Keep this test cheap: a single MOI value and a modest trial count.
        let model = SyntheticLambdaModel::paper().unwrap();
        let curve = MoiSweep::new([1u64])
            .trials(120)
            .master_seed(21)
            .run(&model)
            .unwrap();
        let simulated = curve.points()[0].probability;
        let predicted = model.predicted_probability(1);
        assert!(
            (simulated - predicted).abs() < 0.12,
            "simulated {simulated:.3} vs predicted {predicted:.3}"
        );
    }

    #[test]
    fn custom_fit_changes_the_programmed_constant() {
        let fit = LogLinearFit::from_coefficients(40.0, 2.0, 0.5);
        let model = SyntheticLambdaModel::from_fit(&fit).unwrap();
        assert_eq!(model.response().initial_input_counts(), (40, 60));
        assert!((model.predicted_probability(1) - 0.405).abs() < 0.01);
    }
}
