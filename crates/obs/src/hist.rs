//! Lock-free log₂-bucketed latency histograms.
//!
//! A [`Histogram`] is 64 atomic buckets — bucket `i ≥ 1` counts values in
//! `[2^(i-1), 2^i)`, bucket 0 counts zeros, bucket 63 also absorbs the
//! unbounded tail — plus exact `count`/`sum`/`max` atomics. Recording is a
//! handful of relaxed atomic adds: safe to call from every worker thread on
//! the hot path, no locks, no allocation.
//!
//! Reading goes through [`HistogramSnapshot`]: a plain-integer copy that
//! [merges](HistogramSnapshot::merge) associatively and commutatively
//! (element-wise adds and a max), so per-shard histograms combine into
//! fleet-wide ones in any order. Quantiles come from the bucket boundaries:
//! [`quantile`](HistogramSnapshot::quantile) returns the upper bound of the
//! bucket holding the requested rank — within one power of two of the true
//! value by construction, and exact for `max`.

use std::sync::atomic::{AtomicU64, Ordering};

/// The number of log₂ buckets (one per `u64` bit position, plus zero).
pub const BUCKETS: usize = 64;

/// A lock-free log₂ histogram; see the [module docs](self).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket a value lands in: 0 for 0, else `64 - leading_zeros`,
/// capped at 63 so the top bucket absorbs the tail.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold (`u64::MAX` for the tail bucket).
fn bucket_upper_bound(index: usize) -> u64 {
    if index >= BUCKETS - 1 {
        u64::MAX
    } else if index == 0 {
        0
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (typically a duration in microseconds).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    pub fn record_duration(&self, duration: std::time::Duration) {
        self.record(u64::try_from(duration.as_micros()).unwrap_or(u64::MAX));
    }

    /// Copies the current state out.
    ///
    /// Individual loads are relaxed, so a snapshot taken while writers are
    /// active is not a single point in time — fine for monitoring, which is
    /// the only consumer.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-integer copy of a [`Histogram`], mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (wraps only past `u64::MAX` total).
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self`. Element-wise saturating adds and a max:
    /// associative and commutative, so any merge tree over any partition of
    /// the recordings yields the same snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the `⌈q·count⌉`-th smallest recording (clamped to the
    /// exact `max`), or 0 when empty. Within one log₂ bucket of the true
    /// order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(*bucket);
            if cumulative >= rank {
                return bucket_upper_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every bucket's upper bound lands back in that bucket.
        for index in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(index)), index, "{index}");
        }
    }

    #[test]
    fn records_and_estimates_quantiles_within_a_bucket() {
        let hist = Histogram::new();
        for value in [10u64, 20, 30, 40, 50, 1000, 2000, 4000, 8000, 100_000] {
            hist.record(value);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.max, 100_000);
        assert_eq!(snap.sum, 115_150);
        // p50: the 5th smallest value is 50 (bucket [32,64) → bound 63).
        assert_eq!(snap.p50(), 63);
        // p99 → rank 10 → the max's bucket, clamped to the exact max.
        assert_eq!(snap.p99(), 100_000);
        assert!((snap.mean() - 11_515.0).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let parts: Vec<HistogramSnapshot> = (0..3)
            .map(|part| {
                let hist = Histogram::new();
                for i in 0..50u64 {
                    hist.record(i * 37 + part * 1000);
                }
                hist.snapshot()
            })
            .collect();
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == c ⊕ a ⊕ b
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        assert_eq!(left, right);
        let mut shuffled = parts[2].clone();
        shuffled.merge(&parts[0]);
        shuffled.merge(&parts[1]);
        assert_eq!(left, shuffled);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let hist = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let hist = hist.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        hist.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 40_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 40_000);
        assert_eq!(snap.max, 39_999);
    }
}
