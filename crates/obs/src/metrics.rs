//! A typed registry of named counters, gauges and histograms.
//!
//! Series are registered by full name — optionally with embedded
//! Prometheus-style labels, e.g.
//! `http_requests_total{endpoint="simulate"}` — and handed out as `Arc`
//! handles, so hot paths bump plain atomics with no lookup. Registration is
//! idempotent: asking for an existing name returns the same handle, which
//! is what lets per-endpoint series be created lazily from request
//! handlers.
//!
//! [`MetricsRegistry::render_text`] emits a deterministic Prometheus-style
//! text exposition (`# TYPE` comments, series sorted by name, histograms as
//! summaries with `quantile` labels plus `_count`/`_sum`/`_max` lines).
//! Deterministic output keeps the endpoint testable; it is **not** part of
//! the byte-determinism contract — only result bodies are.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that is *set* to the current level rather than
/// accumulated (queue depth, in-flight jobs).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the current level.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct RegistryState {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A registry of named metrics; see the [module docs](self).
#[derive(Default)]
pub struct MetricsRegistry {
    state: Mutex<RegistryState>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("metrics registry");
        f.debug_struct("MetricsRegistry")
            .field("counters", &state.counters.len())
            .field("gauges", &state.gauges.len())
            .field("histograms", &state.histograms.len())
            .finish()
    }
}

/// Splits `series` into its base name and the `{...}` label block, if any.
fn split_labels(series: &str) -> (&str, Option<&str>) {
    match series.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (series, None),
    }
}

/// Re-assembles a series name with one extra label appended.
fn with_label(series: &str, key: &str, value: &str) -> String {
    let (base, labels) = split_labels(series);
    match labels {
        Some(labels) if !labels.is_empty() => format!("{base}{{{labels},{key}=\"{value}\"}}"),
        _ => format!("{base}{{{key}=\"{value}\"}}"),
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter named `series`, registering it on first use.
    pub fn counter(&self, series: &str) -> Arc<Counter> {
        let mut state = self.state.lock().expect("metrics registry");
        state
            .counters
            .entry(series.to_string())
            .or_insert_with(|| Arc::new(Counter::default()))
            .clone()
    }

    /// Returns the gauge named `series`, registering it on first use.
    pub fn gauge(&self, series: &str) -> Arc<Gauge> {
        let mut state = self.state.lock().expect("metrics registry");
        state
            .gauges
            .entry(series.to_string())
            .or_insert_with(|| Arc::new(Gauge::default()))
            .clone()
    }

    /// Returns the histogram named `series`, registering it on first use.
    pub fn histogram(&self, series: &str) -> Arc<Histogram> {
        let mut state = self.state.lock().expect("metrics registry");
        state
            .histograms
            .entry(series.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Every counter series and its value, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let state = self.state.lock().expect("metrics registry");
        state
            .counters
            .iter()
            .map(|(name, counter)| (name.clone(), counter.get()))
            .collect()
    }

    /// Every gauge series and its level, sorted by name.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        let state = self.state.lock().expect("metrics registry");
        state
            .gauges
            .iter()
            .map(|(name, gauge)| (name.clone(), gauge.get()))
            .collect()
    }

    /// Every histogram series and a snapshot, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let state = self.state.lock().expect("metrics registry");
        state
            .histograms
            .iter()
            .map(|(name, hist)| (name.clone(), hist.snapshot()))
            .collect()
    }

    /// Renders the Prometheus-style text exposition.
    ///
    /// `extra` appends pre-formatted gauge lines (for stats that live in
    /// other subsystems' snapshots rather than this registry); each entry
    /// is a `(series, value)` pair.
    pub fn render_text(&self, extra: &[(String, f64)]) -> String {
        let state = self.state.lock().expect("metrics registry");
        let mut out = String::new();
        let mut typed: BTreeMap<&str, &str> = BTreeMap::new();
        for name in state.counters.keys() {
            typed.entry(split_labels(name).0).or_insert("counter");
        }
        for name in state.gauges.keys() {
            typed.entry(split_labels(name).0).or_insert("gauge");
        }
        for name in state.histograms.keys() {
            typed.entry(split_labels(name).0).or_insert("summary");
        }
        for (name, value) in extra {
            typed.entry(split_labels(name).0).or_insert("gauge");
            let _ = value;
        }
        for (base, kind) in &typed {
            out.push_str(&format!("# TYPE {base} {kind}\n"));
            for (name, counter) in &state.counters {
                if split_labels(name).0 == *base {
                    out.push_str(&format!("{name} {}\n", counter.get()));
                }
            }
            for (name, gauge) in &state.gauges {
                if split_labels(name).0 == *base {
                    out.push_str(&format!("{name} {}\n", gauge.get()));
                }
            }
            for (name, value) in extra {
                if split_labels(name).0 == *base {
                    out.push_str(&format!("{name} {value}\n"));
                }
            }
            for (name, hist) in &state.histograms {
                if split_labels(name).0 != *base {
                    continue;
                }
                let snap = hist.snapshot();
                for (q, value) in [
                    ("0.5", snap.p50()),
                    ("0.9", snap.p90()),
                    ("0.99", snap.p99()),
                ] {
                    out.push_str(&format!("{} {value}\n", with_label(name, "quantile", q)));
                }
                let (hist_base, labels) = split_labels(name);
                let suffix = |stat: &str| match labels {
                    Some(labels) if !labels.is_empty() => format!("{hist_base}_{stat}{{{labels}}}"),
                    _ => format!("{hist_base}_{stat}"),
                };
                out.push_str(&format!("{} {}\n", suffix("count"), snap.count));
                out.push_str(&format!("{} {}\n", suffix("sum"), snap.sum));
                out.push_str(&format!("{} {}\n", suffix("max"), snap.max));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("requests_total");
        let b = registry.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("requests_total").get(), 3);
        assert_eq!(registry.counters(), vec![("requests_total".to_string(), 3)]);

        let gauge = registry.gauge("queue_depth");
        gauge.set(7);
        assert_eq!(registry.gauge("queue_depth").get(), 7);
    }

    #[test]
    fn text_exposition_is_deterministic_and_typed() {
        let registry = MetricsRegistry::new();
        registry
            .counter("http_requests_total{endpoint=\"simulate\"}")
            .add(4);
        registry
            .counter("http_requests_total{endpoint=\"check\"}")
            .inc();
        registry.gauge("scheduler_queue_depth").set(2);
        let hist = registry.histogram("request_duration_us{endpoint=\"simulate\"}");
        for v in [100u64, 200, 400] {
            hist.record(v);
        }
        let text = registry.render_text(&[("cache_entries".to_string(), 5.0)]);
        assert_eq!(
            text,
            registry.render_text(&[("cache_entries".to_string(), 5.0)])
        );
        assert!(
            text.contains("# TYPE http_requests_total counter\n"),
            "{text}"
        );
        // Sorted: check before simulate.
        let check = text.find("endpoint=\"check\"").unwrap();
        let simulate = text.find("endpoint=\"simulate\"").unwrap();
        assert!(check < simulate, "{text}");
        assert!(
            text.contains("http_requests_total{endpoint=\"simulate\"} 4\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE scheduler_queue_depth gauge\n"),
            "{text}"
        );
        assert!(text.contains("scheduler_queue_depth 2\n"), "{text}");
        assert!(text.contains("# TYPE cache_entries gauge\n"), "{text}");
        assert!(text.contains("cache_entries 5\n"), "{text}");
        assert!(
            text.contains("# TYPE request_duration_us summary\n"),
            "{text}"
        );
        assert!(
            text.contains("request_duration_us{endpoint=\"simulate\",quantile=\"0.5\"} 255\n"),
            "{text}"
        );
        assert!(
            text.contains("request_duration_us_count{endpoint=\"simulate\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("request_duration_us_max{endpoint=\"simulate\"} 400\n"),
            "{text}"
        );
    }

    #[test]
    fn labels_compose() {
        assert_eq!(
            with_label("d_us{endpoint=\"x\"}", "quantile", "0.5"),
            "d_us{endpoint=\"x\",quantile=\"0.5\"}"
        );
        assert_eq!(
            with_label("d_us", "quantile", "0.9"),
            "d_us{quantile=\"0.9\"}"
        );
    }
}
