//! Structured JSON-lines logging with per-target level filtering.
//!
//! One [`Logger`] (usually the process-wide [`logger()`]) owns a severity
//! floor, an ordered list of per-target overrides, an output format and a
//! writer. Events are emitted through [`Logger::log`] as either a
//! single-line JSON object (`--log-json` mode; every line parses as JSON
//! with `ts_us`/`level`/`target`/`event` keys) or a human-readable line.
//! Timestamps are **monotonic** microseconds since the logger was created —
//! wall clocks jump, monotonic clocks don't, and correlating log lines with
//! the latency histograms needs the same clock family.
//!
//! The logger is deliberately disabled (`Level::Off`) until configured, so
//! library users and the test suites pay one relaxed atomic load per call
//! site and produce no output unless a binary (or test) opts in.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Event severity, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained tracing (per-shard, per-chunk events).
    Trace = 0,
    /// Debug detail (per-request events).
    Debug = 1,
    /// Normal operational events.
    Info = 2,
    /// Unexpected but handled conditions.
    Warn = 3,
    /// Failures.
    Error = 4,
    /// Logging disabled.
    Off = 5,
}

impl Level {
    /// Parses a level name (case-insensitive).
    pub fn parse(text: &str) -> Option<Level> {
        match text.to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            "off" | "none" => Some(Level::Off),
            _ => None,
        }
    }

    /// The canonical lower-case name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
            Level::Off => "off",
        }
    }

    fn from_u8(raw: u8) -> Level {
        match raw {
            0 => Level::Trace,
            1 => Level::Debug,
            2 => Level::Info,
            3 => Level::Warn,
            4 => Level::Error,
            _ => Level::Off,
        }
    }
}

/// A typed field value attached to a log event.
///
/// Rendering is deterministic (Rust's shortest-round-trip float formatting,
/// the same JSON string escaping as the service's writer), so captured log
/// output is stable enough to assert on in tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string field.
    Str(String),
    /// An unsigned integer field (ids, counts, microseconds).
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A float field. Non-finite values render as `null`.
    F64(f64),
    /// A boolean field.
    Bool(bool),
}

impl Value {
    /// Builds a string field.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    fn render_json(&self, out: &mut String) {
        match self {
            Value::Str(s) => escape_json(s, out),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(n) if n.is_finite() => out.push_str(&format!("{n}")),
            Value::F64(_) => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }

    fn render_human(&self, out: &mut String) {
        match self {
            Value::Str(s) => out.push_str(s),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(n) => out.push_str(&format!("{n}")),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// Escapes `s` as a JSON string literal (including the quotes) onto `out`.
fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct LoggerState {
    /// The default severity floor.
    global: Level,
    /// Per-target overrides, most specific (longest) prefix first.
    overrides: Vec<(String, Level)>,
    /// Emit JSON lines instead of human-readable text.
    json: bool,
    /// Where lines go (stderr unless a test injected a buffer).
    writer: Box<dyn Write + Send>,
}

/// A structured logger; see the [module docs](self).
pub struct Logger {
    start: Instant,
    /// The lowest enabled level across the global floor and every override
    /// — the one relaxed load that makes disabled call sites nearly free.
    floor: AtomicU8,
    state: Mutex<LoggerState>,
}

impl Default for Logger {
    fn default() -> Self {
        Logger::new()
    }
}

impl Logger {
    /// Creates a disabled logger writing to stderr.
    pub fn new() -> Logger {
        Logger {
            start: Instant::now(),
            floor: AtomicU8::new(Level::Off as u8),
            state: Mutex::new(LoggerState {
                global: Level::Off,
                overrides: Vec::new(),
                json: false,
                writer: Box::new(std::io::stderr()),
            }),
        }
    }

    /// Applies a level spec: a default level optionally followed by
    /// per-target overrides, e.g. `info` or `info,service::fabric=trace`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed clause.
    pub fn set_level_spec(&self, spec: &str) -> Result<(), String> {
        let mut global = None;
        let mut overrides = Vec::new();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            match clause.split_once('=') {
                Some((target, level)) => {
                    let level = Level::parse(level)
                        .ok_or_else(|| format!("unknown log level `{level}` in `{clause}`"))?;
                    overrides.push((target.trim().to_string(), level));
                }
                None => {
                    let level = Level::parse(clause)
                        .ok_or_else(|| format!("unknown log level `{clause}`"))?;
                    if global.replace(level).is_some() {
                        return Err(format!("duplicate default level in `{spec}`"));
                    }
                }
            }
        }
        // Longest prefix first, so the most specific override wins.
        overrides.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
        let mut state = self.state.lock().expect("logger state");
        state.global = global.unwrap_or(state.global);
        state.overrides = overrides;
        let floor = state
            .overrides
            .iter()
            .map(|(_, level)| *level)
            .chain([state.global])
            .min()
            .unwrap_or(Level::Off);
        self.floor.store(floor as u8, Ordering::Relaxed);
        Ok(())
    }

    /// Switches between JSON-lines and human-readable output.
    pub fn set_json(&self, json: bool) {
        self.state.lock().expect("logger state").json = json;
    }

    /// Replaces the writer (tests inject a buffer to capture output).
    pub fn set_writer(&self, writer: Box<dyn Write + Send>) {
        self.state.lock().expect("logger state").writer = writer;
    }

    /// The effective level for `target` (most specific prefix override,
    /// else the global floor).
    fn effective_level(state: &LoggerState, target: &str) -> Level {
        state
            .overrides
            .iter()
            .find(|(prefix, _)| target.starts_with(prefix.as_str()))
            .map(|(_, level)| *level)
            .unwrap_or(state.global)
    }

    /// Whether an event at `level` for `target` would be emitted.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        if level < Level::from_u8(self.floor.load(Ordering::Relaxed)) {
            return false;
        }
        let state = self.state.lock().expect("logger state");
        level >= Self::effective_level(&state, target)
    }

    /// Monotonic microseconds since the logger was created.
    pub fn uptime_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Emits one structured event.
    ///
    /// `target` names the subsystem (`service::scheduler`), `event` the
    /// occurrence (`job_completed`), and `fields` carry the payload; by
    /// convention a correlation id travels in a `corr` field so every line
    /// of one job can be grepped out of interleaved output.
    pub fn log(&self, level: Level, target: &str, event: &str, fields: &[(&str, Value)]) {
        if level == Level::Off || level < Level::from_u8(self.floor.load(Ordering::Relaxed)) {
            return;
        }
        let ts_us = self.uptime_us();
        let mut state = self.state.lock().expect("logger state");
        if level < Self::effective_level(&state, target) {
            return;
        }
        let mut line = String::with_capacity(96);
        if state.json {
            line.push_str(&format!(
                "{{\"ts_us\":{ts_us},\"level\":\"{}\",\"target\":",
                level.as_str()
            ));
            escape_json(target, &mut line);
            line.push_str(",\"event\":");
            escape_json(event, &mut line);
            for (key, value) in fields {
                line.push(',');
                escape_json(key, &mut line);
                line.push(':');
                value.render_json(&mut line);
            }
            line.push('}');
        } else {
            line.push_str(&format!(
                "{ts_us:>10}us {:<5} {target} {event}",
                level.as_str()
            ));
            for (key, value) in fields {
                line.push(' ');
                line.push_str(key);
                line.push('=');
                value.render_human(&mut line);
            }
        }
        line.push('\n');
        // A broken pipe on stderr must not take the service down.
        let _ = state.writer.write_all(line.as_bytes());
        let _ = state.writer.flush();
    }
}

/// The process-wide logger, disabled until a binary or test configures it.
pub fn logger() -> &'static Logger {
    static GLOBAL: OnceLock<Logger> = OnceLock::new();
    GLOBAL.get_or_init(Logger::new)
}

/// Emits an event on the [global logger](logger).
pub fn event(level: Level, target: &str, event: &str, fields: &[(&str, Value)]) {
    logger().log(level, target, event, fields);
}

/// A `Write` implementation appending to a shared buffer; tests install it
/// via [`Logger::set_writer`] to capture output.
#[derive(Clone, Default)]
pub struct BufferWriter {
    buffer: std::sync::Arc<Mutex<Vec<u8>>>,
}

impl BufferWriter {
    /// Creates an empty capture buffer.
    pub fn new() -> BufferWriter {
        BufferWriter::default()
    }

    /// The captured bytes so far, as UTF-8 text.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.buffer.lock().expect("log buffer")).into_owned()
    }
}

impl Write for BufferWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buffer
            .lock()
            .expect("log buffer")
            .extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(logger: &Logger) -> BufferWriter {
        let buffer = BufferWriter::new();
        logger.set_writer(Box::new(buffer.clone()));
        buffer
    }

    #[test]
    fn disabled_by_default() {
        let logger = Logger::new();
        let buffer = capture(&logger);
        logger.log(Level::Error, "t", "boom", &[]);
        assert!(!logger.enabled(Level::Error, "t"));
        assert_eq!(buffer.contents(), "");
    }

    #[test]
    fn level_spec_filters_per_target() {
        let logger = Logger::new();
        let buffer = capture(&logger);
        logger
            .set_level_spec("warn,service::fabric=trace,service=info")
            .unwrap();
        assert!(logger.enabled(Level::Trace, "service::fabric::dispatch"));
        assert!(logger.enabled(Level::Info, "service::scheduler"));
        assert!(!logger.enabled(Level::Debug, "service::scheduler"));
        assert!(!logger.enabled(Level::Info, "gillespie"));
        assert!(logger.enabled(Level::Warn, "gillespie"));

        logger.log(Level::Trace, "service::fabric", "dispatch", &[]);
        logger.log(Level::Trace, "gillespie", "ignored", &[]);
        let text = buffer.contents();
        assert!(text.contains("dispatch"), "{text}");
        assert!(!text.contains("ignored"), "{text}");
    }

    #[test]
    fn rejects_malformed_specs() {
        let logger = Logger::new();
        assert!(logger.set_level_spec("nope").is_err());
        assert!(logger.set_level_spec("info,x=nope").is_err());
        assert!(logger.set_level_spec("info,debug").is_err());
        assert!(logger.set_level_spec("info, service=trace ").is_ok());
    }

    #[test]
    fn json_lines_parse_and_carry_required_keys() {
        let logger = Logger::new();
        let buffer = capture(&logger);
        logger.set_level_spec("info").unwrap();
        logger.set_json(true);
        logger.log(
            Level::Info,
            "service::app",
            "request \"quoted\"",
            &[
                ("corr", Value::U64(17)),
                ("path", Value::str("/simulate")),
                ("ok", Value::Bool(true)),
                ("ratio", Value::F64(0.5)),
                ("bad", Value::F64(f64::NAN)),
            ],
        );
        let text = buffer.contents();
        let line = text.lines().next().expect("one line");
        assert!(line.starts_with("{\"ts_us\":"), "{line}");
        assert!(line.contains("\"level\":\"info\""), "{line}");
        assert!(line.contains("\"target\":\"service::app\""), "{line}");
        assert!(
            line.contains("\"event\":\"request \\\"quoted\\\"\""),
            "{line}"
        );
        assert!(line.contains("\"corr\":17"), "{line}");
        assert!(line.contains("\"ratio\":0.5"), "{line}");
        assert!(line.contains("\"bad\":null"), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }

    #[test]
    fn human_format_is_one_line_per_event() {
        let logger = Logger::new();
        let buffer = capture(&logger);
        logger.set_level_spec("debug").unwrap();
        logger.log(
            Level::Debug,
            "t",
            "evt",
            &[("n", Value::I64(-3)), ("s", Value::str("x"))],
        );
        let text = buffer.contents();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("debug"), "{text}");
        assert!(text.contains("n=-3"), "{text}");
        assert!(text.contains("s=x"), "{text}");
    }

    #[test]
    fn level_parsing_round_trips() {
        for level in [
            Level::Trace,
            Level::Debug,
            Level::Info,
            Level::Warn,
            Level::Error,
            Level::Off,
        ] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("verbose"), None);
    }
}
