//! Dependency-free observability primitives for the stochsynth workspace.
//!
//! The service promises byte-identical result bodies for a fixed request —
//! across thread counts, cluster shapes and retry patterns — so its
//! telemetry has to be strictly *read-only* with respect to results: no
//! RNG draws, no reordering of merges, no bytes appended to cached bodies.
//! This crate provides the four primitives the stack instruments itself
//! with under that constraint:
//!
//! * [`log`] — structured JSON-lines logging behind a global [`Logger`]
//!   with per-target level filtering and writer injection for tests;
//! * [`hist`] — lock-free log₂-bucketed latency [`Histogram`]s with
//!   mergeable snapshots and quantile estimates (p50/p90/p99/max);
//! * [`metrics`] — a typed [`MetricsRegistry`] of named counters, gauges
//!   and histograms with a deterministic Prometheus-style text exposition;
//! * [`trace`] — bounded in-memory trace-span recording ([`TraceSink`])
//!   with **deterministic span ids** (FNV-1a over trace id + span name +
//!   index, never the RNG) and the `X-Stochsynth-Trace` header codec
//!   ([`TraceContext`]) that carries a span tree coordinator → worker.
//!
//! Everything here is plain `std`: the workspace builds without crates.io
//! access, and observability must not drag dependencies into the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod log;
pub mod metrics;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use log::{logger, Level, Logger, Value};
pub use metrics::{Counter, Gauge, MetricsRegistry};
pub use trace::{span_id, Span, TraceContext, TraceSink};
