//! Bounded in-memory trace spans with deterministic ids.
//!
//! A [`Span`] is one timed operation inside a trace: parsing a request,
//! waiting in the scheduler queue, dispatching a shard, merging partials.
//! Spans form a tree through `parent` references and are recorded into a
//! [`TraceSink`] — a bounded ring buffer the service queries per trace id
//! (`GET /trace/:job_id`).
//!
//! **Span ids are deterministic**: [`span_id`] hashes the trace id, span
//! name and an index with FNV-1a. Nothing here touches the simulation RNG
//! or influences scheduling, which is what keeps the hard invariant — the
//! result bytes are identical with tracing on or off — trivially true. It
//! also means a parent's id is *computable* before the child runs, so a
//! coordinator can stamp the `X-Stochsynth-Trace` header
//! ([`TraceContext`]) with the dispatch span's id and the worker's spans
//! attach to the right node of the coordinator's tree.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// FNV-1a over `bytes` (the same parameters the service cache uses).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The deterministic id of span `name` number `index` of trace `trace_id`.
///
/// A pure function of its inputs — never the RNG, never a timestamp — so
/// re-running a job produces the same tree topology and a worker can be
/// told its parent's id before the parent span is even recorded.
pub fn span_id(trace_id: &str, name: &str, index: u64) -> u64 {
    let mut bytes = Vec::with_capacity(trace_id.len() + name.len() + 9);
    bytes.extend_from_slice(trace_id.as_bytes());
    bytes.push(0xff);
    bytes.extend_from_slice(name.as_bytes());
    bytes.push(0xff);
    bytes.extend_from_slice(&index.to_le_bytes());
    fnv1a(&bytes)
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The trace this span belongs to (the coordinator's job id, as text).
    pub trace_id: String,
    /// This span's deterministic id (see [`span_id`]).
    pub id: u64,
    /// The parent span's id, `None` for the root.
    pub parent: Option<u64>,
    /// Operation name (`parse`, `schedule-wait`, `shard[0..250)`, …).
    pub name: String,
    /// Start, in the sink's monotonic microseconds.
    pub start_us: u64,
    /// End, in the sink's monotonic microseconds.
    pub end_us: u64,
    /// Attribute key/value pairs (classifier report, profile counts, …).
    pub attrs: Vec<(String, String)>,
}

/// A bounded ring buffer of recorded spans; see the [module docs](self).
pub struct TraceSink {
    start: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<Span>>,
}

impl TraceSink {
    /// Creates a sink retaining at most `capacity` spans (oldest evicted).
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink {
            start: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Monotonic microseconds since the sink was created — the clock every
    /// recorded span's `start_us`/`end_us` is expressed in.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records one span, evicting the oldest if the ring is full.
    pub fn record(&self, span: Span) {
        let mut ring = self.ring.lock().expect("trace ring");
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// Every retained span of `trace_id`, ordered by start time (id breaks
    /// ties), parents before their children on equal timestamps.
    pub fn spans(&self, trace_id: &str) -> Vec<Span> {
        let ring = self.ring.lock().expect("trace ring");
        let mut spans: Vec<Span> = ring
            .iter()
            .filter(|span| span.trace_id == trace_id)
            .cloned()
            .collect();
        spans.sort_by(|a, b| {
            a.start_us
                .cmp(&b.start_us)
                .then_with(|| a.parent.is_some().cmp(&b.parent.is_some()))
                .then_with(|| a.id.cmp(&b.id))
        });
        spans
    }

    /// The number of spans currently retained (all traces).
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring").len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The wire form of a trace hop: `X-Stochsynth-Trace: <trace_id>;<parent>`.
///
/// A coordinator stamps the header on every shard dispatch; the worker
/// parses it and records its shard-execution spans under the coordinator's
/// trace id, parented to the dispatch span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceContext {
    /// The originating trace id.
    pub trace_id: String,
    /// The id of the span on the sending side that this hop nests under.
    pub parent: u64,
}

impl TraceContext {
    /// Renders the header value.
    pub fn header_value(&self) -> String {
        format!("{};{:016x}", self.trace_id, self.parent)
    }

    /// Parses a header value; `None` when malformed.
    pub fn parse(value: &str) -> Option<TraceContext> {
        let (trace_id, parent) = value.split_once(';')?;
        let trace_id = trace_id.trim();
        if trace_id.is_empty() || trace_id.len() > 128 {
            return None;
        }
        let parent = u64::from_str_radix(parent.trim(), 16).ok()?;
        Some(TraceContext {
            trace_id: trace_id.to_string(),
            parent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_deterministic_and_distinct() {
        assert_eq!(span_id("17", "shard", 0), span_id("17", "shard", 0));
        assert_ne!(span_id("17", "shard", 0), span_id("17", "shard", 1));
        assert_ne!(span_id("17", "shard", 0), span_id("18", "shard", 0));
        assert_ne!(span_id("17", "shard", 0), span_id("17", "merge", 0));
        // The separator prevents gluing ambiguity: ("ab","c") != ("a","bc").
        assert_ne!(span_id("ab", "c", 0), span_id("a", "bc", 0));
    }

    fn span(trace: &str, name: &str, start: u64) -> Span {
        Span {
            trace_id: trace.to_string(),
            id: span_id(trace, name, 0),
            parent: None,
            name: name.to_string(),
            start_us: start,
            end_us: start + 10,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn sink_filters_by_trace_and_sorts_by_start() {
        let sink = TraceSink::new(16);
        sink.record(span("1", "b", 20));
        sink.record(span("1", "a", 10));
        sink.record(span("2", "other", 5));
        let spans = sink.spans("1");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].name, "b");
        assert!(sink.spans("3").is_empty());
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let sink = TraceSink::new(3);
        for i in 0..5u64 {
            sink.record(span("1", &format!("s{i}"), i));
        }
        assert_eq!(sink.len(), 3);
        let names: Vec<String> = sink.spans("1").into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["s2", "s3", "s4"]);
    }

    #[test]
    fn trace_context_round_trips_through_the_header() {
        let context = TraceContext {
            trace_id: "42".to_string(),
            parent: span_id("42", "dispatch", 3),
        };
        let parsed = TraceContext::parse(&context.header_value()).unwrap();
        assert_eq!(parsed, context);
        assert!(TraceContext::parse("").is_none());
        assert!(TraceContext::parse("no-separator").is_none());
        assert!(TraceContext::parse(";abc").is_none());
        assert!(TraceContext::parse("id;not-hex").is_none());
    }
}
