//! Property tests for the histogram algebra: `merge` must be associative
//! and commutative (fabric shards fold per-worker histograms in arbitrary
//! order), and quantile estimates must stay within one log₂ bucket of the
//! true order statistic.

use obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let hist = Histogram::new();
    for &value in values {
        hist.record(value);
    }
    hist.snapshot()
}

/// The log₂ bucket bounds `[lower, upper]` the value `v` falls in.
fn bucket_bounds(v: u64) -> (u64, u64) {
    if v == 0 {
        (0, 0)
    } else {
        let index = (64 - v.leading_zeros()).min(63);
        let lower = 1u64 << (index - 1);
        let upper = if index >= 63 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        };
        (lower, upper)
    }
}

proptest! {
    /// Any parenthesisation and any order of merging shard snapshots
    /// yields the same combined snapshot.
    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..1_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000, 0..40),
        c in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // ((a ⊕ b) ⊕ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // (a ⊕ (b ⊕ c))
        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        // (c ⊕ b ⊕ a): full reorder.
        let mut reordered = sc.clone();
        reordered.merge(&sb);
        reordered.merge(&sa);
        prop_assert_eq!(&left, &reordered);

        // Merging equals recording everything into one histogram.
        let mut all: Vec<u64> = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &snapshot_of(&all));
    }

    /// Quantile estimates land inside the bucket of the true order
    /// statistic — i.e. within one power of two — and `quantile(1.0)`
    /// is the exact max.
    #[test]
    fn quantiles_are_within_one_bucket_of_the_truth(
        values in prop::collection::vec(0u64..10_000_000, 1..80),
        q in 0.0f64..1.0,
    ) {
        let snap = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();

        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let estimate = snap.quantile(q);
        let (lower, upper) = bucket_bounds(truth);
        prop_assert!(
            estimate >= lower && estimate <= upper.min(snap.max),
            "estimate {estimate} outside bucket [{lower}, {upper}] of true value {truth}"
        );
        prop_assert_eq!(snap.quantile(1.0), *sorted.last().unwrap());
    }
}
