//! Property-based tests of the CRN data model.

use crn::{Crn, CrnBuilder, Reaction, ReactionTerm, SpeciesId, State};
use proptest::prelude::*;

/// Strategy: a small species index.
fn species_index() -> impl Strategy<Value = usize> {
    0usize..6
}

/// Strategy: a list of reaction terms over a small species universe.
fn terms() -> impl Strategy<Value = Vec<(usize, u32)>> {
    prop::collection::vec((species_index(), 1u32..4), 0..4)
}

/// Strategy: a valid reaction (at least one term overall, positive rate).
fn reaction() -> impl Strategy<Value = Reaction> {
    (terms(), terms(), 1e-6f64..1e6)
        .prop_filter("reaction must have at least one term", |(r, p, _)| {
            !r.is_empty() || !p.is_empty()
        })
        .prop_map(|(reactants, products, rate)| {
            Reaction::new(
                reactants
                    .into_iter()
                    .map(|(s, c)| ReactionTerm::new(SpeciesId::from_index(s), c))
                    .collect(),
                products
                    .into_iter()
                    .map(|(s, c)| ReactionTerm::new(SpeciesId::from_index(s), c))
                    .collect(),
                rate,
            )
            .expect("valid reaction")
        })
}

/// Strategy: a state over the same species universe with generous counts.
fn state() -> impl Strategy<Value = State> {
    prop::collection::vec(0u64..50, 6).prop_map(State::from_counts)
}

proptest! {
    /// The order of a reaction equals the sum of its reactant coefficients,
    /// even after duplicate-term merging.
    #[test]
    fn order_equals_total_reactant_stoichiometry(r in reaction()) {
        let total: u32 = r.reactants().iter().map(|t| t.coefficient).sum();
        prop_assert_eq!(r.order(), total);
    }

    /// Reactant terms are sorted by species and mention each species at most
    /// once after merging.
    #[test]
    fn terms_are_sorted_and_deduplicated(r in reaction()) {
        for side in [r.reactants(), r.products()] {
            for pair in side.windows(2) {
                prop_assert!(pair[0].species < pair[1].species);
            }
        }
    }

    /// `can_fire` exactly predicts whether `apply` succeeds, and a successful
    /// apply changes every species by exactly its net change.
    #[test]
    fn apply_agrees_with_can_fire_and_net_change(r in reaction(), s in state()) {
        let can = s.can_fire(&r);
        let mut next = s.clone();
        match next.apply(&r) {
            Ok(()) => {
                prop_assert!(can);
                for idx in 0..s.species_len() {
                    let sp = SpeciesId::from_index(idx);
                    let delta = next.count(sp) as i64 - s.count(sp) as i64;
                    prop_assert_eq!(delta, r.net_change(sp));
                }
            }
            Err(_) => {
                prop_assert!(!can);
                prop_assert_eq!(&next, &s, "failed apply must not modify the state");
            }
        }
    }

    /// Rendering a reaction through a network and re-parsing it preserves
    /// the structure (species counts, coefficients, rates).
    #[test]
    fn network_text_round_trips(reactions in prop::collection::vec(reaction(), 1..6)) {
        let mut builder = CrnBuilder::new();
        for i in 0..6 {
            builder.species(format!("sp{i}"));
        }
        let mut kept = 0usize;
        for r in &reactions {
            if builder.push_reaction(r.clone()).is_ok() {
                kept += 1;
            }
        }
        prop_assume!(kept > 0);
        let crn = builder.build().expect("valid network");
        let reparsed: Crn = crn.to_text().parse().expect("round trip parse");
        prop_assert_eq!(reparsed.reactions().len(), crn.reactions().len());
        for (a, b) in crn.reactions().iter().zip(reparsed.reactions()) {
            prop_assert_eq!(a.order(), b.order());
            prop_assert!((a.rate() - b.rate()).abs() <= a.rate() * 1e-12);
            prop_assert_eq!(a.reactants().len(), b.reactants().len());
            prop_assert_eq!(a.products().len(), b.products().len());
        }
    }

    /// Every conservation law reported by the stoichiometry analysis is
    /// genuinely invariant under every reaction of the network.
    #[test]
    fn conservation_laws_are_invariant(reactions in prop::collection::vec(reaction(), 1..5)) {
        let mut builder = CrnBuilder::new();
        for i in 0..6 {
            builder.species(format!("sp{i}"));
        }
        for r in &reactions {
            let _ = builder.push_reaction(r.clone());
        }
        let crn = builder.build().expect("valid network");
        let stoichiometry = crn.stoichiometry();
        for law in stoichiometry.conservation_laws() {
            for idx in 0..crn.reactions().len() {
                let delta: i64 = law
                    .weights()
                    .map(|(sp, w)| w * stoichiometry.net_change(sp, idx))
                    .sum();
                prop_assert_eq!(delta, 0, "law {} violated by reaction {}", law, idx);
            }
        }
    }

    /// Merging a network with itself never loses reactions and never
    /// duplicates species.
    #[test]
    fn merge_with_self_preserves_species(reactions in prop::collection::vec(reaction(), 1..5)) {
        let mut builder = CrnBuilder::new();
        for i in 0..6 {
            builder.species(format!("sp{i}"));
        }
        for r in &reactions {
            let _ = builder.push_reaction(r.clone());
        }
        let crn = builder.build().expect("valid network");
        let merged = crn.merge(&crn).expect("merge");
        prop_assert_eq!(merged.species_len(), crn.species_len());
        prop_assert_eq!(merged.reactions().len(), 2 * crn.reactions().len());
    }

    /// `parse → Display → parse` round-trips on generated networks: the
    /// textual notation is a faithful serialisation of the data model
    /// (species order, stoichiometry, rates and labels all survive).
    #[test]
    fn parse_display_parse_round_trips(
        reactions in prop::collection::vec((terms(), terms(), 1e-6f64..1e6), 1..6),
        label_every in 1usize..4,
    ) {
        // Render generated reactions in the textual notation directly; a
        // fraction of them carry trailing comments, which become labels.
        let mut text = String::new();
        let mut any = false;
        for (i, (reactants, products, rate)) in reactions.iter().enumerate() {
            if reactants.is_empty() && products.is_empty() {
                continue;
            }
            any = true;
            let side = |terms: &[(usize, u32)]| -> String {
                if terms.is_empty() {
                    return "0".to_string();
                }
                terms
                    .iter()
                    .map(|&(s, c)| if c == 1 {
                        format!("sp{s}")
                    } else {
                        format!("{c} sp{s}")
                    })
                    .collect::<Vec<_>>()
                    .join(" + ")
            };
            text.push_str(&format!("{} -> {} @ {}", side(reactants), side(products), rate));
            if i % label_every == 0 {
                text.push_str(&format!("  # label {i}"));
            }
            text.push('\n');
        }
        prop_assume!(any);
        let first: Crn = text.parse().expect("generated notation parses");
        // `Display` is the canonical serialisation…
        let rendered = format!("{first}");
        let second: Crn = rendered.parse().expect("rendered notation parses");
        // …and a fixed point: parse → Display → parse is the identity.
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(rendered.clone(), format!("{second}"));
    }

    /// The dependency graph always lists the fired reaction among its own
    /// dependents and never points outside the reaction set.
    #[test]
    fn dependency_graph_is_well_formed(reactions in prop::collection::vec(reaction(), 1..6)) {
        let mut builder = CrnBuilder::new();
        for i in 0..6 {
            builder.species(format!("sp{i}"));
        }
        for r in &reactions {
            let _ = builder.push_reaction(r.clone());
        }
        let crn = builder.build().expect("valid network");
        let graph = crn.dependency_graph();
        prop_assert_eq!(graph.len(), crn.reactions().len());
        for idx in 0..graph.len() {
            let deps = graph.dependents(idx);
            prop_assert!(deps.contains(&idx), "reaction {} must depend on itself", idx);
            prop_assert!(deps.iter().all(|&d| d < graph.len()));
        }
    }
}
