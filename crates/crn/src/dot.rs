//! Graphviz (DOT) export of reaction networks.
//!
//! Synthesized networks are easiest to review as a bipartite species/reaction
//! graph. [`Crn::to_dot`] renders one: species are ellipses, reactions are
//! boxes labelled with their rate (and category label when present), and
//! edges carry stoichiometric coefficients greater than one.

use std::fmt::Write as _;

use crate::network::Crn;

/// Options controlling DOT rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DotOptions {
    /// Include the reaction's informational label (category) in its node.
    pub show_labels: bool,
    /// Include the rate constant in the reaction node.
    pub show_rates: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            show_labels: true,
            show_rates: true,
        }
    }
}

impl Crn {
    /// Renders the network as a Graphviz DOT bipartite graph with default
    /// options.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), crn::CrnError> {
    /// let crn: crn::Crn = "a + b -> 2 c @ 10".parse()?;
    /// let dot = crn.to_dot();
    /// assert!(dot.starts_with("digraph crn {"));
    /// assert!(dot.contains("\"a\" -> \"r0\""));
    /// assert!(dot.contains("label=\"2\""));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> String {
        self.to_dot_with(DotOptions::default())
    }

    /// Renders the network as a Graphviz DOT bipartite graph.
    pub fn to_dot_with(&self, options: DotOptions) -> String {
        let mut out = String::from("digraph crn {\n");
        out.push_str("  rankdir=LR;\n");
        out.push_str("  node [fontsize=10];\n");
        for species in self.species() {
            let _ = writeln!(out, "  \"{}\" [shape=ellipse];", species.name());
        }
        for (idx, reaction) in self.reactions().iter().enumerate() {
            let mut label_parts: Vec<String> = Vec::new();
            if options.show_rates {
                label_parts.push(format!("k={}", reaction.rate()));
            }
            if options.show_labels {
                if let Some(label) = reaction.label() {
                    label_parts.push(label.to_string());
                }
            }
            let label = if label_parts.is_empty() {
                format!("r{idx}")
            } else {
                label_parts.join("\\n")
            };
            let _ = writeln!(
                out,
                "  \"r{idx}\" [shape=box, style=filled, fillcolor=lightgrey, label=\"{label}\"];"
            );
            for term in reaction.reactants() {
                let coefficient = if term.coefficient > 1 {
                    format!(" [label=\"{}\"]", term.coefficient)
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"r{idx}\"{coefficient};",
                    self.species_name(term.species)
                );
            }
            for term in reaction.products() {
                let coefficient = if term.coefficient > 1 {
                    format!(" [label=\"{}\"]", term.coefficient)
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "  \"r{idx}\" -> \"{}\"{coefficient};",
                    self.species_name(term.species)
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_crn() -> Crn {
        "e1 -> d1 @ 1 # initializing\nd1 + d2 -> 0 @ 1e6 # purifying"
            .parse()
            .expect("valid network")
    }

    #[test]
    fn dot_contains_every_species_and_reaction() {
        let crn = example_crn();
        let dot = crn.to_dot();
        for name in ["e1", "d1", "d2"] {
            assert!(
                dot.contains(&format!("\"{name}\" [shape=ellipse]")),
                "missing {name}"
            );
        }
        assert!(dot.contains("\"r0\""));
        assert!(dot.contains("\"r1\""));
        assert!(dot.contains("initializing"));
        assert!(dot.contains("purifying"));
        assert!(dot.contains("k=1000000"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn options_can_hide_rates_and_labels() {
        let crn = example_crn();
        let bare = crn.to_dot_with(DotOptions {
            show_labels: false,
            show_rates: false,
        });
        assert!(!bare.contains("initializing"));
        assert!(!bare.contains("k=1"));
        assert!(bare.contains("label=\"r0\""));
    }

    #[test]
    fn coefficients_appear_on_edges() {
        let crn: Crn = "2 a -> 3 b @ 1".parse().expect("network");
        let dot = crn.to_dot();
        assert!(dot.contains("\"a\" -> \"r0\" [label=\"2\"]"));
        assert!(dot.contains("\"r0\" -> \"b\" [label=\"3\"]"));
    }

    #[test]
    fn empty_sides_render_without_edges() {
        let crn: Crn = "0 -> a @ 1\nb -> 0 @ 2".parse().expect("network");
        let dot = crn.to_dot();
        // Source reaction has no incoming species edge, sink no outgoing.
        assert!(dot.contains("\"r0\" -> \"a\""));
        assert!(dot.contains("\"b\" -> \"r1\""));
    }
}
