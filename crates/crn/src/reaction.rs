//! Reactions and reaction terms.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CrnError;
use crate::species::SpeciesId;

/// A single term of a reaction: a species together with its stoichiometric
/// coefficient.
///
/// For example in `2 a + b -> 3 c`, the reactant terms are `(a, 2)` and
/// `(b, 1)` and the single product term is `(c, 3)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReactionTerm {
    /// The species taking part in the reaction.
    pub species: SpeciesId,
    /// Its stoichiometric coefficient (always ≥ 1).
    pub coefficient: u32,
}

impl ReactionTerm {
    /// Creates a new term.
    ///
    /// # Panics
    ///
    /// Panics if `coefficient` is zero; zero-coefficient terms are
    /// meaningless and are rejected during reaction validation anyway.
    pub fn new(species: SpeciesId, coefficient: u32) -> Self {
        assert!(
            coefficient > 0,
            "stoichiometric coefficients must be positive"
        );
        ReactionTerm {
            species,
            coefficient,
        }
    }
}

/// A mass-action reaction with a stochastic rate constant.
///
/// The reaction `2 a + b --k--> c` is represented with reactant terms
/// `[(a, 2), (b, 1)]`, product terms `[(c, 1)]` and rate `k`. The propensity
/// (stochastic rate) of the reaction in a state with counts `A`, `B` is
/// `k · C(A, 2) · C(B, 1)` where `C(n, m)` is the binomial coefficient — the
/// number of distinct reactant combinations, following Gillespie's exact
/// formulation.
///
/// Reactions are immutable once constructed; use
/// [`ReactionBuilder`](crate::ReactionBuilder) or [`Reaction::new`] to create
/// them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reaction {
    reactants: Vec<ReactionTerm>,
    products: Vec<ReactionTerm>,
    rate: f64,
    label: Option<String>,
}

impl Reaction {
    /// Creates a new reaction from reactant and product term lists.
    ///
    /// Terms mentioning the same species more than once are merged by summing
    /// their coefficients, so `[(a,1), (a,1)]` is equivalent to `[(a,2)]`.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::InvalidRate`] if `rate` is not a finite,
    /// strictly-positive number, and [`CrnError::EmptyReaction`] if both the
    /// reactant and product lists are empty.
    pub fn new(
        reactants: Vec<ReactionTerm>,
        products: Vec<ReactionTerm>,
        rate: f64,
    ) -> Result<Self, CrnError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(CrnError::InvalidRate { rate });
        }
        if reactants.is_empty() && products.is_empty() {
            return Err(CrnError::EmptyReaction);
        }
        Ok(Reaction {
            reactants: merge_terms(reactants),
            products: merge_terms(products),
            rate,
            label: None,
        })
    }

    /// Creates a labelled reaction. The label is purely informational (for
    /// example the paper's reaction categories: `"initializing"`,
    /// `"purifying"`, …) and has no kinetic meaning.
    ///
    /// # Errors
    ///
    /// Same as [`Reaction::new`].
    pub fn with_label(
        reactants: Vec<ReactionTerm>,
        products: Vec<ReactionTerm>,
        rate: f64,
        label: impl Into<String>,
    ) -> Result<Self, CrnError> {
        let mut r = Reaction::new(reactants, products, rate)?;
        r.label = Some(label.into());
        Ok(r)
    }

    /// Returns the reactant terms, sorted by species id, with duplicate
    /// species merged.
    pub fn reactants(&self) -> &[ReactionTerm] {
        &self.reactants
    }

    /// Returns the product terms, sorted by species id, with duplicate
    /// species merged.
    pub fn products(&self) -> &[ReactionTerm] {
        &self.products
    }

    /// Returns the stochastic rate constant of the reaction.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Returns the informational label of this reaction, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Returns a copy of this reaction with the rate replaced by `rate`.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::InvalidRate`] if `rate` is not finite and positive.
    pub fn with_rate(&self, rate: f64) -> Result<Self, CrnError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(CrnError::InvalidRate { rate });
        }
        let mut r = self.clone();
        r.rate = rate;
        Ok(r)
    }

    /// Returns the order of the reaction (the total reactant stoichiometry).
    ///
    /// A reaction with no reactants (a source such as `∅ -> a`) has order 0,
    /// `a -> …` has order 1, `a + b -> …` and `2a -> …` have order 2, etc.
    pub fn order(&self) -> u32 {
        self.reactants.iter().map(|t| t.coefficient).sum()
    }

    /// Returns the stoichiometric coefficient of `species` among the
    /// reactants (0 if the species is not consumed).
    pub fn reactant_coefficient(&self, species: SpeciesId) -> u32 {
        term_coefficient(&self.reactants, species)
    }

    /// Returns the stoichiometric coefficient of `species` among the
    /// products (0 if the species is not produced).
    pub fn product_coefficient(&self, species: SpeciesId) -> u32 {
        term_coefficient(&self.products, species)
    }

    /// Returns the net change in the count of `species` caused by one firing
    /// of this reaction (products minus reactants).
    pub fn net_change(&self, species: SpeciesId) -> i64 {
        i64::from(self.product_coefficient(species)) - i64::from(self.reactant_coefficient(species))
    }

    /// Returns `true` if firing the reaction changes the count of `species`.
    pub fn affects(&self, species: SpeciesId) -> bool {
        self.net_change(species) != 0
    }

    /// Returns an iterator over every species mentioned by the reaction
    /// (reactants and products, deduplicated).
    pub fn species(&self) -> impl Iterator<Item = SpeciesId> + '_ {
        let mut seen: Vec<SpeciesId> = self
            .reactants
            .iter()
            .chain(self.products.iter())
            .map(|t| t.species)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
    }

    /// Returns the largest species index referenced by this reaction, or
    /// `None` for a reaction with no terms on either side.
    pub(crate) fn max_species_index(&self) -> Option<usize> {
        self.reactants
            .iter()
            .chain(self.products.iter())
            .map(|t| t.species.index())
            .max()
    }
}

fn merge_terms(mut terms: Vec<ReactionTerm>) -> Vec<ReactionTerm> {
    terms.sort_unstable_by_key(|t| t.species);
    let mut merged: Vec<ReactionTerm> = Vec::with_capacity(terms.len());
    for term in terms {
        if term.coefficient == 0 {
            continue;
        }
        match merged.last_mut() {
            Some(last) if last.species == term.species => last.coefficient += term.coefficient,
            _ => merged.push(term),
        }
    }
    merged
}

fn term_coefficient(terms: &[ReactionTerm], species: SpeciesId) -> u32 {
    terms
        .iter()
        .find(|t| t.species == species)
        .map(|t| t.coefficient)
        .unwrap_or(0)
}

impl fmt::Display for Reaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn side(terms: &[ReactionTerm], f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if terms.is_empty() {
                return f.write_str("0");
            }
            for (i, t) in terms.iter().enumerate() {
                if i > 0 {
                    f.write_str(" + ")?;
                }
                if t.coefficient != 1 {
                    write!(f, "{} ", t.coefficient)?;
                }
                write!(f, "{}", t.species)?;
            }
            Ok(())
        }
        side(&self.reactants, f)?;
        f.write_str(" -> ")?;
        side(&self.products, f)?;
        write!(f, " @ {}", self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> SpeciesId {
        SpeciesId::from_index(i)
    }

    #[test]
    fn rejects_non_positive_rate() {
        let err = Reaction::new(vec![ReactionTerm::new(s(0), 1)], vec![], 0.0).unwrap_err();
        assert!(matches!(err, CrnError::InvalidRate { .. }));
        let err = Reaction::new(vec![ReactionTerm::new(s(0), 1)], vec![], -1.0).unwrap_err();
        assert!(matches!(err, CrnError::InvalidRate { .. }));
        let err = Reaction::new(vec![ReactionTerm::new(s(0), 1)], vec![], f64::NAN).unwrap_err();
        assert!(matches!(err, CrnError::InvalidRate { .. }));
    }

    #[test]
    fn rejects_empty_reaction() {
        let err = Reaction::new(vec![], vec![], 1.0).unwrap_err();
        assert!(matches!(err, CrnError::EmptyReaction));
    }

    #[test]
    fn merges_duplicate_terms() {
        let r = Reaction::new(
            vec![ReactionTerm::new(s(0), 1), ReactionTerm::new(s(0), 1)],
            vec![ReactionTerm::new(s(1), 2)],
            1.0,
        )
        .unwrap();
        assert_eq!(r.reactants(), &[ReactionTerm::new(s(0), 2)]);
        assert_eq!(r.order(), 2);
    }

    #[test]
    fn net_change_accounts_for_catalysts() {
        // a + b -> a + 2c : a is a catalyst.
        let r = Reaction::new(
            vec![ReactionTerm::new(s(0), 1), ReactionTerm::new(s(1), 1)],
            vec![ReactionTerm::new(s(0), 1), ReactionTerm::new(s(2), 2)],
            1.0,
        )
        .unwrap();
        assert_eq!(r.net_change(s(0)), 0);
        assert_eq!(r.net_change(s(1)), -1);
        assert_eq!(r.net_change(s(2)), 2);
        assert!(!r.affects(s(0)));
        assert!(r.affects(s(1)));
    }

    #[test]
    fn order_of_source_reaction_is_zero() {
        let r = Reaction::new(vec![], vec![ReactionTerm::new(s(0), 1)], 2.0).unwrap();
        assert_eq!(r.order(), 0);
    }

    #[test]
    fn display_round_trips_sensibly() {
        let r = Reaction::new(
            vec![ReactionTerm::new(s(0), 2), ReactionTerm::new(s(1), 1)],
            vec![],
            1000.0,
        )
        .unwrap();
        assert_eq!(r.to_string(), "2 s0 + s1 -> 0 @ 1000");
    }

    #[test]
    fn with_rate_replaces_rate_only() {
        let r = Reaction::new(vec![ReactionTerm::new(s(0), 1)], vec![], 1.0).unwrap();
        let r2 = r.with_rate(5.0).unwrap();
        assert_eq!(r2.rate(), 5.0);
        assert_eq!(r2.reactants(), r.reactants());
        assert!(r.with_rate(f64::INFINITY).is_err());
    }

    #[test]
    fn label_is_carried() {
        let r = Reaction::with_label(
            vec![ReactionTerm::new(s(0), 1)],
            vec![ReactionTerm::new(s(1), 1)],
            1.0,
            "initializing",
        )
        .unwrap();
        assert_eq!(r.label(), Some("initializing"));
    }

    #[test]
    fn species_iterator_deduplicates() {
        let r = Reaction::new(
            vec![ReactionTerm::new(s(3), 1), ReactionTerm::new(s(1), 1)],
            vec![ReactionTerm::new(s(3), 2)],
            1.0,
        )
        .unwrap();
        let all: Vec<_> = r.species().collect();
        assert_eq!(all, vec![s(1), s(3)]);
    }
}
