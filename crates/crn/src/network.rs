//! The [`Crn`] network type.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::analysis::{DependencyGraph, NetworkSummary, StoichiometryMatrix};
use crate::error::CrnError;
use crate::reaction::Reaction;
use crate::species::{Species, SpeciesId};
use crate::state::State;

/// A chemical reaction network: a species table plus a list of reactions.
///
/// `Crn` values are immutable; construct them with
/// [`CrnBuilder`](crate::CrnBuilder), by parsing the textual notation with
/// [`str::parse`], or by [`Crn::merge`]-ing existing networks.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), crn::CrnError> {
/// let crn: crn::Crn = "
///     e1 -> d1 @ 1
///     e2 -> d2 @ 1
///     e3 -> d3 @ 1
/// ".parse()?;
/// assert_eq!(crn.species_len(), 6);
/// assert_eq!(crn.reactions().len(), 3);
/// assert!(crn.species_id("d2").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Crn {
    species: Vec<Species>,
    reactions: Vec<Reaction>,
    #[serde(skip)]
    name_index: HashMap<String, SpeciesId>,
}

impl Crn {
    /// Creates a network from parts, validating consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::Validation`] if any reaction references a species
    /// id outside the species table or if two species share a name.
    pub fn from_parts(species: Vec<Species>, reactions: Vec<Reaction>) -> Result<Self, CrnError> {
        let mut name_index = HashMap::with_capacity(species.len());
        for (i, sp) in species.iter().enumerate() {
            if sp.id().index() != i {
                return Err(CrnError::Validation {
                    message: format!(
                        "species `{}` has id {} but sits at position {i}",
                        sp.name(),
                        sp.id().index()
                    ),
                });
            }
            if name_index.insert(sp.name().to_string(), sp.id()).is_some() {
                return Err(CrnError::Validation {
                    message: format!("duplicate species name `{}`", sp.name()),
                });
            }
        }
        for r in &reactions {
            if let Some(max) = r.max_species_index() {
                if max >= species.len() {
                    return Err(CrnError::Validation {
                        message: format!(
                            "reaction `{r}` references species index {max} but only {} species exist",
                            species.len()
                        ),
                    });
                }
            }
        }
        Ok(Crn {
            species,
            reactions,
            name_index,
        })
    }

    /// Returns the number of species in the network.
    pub fn species_len(&self) -> usize {
        self.species.len()
    }

    /// Returns the species table.
    pub fn species(&self) -> &[Species] {
        &self.species
    }

    /// Returns the species with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this network.
    pub fn species_by_id(&self, id: SpeciesId) -> &Species {
        &self.species[id.index()]
    }

    /// Looks up a species id by name.
    pub fn species_id(&self, name: &str) -> Option<SpeciesId> {
        self.name_index.get(name).copied()
    }

    /// Looks up a species id by name, returning an error naming the missing
    /// species. Convenient inside `?`-style pipelines.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::UnknownSpecies`] if no species has that name.
    pub fn require_species(&self, name: &str) -> Result<SpeciesId, CrnError> {
        self.species_id(name)
            .ok_or_else(|| CrnError::UnknownSpecies {
                name: name.to_string(),
            })
    }

    /// Returns the name of the species with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this network.
    pub fn species_name(&self, id: SpeciesId) -> &str {
        self.species[id.index()].name()
    }

    /// Returns the reactions of the network.
    pub fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }

    /// Returns a fresh all-zero state sized for this network.
    pub fn zero_state(&self) -> State {
        State::zero(self.species.len())
    }

    /// Builds a state from `(species name, count)` pairs; species not
    /// mentioned start at zero.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::UnknownSpecies`] if a name is not present in the
    /// network.
    pub fn state_from_counts<'a, I>(&self, counts: I) -> Result<State, CrnError>
    where
        I: IntoIterator<Item = (&'a str, u64)>,
    {
        let mut state = self.zero_state();
        for (name, count) in counts {
            let id = self.require_species(name)?;
            state.set(id, count);
        }
        Ok(state)
    }

    /// Computes the stoichiometry matrix of the network.
    pub fn stoichiometry(&self) -> StoichiometryMatrix {
        StoichiometryMatrix::from_crn(self)
    }

    /// Computes the reaction dependency graph used by the Gibson–Bruck
    /// next-reaction method: which reaction propensities must be recomputed
    /// after each firing.
    pub fn dependency_graph(&self) -> DependencyGraph {
        DependencyGraph::from_crn(self)
    }

    /// Produces a structural summary of the network (species/reaction counts,
    /// order histogram, rate extremes).
    pub fn summary(&self) -> NetworkSummary {
        NetworkSummary::from_crn(self)
    }

    /// Merges another network into this one, returning a new network.
    ///
    /// Species are matched by *name*: a species named `"x"` in both networks
    /// becomes a single species in the result, which is how modules are glued
    /// together (shared species carry counts between modules). Reactions from
    /// both networks are concatenated (in `self`-then-`other` order).
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::Validation`] only in the pathological case where
    /// the merged species table cannot be constructed (this does not happen
    /// for well-formed inputs).
    pub fn merge(&self, other: &Crn) -> Result<Crn, CrnError> {
        let mut species = self.species.clone();
        let mut name_index = self.name_index.clone();
        // Map other's species ids into the merged id space.
        let mut remap = Vec::with_capacity(other.species.len());
        for sp in &other.species {
            let id = match name_index.get(sp.name()) {
                Some(&existing) => existing,
                None => {
                    let id = SpeciesId::from_index(species.len());
                    species.push(Species::new(id, sp.name()));
                    name_index.insert(sp.name().to_string(), id);
                    id
                }
            };
            remap.push(id);
        }
        let mut reactions = self.reactions.clone();
        for r in &other.reactions {
            let remap_terms = |terms: &[crate::reaction::ReactionTerm]| {
                terms
                    .iter()
                    .map(|t| {
                        crate::reaction::ReactionTerm::new(remap[t.species.index()], t.coefficient)
                    })
                    .collect::<Vec<_>>()
            };
            let new = match r.label() {
                Some(label) => Reaction::with_label(
                    remap_terms(r.reactants()),
                    remap_terms(r.products()),
                    r.rate(),
                    label,
                )?,
                None => Reaction::new(
                    remap_terms(r.reactants()),
                    remap_terms(r.products()),
                    r.rate(),
                )?,
            };
            reactions.push(new);
        }
        Crn::from_parts(species, reactions)
    }

    /// Returns a copy of this network with every species renamed through
    /// `rename`. Useful for namespacing module instances before merging.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::Validation`] if the renaming maps two species to
    /// the same name.
    pub fn rename_species<F>(&self, mut rename: F) -> Result<Crn, CrnError>
    where
        F: FnMut(&str) -> String,
    {
        let species: Vec<Species> = self
            .species
            .iter()
            .map(|sp| Species::new(sp.id(), rename(sp.name())))
            .collect();
        Crn::from_parts(species, self.reactions.clone())
    }

    /// Serialises the network to the textual notation accepted by
    /// [`str::parse`]. The output lists one reaction per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.reactions {
            out.push_str(&self.render_reaction(r));
            out.push('\n');
        }
        out
    }

    /// Renders a single reaction with species *names* rather than ids.
    pub fn render_reaction(&self, reaction: &Reaction) -> String {
        fn side(crn: &Crn, terms: &[crate::reaction::ReactionTerm], out: &mut String) {
            if terms.is_empty() {
                out.push('0');
                return;
            }
            for (i, t) in terms.iter().enumerate() {
                if i > 0 {
                    out.push_str(" + ");
                }
                if t.coefficient != 1 {
                    out.push_str(&format!("{} ", t.coefficient));
                }
                out.push_str(crn.species_name(t.species));
            }
        }
        let mut out = String::new();
        side(self, reaction.reactants(), &mut out);
        out.push_str(" -> ");
        side(self, reaction.products(), &mut out);
        out.push_str(&format!(" @ {}", reaction.rate()));
        if let Some(label) = reaction.label() {
            out.push_str(&format!("  # {label}"));
        }
        out
    }

    /// Rebuilds the internal name index; used after deserialisation.
    pub fn rebuild_index(&mut self) {
        self.name_index = self
            .species
            .iter()
            .map(|sp| (sp.name().to_string(), sp.id()))
            .collect();
    }
}

impl FromStr for Crn {
    type Err = CrnError;

    fn from_str(text: &str) -> Result<Self, CrnError> {
        crate::parse::parse_network(text)
    }
}

impl fmt::Display for Crn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CrnBuilder;

    fn simple_crn() -> Crn {
        let mut b = CrnBuilder::new();
        let a = b.species("a");
        let c = b.species("c");
        b.reaction()
            .reactant(a, 1)
            .product(c, 2)
            .rate(10.0)
            .add()
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let crn = simple_crn();
        let a = crn.species_id("a").unwrap();
        assert_eq!(crn.species_name(a), "a");
        assert_eq!(crn.species_by_id(a).name(), "a");
        assert!(crn.species_id("zz").is_none());
        assert!(crn.require_species("zz").is_err());
    }

    #[test]
    fn state_from_counts_validates_names() {
        let crn = simple_crn();
        let state = crn.state_from_counts([("a", 5)]).unwrap();
        assert_eq!(state.count(crn.species_id("a").unwrap()), 5);
        assert!(crn.state_from_counts([("nope", 1)]).is_err());
    }

    #[test]
    fn merge_unifies_species_by_name() {
        let left: Crn = "a -> b @ 1".parse().unwrap();
        let right: Crn = "b -> c @ 2".parse().unwrap();
        let merged = left.merge(&right).unwrap();
        assert_eq!(merged.species_len(), 3);
        assert_eq!(merged.reactions().len(), 2);
        // The shared species `b` appears exactly once.
        let names: Vec<_> = merged
            .species()
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        assert_eq!(names.iter().filter(|n| n.as_str() == "b").count(), 1);
    }

    #[test]
    fn merge_preserves_rates_and_labels() {
        let left: Crn = "a -> b @ 1".parse().unwrap();
        let mut b = CrnBuilder::new();
        let x = b.species("b");
        let y = b.species("z");
        b.reaction()
            .reactant(x, 1)
            .product(y, 1)
            .rate(1e6)
            .label("purifying")
            .add()
            .unwrap();
        let right = b.build().unwrap();
        let merged = left.merge(&right).unwrap();
        assert_eq!(merged.reactions()[1].rate(), 1e6);
        assert_eq!(merged.reactions()[1].label(), Some("purifying"));
    }

    #[test]
    fn rename_species_detects_collisions() {
        let crn: Crn = "a -> b @ 1".parse().unwrap();
        let renamed = crn.rename_species(|n| format!("m1_{n}")).unwrap();
        assert!(renamed.species_id("m1_a").is_some());
        let err = crn.rename_species(|_| "same".to_string()).unwrap_err();
        assert!(matches!(err, CrnError::Validation { .. }));
    }

    #[test]
    fn from_parts_rejects_out_of_range_reaction() {
        let species = vec![Species::new(SpeciesId::from_index(0), "a")];
        let r = Reaction::new(
            vec![crate::reaction::ReactionTerm::new(
                SpeciesId::from_index(3),
                1,
            )],
            vec![],
            1.0,
        )
        .unwrap();
        assert!(Crn::from_parts(species, vec![r]).is_err());
    }

    #[test]
    fn text_round_trip() {
        let crn = simple_crn();
        let text = crn.to_text();
        let reparsed: Crn = text.parse().unwrap();
        assert_eq!(reparsed.reactions().len(), crn.reactions().len());
        assert_eq!(reparsed.species_len(), crn.species_len());
    }

    #[test]
    fn display_matches_to_text() {
        let crn = simple_crn();
        assert_eq!(crn.to_string(), crn.to_text());
    }
}
