//! Chemical reaction network (CRN) data model.
//!
//! This crate provides the structural substrate used throughout the
//! workspace: species tables, mass-action reactions, discrete states and the
//! tooling to build, parse, validate and analyse reaction networks.
//!
//! A [`Crn`] is a set of named species together with a list of
//! [`Reaction`]s. Reactions are written in the discrete, stochastic
//! interpretation of chemical kinetics used by the paper *"Synthesizing
//! Stochasticity in Biochemical Systems"* (Fett, Bruck & Riedel, DAC 2007):
//! the state of the system is a vector of non-negative integer molecule
//! counts and every reaction firing consumes its reactant multiset and
//! produces its product multiset.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), crn::CrnError> {
//! use crn::CrnBuilder;
//!
//! let mut builder = CrnBuilder::new();
//! let a = builder.species("a");
//! let b = builder.species("b");
//! let c = builder.species("c");
//! builder.reaction().reactant(a, 1).reactant(b, 1).product(c, 2).rate(10.0).add()?;
//! let crn = builder.build()?;
//!
//! assert_eq!(crn.species_len(), 3);
//! assert_eq!(crn.reactions().len(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! Networks can also be parsed from a compact text notation:
//!
//! ```
//! # fn main() -> Result<(), crn::CrnError> {
//! let crn: crn::Crn = "a + b -> 2 c @ 10\nc -> 0 @ 1".parse()?;
//! assert_eq!(crn.reactions().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod builder;
mod dot;
mod error;
pub mod generators;
mod network;
mod parse;
mod reaction;
mod species;
mod state;

pub use analysis::{ConservationLaw, DependencyGraph, NetworkSummary, StoichiometryMatrix};
pub use builder::{CrnBuilder, ReactionBuilder};
pub use dot::DotOptions;
pub use error::CrnError;
pub use network::Crn;
pub use parse::parse_network;
pub use reaction::{Reaction, ReactionTerm};
pub use species::{Species, SpeciesId};
pub use state::State;
